//! # ninf — a Rust reproduction of the Ninf global computing system
//!
//! This crate is the facade over a full reimplementation of **Ninf** (Network
//! Infrastructure for global computing) as evaluated in *"Multi-client
//! LAN/WAN Performance Analysis of Ninf"* (Takefusa et al., SC 1997): the
//! RPC protocol, IDL, computational server, client API, metaserver, the
//! numerical workloads of the paper's benchmarks, and a deterministic
//! whole-system simulator that regenerates every table and figure of the
//! evaluation.
//!
//! ## Quick start (live system)
//!
//! ```
//! use ninf::server::{builtin::register_stdlib, NinfServer, Registry, ServerConfig};
//! use ninf::client::NinfClient;
//! use ninf::protocol::Value;
//!
//! // Start a computational server with the paper's routines registered.
//! let mut registry = Registry::new();
//! register_stdlib(&mut registry, false);
//! let server = NinfServer::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
//!
//! // Ninf_call("linpack", n, A, b) — no stubs, no client-side IDL.
//! let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
//! let n = 16usize;
//! let (a, b) = ninf::exec::matgen(n);
//! let results = client
//!     .ninf_call(
//!         "linpack",
//!         &[
//!             Value::Int(n as i32),
//!             Value::DoubleArray(a.as_slice().to_vec()),
//!             Value::DoubleArray(b),
//!         ],
//!     )
//!     .unwrap();
//! let Value::DoubleArray(x) = &results[0] else { panic!() };
//! assert!(x.iter().all(|xi| (xi - 1.0).abs() < 1e-8)); // matgen solves to ones
//! server.shutdown();
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`xdr`] | `ninf-xdr` | Sun XDR codec (RFC 1014 subset) |
//! | [`idl`] | `ninf-idl` | Ninf IDL parser + compiled-interface bytecode |
//! | [`protocol`] | `ninf-protocol` | messages, framing, marshalling, transports |
//! | [`exec`] | `ninf-exec` | Linpack LU (unblocked/blocked/parallel), dmmul, NAS EP, DOS |
//! | [`server`] | `ninf-server` | registry, job policies, execution modes, live TCP server |
//! | [`client`] | `ninf-client` | `Ninf_call`, async calls, transactions |
//! | [`metaserver`] | `ninf-metaserver` | directory, monitoring, load balancing, DAG execution |
//! | [`netsim`] | `ninf-netsim` | discrete-event engine + max-min fluid network |
//! | [`machine`] | `ninf-machine` | calibrated 1997 machine models, OS accounting |
//! | [`sim`] | `ninf-sim` | whole-system simulator + SC'97 experiment drivers |
//! | [`db`] | `ninf-db` | numerical database server (`Ninf_query`) |
//! | [`loadgen`] | `ninf-loadgen` | multi-client live load generation + measurement |
//! | [`testkit`] | `ninf-testkit` | deterministic chaos harness + live-vs-sim differential |

pub use ninf_client as client;
pub use ninf_db as db;
pub use ninf_exec as exec;
pub use ninf_idl as idl;
pub use ninf_loadgen as loadgen;
pub use ninf_machine as machine;
pub use ninf_metaserver as metaserver;
pub use ninf_netsim as netsim;
pub use ninf_obs as obs;
pub use ninf_protocol as protocol;
pub use ninf_server as server;
pub use ninf_sim as sim;
pub use ninf_testkit as testkit;
pub use ninf_xdr as xdr;
