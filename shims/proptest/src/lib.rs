//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use, driven by a deterministic SplitMix64 generator seeded from the
//! test name — every run explores the same cases, so failures reproduce
//! exactly. There is no shrinking: a failing case panics with the case number
//! and the assertion message.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64 — tiny, fast, and deterministic. Seeded per test from the test
/// name so runs are reproducible without any external state.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for a named test; the same name always yields the same stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, mixed with a fixed golden offset.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // sizes property tests use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// A failed (or rejected) property-test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with a message.
    Fail(String),
    /// Case rejected (e.g. a filter could not be satisfied).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection from any message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration; only `cases` matters to this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 48 keeps the offline suite quick
        // while still exercising each property broadly.
        Self { cases: 48 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value` (the shim's `Strategy`).
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keep only values passing `f`, retrying generation as needed.
    fn prop_filter<R, F>(self, _whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, f }
    }

    /// Generate an intermediate value, then generate from a strategy built
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds a branch
    /// from a strategy for the nested level. `depth` bounds nesting;
    /// `_desired_size`/`_expected_branch` are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(level).boxed();
            // Each level is an even mix of stopping at a leaf or recursing,
            // which keeps expected tree size finite.
            level = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        level
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Mapping adapter (see [`Strategy::prop_map`]).
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Filtering adapter (see [`Strategy::prop_filter`]).
pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> Strategy for Filter<B, F>
where
    B: Strategy,
    F: Fn(&B::Value) -> bool,
{
    type Value = B::Value;
    fn generate(&self, rng: &mut TestRng) -> B::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Dependent-generation adapter (see [`Strategy::prop_flat_map`]).
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S2, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S2: Strategy,
    F: Fn(B::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Choice between alternatives (what `prop_oneof!` builds). Uniform unless
/// built with [`Union::new_weighted`].
pub struct Union<T> {
    /// The alternatives, each with a relative weight.
    pub arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Uniform union over the given alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Union with per-arm relative weights (real proptest's
    /// `prop_oneof![w => strat, ..]` form).
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! weights must not all be zero"
        );
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick below total weight")
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, tuples, &str regexes
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy (the shim's `Arbitrary`).
pub trait ArbitraryValue {
    /// Produce an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
    (0 A, 1 B, 2 C, 3 D, 4 E);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I);
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J);
}

// --- &str regex-lite strategies --------------------------------------------

/// One atom of a pattern: a set of allowed chars plus a repetition count.
struct PatternAtom {
    /// Inclusive char ranges the atom draws from; empty means "printable".
    ranges: Vec<(char, char)>,
    /// `\PC` atom: any printable (non-control) char, incl. some non-ASCII.
    printable: bool,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let mut atom = PatternAtom {
            ranges: Vec::new(),
            printable: false,
            min: 1,
            max: 1,
        };
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        atom.ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        atom.ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in {pat:?}");
                i += 1; // past ']'
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern {pat:?}"
                );
                atom.printable = true;
                i += 3;
            }
            c => {
                atom.ranges.push((c, c));
                i += 1;
            }
        }
        if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut lo = 0usize;
            while chars[i].is_ascii_digit() {
                lo = lo * 10 + chars[i].to_digit(10).unwrap() as usize;
                i += 1;
            }
            let hi = if chars[i] == ',' {
                i += 1;
                let mut hi = 0usize;
                while chars[i].is_ascii_digit() {
                    hi = hi * 10 + chars[i].to_digit(10).unwrap() as usize;
                    i += 1;
                }
                hi
            } else {
                lo
            };
            assert_eq!(chars[i], '}', "malformed quantifier in {pat:?}");
            i += 1;
            atom.min = lo;
            atom.max = hi;
        }
        atoms.push(atom);
    }
    atoms
}

fn gen_printable(rng: &mut TestRng) -> char {
    // Mostly ASCII printable; occasionally multi-byte so UTF-8 length !=
    // char count gets exercised.
    match rng.below(10) {
        0 => {
            let tables: [(u32, u32); 3] = [(0x00C0, 0x00FF), (0x0391, 0x03C9), (0x4E00, 0x4E40)];
            let (lo, hi) = tables[rng.below(3) as usize];
            char::from_u32(lo + rng.below((hi - lo + 1) as u64) as u32).unwrap()
        }
        _ => (b' ' + rng.below(95) as u8) as char,
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                if atom.printable {
                    out.push(gen_printable(rng));
                } else {
                    // Weight ranges by size so e.g. [a-z0-9_] is uniform.
                    let total: u64 = atom
                        .ranges
                        .iter()
                        .map(|(l, h)| (*h as u64) - (*l as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for (l, h) in &atom.ranges {
                        let size = (*h as u64) - (*l as u64) + 1;
                        if pick < size {
                            out.push(char::from_u32(*l as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= size;
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections and samples
// ---------------------------------------------------------------------------

/// Element-count specification for [`collection::vec`].
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{ArbitraryValue, TestRng};

    /// An abstract index resolved against a concrete length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of length `len` (must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl ArbitraryValue for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Uniform choice from a fixed list of values (real proptest's
    /// `sample::select`).
    pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty list");
        Select(values)
    }

    /// See [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + std::fmt::Debug> super::Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// `Option` strategies (real proptest's `option` module).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __cfg.cases, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure reports the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$left, &$right);
        if !(*__pa_l == *__pa_r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), __pa_l, __pa_r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pa_l, __pa_r) = (&$left, &$right);
        if !(*__pa_l == *__pa_r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})", format!($($fmt)+), __pa_l, __pa_r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![ $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, ArbitraryValue, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespaced re-exports matching real proptest's `prop::` path.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..=9, y in -5i64..5, f in 0.5f64..2.0) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0usize..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn regex_classes_match(s in "[a-z][a-z0-9_]{0,15}") {
            prop_assert!(!s.is_empty() && s.len() <= 16);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn printable_has_no_controls(s in "\\PC{0,40}") {
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn oneof_and_filter(v in prop_oneof![Just(1u32), 10u32..20]
            .prop_filter("nonzero", |x| *x != 0))
        {
            prop_assert!(v == 1 || (10..20).contains(&v));
        }

        #[test]
        fn sample_index_in_range(pos in any::<prop::sample::Index>()) {
            prop_assert!(pos.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (1i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = TestRng::for_test("recursive");
        for _ in 0..64 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4, "tree too deep: {t:?}");
        }
    }
}
