//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no network and no registry cache, so the real
//! `bytes` crate cannot be fetched. This shim implements exactly the subset
//! the workspace uses: an immutable [`Bytes`] buffer, a growable
//! [`BytesMut`], and the big-endian `put_*` writers of the [`BufMut`] trait.
//! Semantics match the real crate for this subset (big-endian encodings,
//! `freeze` handing the buffer over without copying).

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// [`BytesMut::freeze`] / `From<Vec<u8>>` really are zero-copy: converting
/// a `Vec` into an `Arc<[u8]>` would have to reallocate to place the
/// refcount header inline, silently re-copying every frozen buffer —
/// megabytes per matrix frame on the RPC hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian append-only writer interface (the subset of the real `BufMut`
/// trait that the XDR encoder uses).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian IEEE-754 `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_puts() {
        let mut b = BytesMut::new();
        b.put_u32(0x0102_0304);
        b.put_u8(0xff);
        assert_eq!(&b[..], &[1, 2, 3, 4, 0xff]);
    }

    #[test]
    fn freeze_is_stable() {
        let mut b = BytesMut::with_capacity(8);
        b.put_f64(1.5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        assert_eq!(frozen.to_vec(), 1.5f64.to_be_bytes().to_vec());
    }
}
