//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a generic serialization framework driven by derive
//! macros; this workspace only ever serializes a couple of plain structs into
//! JSON values. The shim therefore defines the JSON value model directly
//! (re-exported by the sibling `serde_json` shim) and a [`Serialize`] trait
//! that converts straight into it. Structs implement it by hand — the
//! `derive` feature exists only so `features = ["derive"]` dependency
//! declarations keep resolving.

use std::fmt;
use std::ops::Index;

/// A JSON document node (what `serde_json::Value` resolves to in this
/// workspace).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(v)) => Some(*v),
            Value::Number(Number::Int(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object-key lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Indexing an object by key; missing keys (and non-objects) yield `Null`,
/// matching real serde_json.
impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// Indexing an array by position; out-of-bounds (and non-arrays) yield
/// `Null`.
impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// `Display` renders compact JSON, matching real serde_json.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Write a JSON string literal with escapes.
pub fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_num!(i32, i64, u32, u64, usize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// JSON number: integer or double, kept apart so integers print without a
/// decimal point exactly as real serde_json does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Double-precision float.
    Float(f64),
}

impl Number {
    /// The number as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // Real JSON has no inf/nan; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// Insertion-ordered string-keyed map (the shape `serde_json::Map` has with
/// its `preserve_order` feature).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq + AsRef<str>, V> Map<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.entries
            .iter()
            .find(|(k, _)| k.as_ref() == key)
            .map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a, K, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;
    fn into_iter(self) -> Self::IntoIter {
        fn split<K, V>(e: &(K, V)) -> (&K, &V) {
            (&e.0, &e.1)
        }
        self.entries
            .iter()
            .map(split as fn(&'a (K, V)) -> (&'a K, &'a V))
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// Conversion into the JSON value model (stands in for serde's `Serialize`).
pub trait Serialize {
    /// Convert to a JSON value.
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (*self).to_json_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m: Map<String, u32> = Map::new();
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.get("a"), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn numbers_format_like_json() {
        assert_eq!(Number::Int(-3).to_string(), "-3");
        assert_eq!(Number::UInt(7).to_string(), "7");
        assert_eq!(Number::Float(1.5).to_string(), "1.5");
        assert_eq!(Number::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn display_and_index() {
        let mut m = Map::new();
        m.insert("k".to_string(), Value::Number(Number::Int(3)));
        let v = Value::Object(m);
        assert_eq!(v.to_string(), "{\"k\":3}");
        assert_eq!(v["k"], 3i64);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn string_escaping() {
        let v = Value::String("a\"b\\c\n".into());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\n\"");
    }
}
