//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the `parking_lot` API surface the workspace uses — `Mutex`,
//! `RwLock`, and `Condvar` with guard-returning, poison-free `lock()` /
//! `read()` / `write()` — as thin wrappers over `std::sync`. Poisoning is
//! erased the way parking_lot does: a panic while holding a lock does not
//! wedge later lockers (we recover the inner guard from the poison error).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// [`Condvar::wait`] with a timeout; returns `true` if the wait timed
    /// out (parking_lot returns a richer type; callers here only need the
    /// flag).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_is_direct() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still lockable
    }
}
