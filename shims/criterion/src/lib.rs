//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench files compiling and runnable (`cargo bench`) without the
//! real statistics engine: each benchmark is timed over a fixed number of
//! iterations and the mean per-iteration time is printed. Statistical rigor
//! is out of scope — the point is that `cargo build --benches` works offline
//! and `cargo bench` produces a usable order-of-magnitude table.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level bench harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: 20,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", name, 20, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim prints only time per
    /// iteration.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's sample count already
    /// bounds wall time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.group, &name.to_string(), self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.group, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark as `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Benchmark id from a function name and parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored by the shim
/// beyond API compatibility).
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many.
    SmallInput,
    /// Inputs are large; batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput hint (ignored by the shim beyond API compatibility).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the bench closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    pending_sample: Option<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.pending_sample = Some(start.elapsed() / self.iters_per_sample as u32);
    }

    /// Time `routine` over fresh inputs from `setup`, excluding setup cost
    /// from the sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.pending_sample = Some(total / self.iters_per_sample as u32);
    }
}

fn run_bench<F>(group: &str, name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        pending_sample: None,
    };

    // Calibrate: aim for samples of at least ~1ms so Instant resolution
    // doesn't dominate, but cap iterations to keep total time bounded.
    f(&mut b);
    let probe = b.pending_sample.take().unwrap_or(Duration::ZERO);
    if probe < Duration::from_millis(1) {
        let probe_ns = probe.as_nanos().max(100) as u64;
        b.iters_per_sample = (1_000_000 / probe_ns).clamp(1, 10_000);
    }

    for _ in 0..sample_size {
        f(&mut b);
        if let Some(s) = b.pending_sample.take() {
            b.samples.push(s);
        }
    }
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {label}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(8));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, n| {
            b.iter(|| {
                ran += 1;
                n * 2
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
