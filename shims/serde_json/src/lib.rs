//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the JSON value model from the `serde` shim (where `Value` and
//! its inherent accessors/`Display`/`Index` impls live) and adds the `json!`
//! macro, `to_value`, and the compact/pretty printers — the exact surface the
//! experiment harness uses to emit result documents.

use std::fmt;

pub use serde::{Map, Number, Value};

/// Serialization/deserialization error. Serialization into the shim's value
/// model is infallible; parsing ([`from_str`]) reports the offending byte
/// offset and what was expected.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert any [`serde::Serialize`] into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Render compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Render human-readable indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Parse a JSON document into a [`Value`] (the only deserialization target
/// this workspace uses). Integers parse to `Number::UInt`/`Number::Int` so a
/// serialize→parse round trip preserves exact u64 ids.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("end of input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, expected: &str) -> Error {
        Error(format!("expected {expected} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(token))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat("{")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("`,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("`,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("valid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("an escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("a valid codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("a valid escape")),
                    }
                }
                _ => return Err(self.err("closing `\"`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("4 hex digits"))?;
        let v = u32::from_str_radix(chunk, 16).map_err(|_| self.err("4 hex digits"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("a number"))?;
        let number = if float {
            Number::Float(text.parse().map_err(|_| self.err("a number"))?)
        } else if text.starts_with('-') {
            Number::Int(text.parse().map_err(|_| self.err("an integer"))?)
        } else {
            Number::UInt(text.parse().map_err(|_| self.err("an integer"))?)
        };
        Ok(Value::Number(number))
    }
}

/// Build a [`Value`] from JSON-ish syntax: `json!({ "k": v })`, `json!([a, b])`,
/// or `json!(expr)` for any `Serialize` expression. Object values may be
/// nested `{ .. }` / `[ .. ]` literals.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::__json_entries!(map; $($entries)*);
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val).expect("serializable") ),* ])
    };
    ($val:expr) => {
        $crate::to_value(&$val).expect("serializable")
    };
}

/// Object-entry muncher for [`json!`]: braced/bracketed values recurse,
/// anything else is a `Serialize` expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::__json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::__json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::to_value(&$val).expect("serializable"));
        $crate::__json_entries!($map; $($($rest)*)?);
    };
}

fn escape_into(s: &str, out: &mut String) {
    serde::write_escaped(out, s).expect("writing to String cannot fail");
}

fn write_compact(v: &Value, out: &mut String) {
    use fmt::Write;
    write!(out, "{v}").expect("writing to String cannot fail");
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1u64, "b": [1.5f64, 2.0f64], "s": "x" });
        assert_eq!(v.get("a").and_then(|x| x.as_u64()), Some(1));
        let arr = v.get("b").and_then(|x| x.as_array()).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(v.get("s").and_then(|x| x.as_str()), Some("x"));
    }

    #[test]
    fn pretty_print_is_valid_jsonish() {
        let v = json!({ "k": [1i64, 2i64] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"k\""));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn index_and_eq_on_documents() {
        let doc = json!({ "seed": 3u64 });
        assert_eq!(doc["seed"], 3);
        assert!(doc["nope"].is_null());
    }

    #[test]
    fn parse_round_trips_documents() {
        let doc = json!({
            "id": 18446744073709551615u64,
            "neg": -42i64,
            "pi": 3.25f64,
            "flag": true,
            "none": serde::Value::Null,
            "text": "a \"quoted\"\nline",
            "list": [1u64, 2u64, 3u64],
        });
        let text = to_string_pretty(&doc).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, doc);
        // Exact u64 survives (no f64 round trip).
        assert_eq!(parsed["id"].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parse_handles_whitespace_empties_and_unicode_escapes() {
        let v = from_str(" { \"a\" : [ ] , \"b\" : { } , \"c\" : \"\\u0041\\ud83d\\ude00\" } ")
            .unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 0);
        assert_eq!(v["b"].as_object().unwrap().len(), 0);
        assert_eq!(v["c"].as_str(), Some("A😀"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1}trailing").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("treu").is_err());
    }
}
