//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the JSON value model from the `serde` shim (where `Value` and
//! its inherent accessors/`Display`/`Index` impls live) and adds the `json!`
//! macro, `to_value`, and the compact/pretty printers — the exact surface the
//! experiment harness uses to emit result documents.

use std::fmt;

pub use serde::{Map, Number, Value};

/// Serialization error. The shim's value model is infallible, so this only
/// exists to keep `Result`-returning call sites source-compatible.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Convert any [`serde::Serialize`] into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Render compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Render human-readable indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Build a [`Value`] from JSON-ish syntax: `json!({ "k": v })`, `json!([a, b])`,
/// or `json!(expr)` for any `Serialize` expression. Object values may be
/// nested `{ .. }` / `[ .. ]` literals.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ({ $($entries:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::__json_entries!(map; $($entries)*);
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val).expect("serializable") ),* ])
    };
    ($val:expr) => {
        $crate::to_value(&$val).expect("serializable")
    };
}

/// Object-entry muncher for [`json!`]: braced/bracketed values recurse,
/// anything else is a `Serialize` expression.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_entries {
    ($map:ident;) => {};
    ($map:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::__json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::__json_entries!($map; $($($rest)*)?);
    };
    ($map:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::to_value(&$val).expect("serializable"));
        $crate::__json_entries!($map; $($($rest)*)?);
    };
}

fn escape_into(s: &str, out: &mut String) {
    serde::write_escaped(out, s).expect("writing to String cannot fail");
}

fn write_compact(v: &Value, out: &mut String) {
    use fmt::Write;
    write!(out, "{v}").expect("writing to String cannot fail");
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1u64, "b": [1.5f64, 2.0f64], "s": "x" });
        assert_eq!(v.get("a").and_then(|x| x.as_u64()), Some(1));
        let arr = v.get("b").and_then(|x| x.as_array()).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(v.get("s").and_then(|x| x.as_str()), Some("x"));
    }

    #[test]
    fn pretty_print_is_valid_jsonish() {
        let v = json!({ "k": [1i64, 2i64] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"k\""));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn index_and_eq_on_documents() {
        let doc = json!({ "seed": 3u64 });
        assert_eq!(doc["seed"], 3);
        assert!(doc["nope"].is_null());
    }
}
