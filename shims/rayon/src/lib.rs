//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice/range parallel-iterator subset the numerical kernels
//! use (`par_chunks_mut`, `into_par_iter().map(..).collect()/.reduce_with()`,
//! `current_num_threads`) with real data parallelism over
//! `std::thread::scope`. Work is split into contiguous blocks, one per
//! worker, which matches the regular, equal-cost loops in the kernels; there
//! is no work stealing. Results preserve input order exactly, so kernels that
//! promise bitwise-identical parallel output keep that promise here.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Everything the kernels import.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSliceMut,
    };
}

pub mod iter {
    use super::current_num_threads;

    /// Run `f` over every item of `items` on up to [`current_num_threads`]
    /// scoped threads, splitting into contiguous blocks.
    fn run_for_each<I, F>(items: Vec<I>, f: &F)
    where
        I: Send,
        F: Fn(I) + Sync,
    {
        let workers = current_num_threads().min(items.len().max(1));
        if workers <= 1 || items.len() <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let mut blocks: Vec<Vec<I>> = Vec::with_capacity(workers);
        let per = items.len().div_ceil(workers);
        let mut rest = items;
        while !rest.is_empty() {
            let tail = rest.split_off(per.min(rest.len()));
            blocks.push(std::mem::replace(&mut rest, tail));
        }
        std::thread::scope(|scope| {
            for block in blocks {
                scope.spawn(move || {
                    for item in block {
                        f(item);
                    }
                });
            }
        });
    }

    /// Map every item in parallel, preserving order.
    fn run_map<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let workers = current_num_threads().min(items.len().max(1));
        if workers <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let per = items.len().div_ceil(workers);
        let mut blocks: Vec<Vec<I>> = Vec::with_capacity(workers);
        let mut rest = items;
        while !rest.is_empty() {
            let tail = rest.split_off(per.min(rest.len()));
            blocks.push(std::mem::replace(&mut rest, tail));
        }
        let mut outputs: Vec<Vec<R>> = Vec::with_capacity(blocks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .into_iter()
                .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                outputs.push(h.join().expect("parallel map worker panicked"));
            }
        });
        outputs.into_iter().flatten().collect()
    }

    /// A materialized parallel iterator: the items are collected up front and
    /// fanned out on demand.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    /// Conversion into a [`ParIter`] (the shim's `IntoParallelIterator`).
    pub trait IntoParallelIterator {
        /// Item type produced.
        type Item: Send;
        /// Materialize the parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    macro_rules! impl_range_into_par {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }
    impl_range_into_par!(u32, u64, usize, i32, i64);

    macro_rules! impl_range_inclusive_into_par {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }
    impl_range_inclusive_into_par!(u32, u64, usize, i32, i64);

    /// The operations the kernels chain on parallel iterators.
    pub trait ParallelIterator: Sized {
        /// Item type produced.
        type Item: Send;

        /// Materialize into an ordered `Vec`.
        fn into_vec(self) -> Vec<Self::Item>;

        /// Parallel map, preserving order.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Run `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            run_for_each(self.into_vec(), &f);
        }

        /// Collect into any container buildable from an ordered `Vec`.
        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            C::from(self.into_vec())
        }

        /// Fold pairs of results together; `None` on an empty iterator.
        fn reduce_with<F>(self, f: F) -> Option<Self::Item>
        where
            F: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
        {
            self.into_vec().into_iter().reduce(f)
        }

        /// Pair every item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }
    }

    /// Indexed variant (the shim's iterators are all indexed; the trait
    /// exists so `use rayon::prelude::*` imports resolve as with real rayon).
    pub trait IndexedParallelIterator: ParallelIterator {}

    impl<I: Send> ParallelIterator for ParIter<I> {
        type Item = I;
        fn into_vec(self) -> Vec<I> {
            self.items
        }
    }
    impl<I: Send> IndexedParallelIterator for ParIter<I> {}

    /// Lazy parallel map adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync,
    {
        type Item = R;
        fn into_vec(self) -> Vec<R> {
            run_map(self.base.into_vec(), &self.f)
        }
    }
    impl<B, R, F> IndexedParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync,
    {
    }

    /// Index-pairing adapter.
    pub struct Enumerate<B> {
        base: B,
    }

    impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
        type Item = (usize, B::Item);
        fn into_vec(self) -> Vec<(usize, B::Item)> {
            self.base.into_vec().into_iter().enumerate().collect()
        }
    }
    impl<B: ParallelIterator> IndexedParallelIterator for Enumerate<B> {}

    /// Parallel operations on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Split into non-overlapping mutable chunks of `size` (last may be
        /// shorter), processable in parallel.
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
            assert!(size > 0, "chunk size must be non-zero");
            ParIter {
                items: self.chunks_mut(size).collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_with_matches_sequential() {
        let total = (1u64..=100)
            .into_par_iter()
            .map(|x| x)
            .reduce_with(|a, b| a + b);
        assert_eq!(total, Some(5050));
    }

    #[test]
    fn reduce_with_empty_is_none() {
        let total = (0u64..0)
            .into_par_iter()
            .map(|x| x)
            .reduce_with(|a, b| a + b);
        assert_eq!(total, None);
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[99], 9);
        assert_eq!(data[102], 10);
    }

    #[test]
    fn threads_reported() {
        assert!(crate::current_num_threads() >= 1);
    }
}
