//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{bounded, unbounded, Sender, Receiver}` is used
//! in this workspace (the in-process [`ChannelTransport`] pair and the
//! reactor's command/work queues); this shim maps those onto
//! `std::sync::mpsc`, which has the same blocking semantics. Unlike
//! crossbeam's, the receiver is not cloneable — multi-consumer users share
//! it behind an `Arc` (its methods take `&self`; an internal mutex makes it
//! `Sync`).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The sending side has disconnected.
        Disconnected,
    }

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: Tx<T>,
    }

    // Manual impl: cloning a sender must not require `T: Clone` (the derive
    // would add that bound).
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    #[derive(Debug)]
    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// Receiving half of a bounded channel.
    ///
    /// Wrapped in a `Mutex` so the handle is `Sync` like crossbeam's receiver
    /// (std's receiver is only `Send`).
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue the message (blocking on a full bounded channel); errors
        /// if the peer is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors if the peer is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("receiver lock")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .expect("receiver lock")
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Non-blocking receive; `Ok(None)` when the channel is empty.
        pub fn try_recv(&self) -> Result<Option<T>, RecvError> {
            match self.inner.lock().expect("receiver lock").try_recv() {
                Ok(m) => Ok(Some(m)),
                Err(mpsc::TryRecvError::Empty) => Ok(None),
                Err(mpsc::TryRecvError::Disconnected) => Err(RecvError),
            }
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Tx::Bounded(tx),
            },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }

    /// Create an unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Tx::Unbounded(tx),
            },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = bounded::<u32>(4);
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn unbounded_send_never_blocks() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..10_000 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.try_recv(), Ok(Some(1)));
        }
    }
}
