//! Integration tests asserting the paper's five headline observations hold
//! in the simulator (abstract §1–5). These are the acceptance criteria of
//! the reproduction: who wins, by roughly what factor, where crossovers fall.

use ninf::machine::{j90, ultrasparc};
use ninf::server::{ExecMode, SchedPolicy};
use ninf::sim::{Scenario, Workload, World};

fn cell(s: Scenario) -> ninf::sim::CellResult {
    World::new(s).run()
}

fn lan(c: usize, n: u64, mode: ExecMode, dur: f64) -> ninf::sim::CellResult {
    let mut s = Scenario::lan(
        j90(),
        c,
        Workload::Linpack { n },
        mode,
        SchedPolicy::Fcfs,
        1997,
    );
    s.duration = dur;
    s.warmup = dur * 0.12;
    cell(s)
}

fn wan(c: usize, n: u64, mode: ExecMode, dur: f64) -> ninf::sim::CellResult {
    let mut s = Scenario::single_site_wan(
        j90(),
        c,
        Workload::Linpack { n },
        mode,
        SchedPolicy::Fcfs,
        1997,
    );
    s.duration = dur;
    s.warmup = dur * 0.1;
    cell(s)
}

/// Headline 1: "Given sufficient communication bandwidth, Ninf performance
/// quickly overtakes client local performance" — the Fig 3 crossover.
#[test]
fn ninf_overtakes_local_with_bandwidth() {
    let local = ultrasparc().pe_linpack;
    // Below the crossover the local solve wins...
    let small = {
        let mut s = Scenario::lan(
            j90(),
            1,
            Workload::Linpack { n: 100 },
            ExecMode::DataParallel,
            SchedPolicy::Fcfs,
            1,
        )
        .saturated();
        s.duration = 60.0;
        s.warmup = 5.0;
        cell(s)
    };
    assert!(
        small.perf.mean < local.mflops(100),
        "n=100: Ninf must lose to local"
    );
    // ...beyond it the remote J90 wins decisively.
    let large = {
        let mut s = Scenario::lan(
            j90(),
            1,
            Workload::Linpack { n: 800 },
            ExecMode::DataParallel,
            SchedPolicy::Fcfs,
            1,
        )
        .saturated();
        s.duration = 120.0;
        s.warmup = 10.0;
        cell(s)
    };
    assert!(
        large.perf.mean > 2.0 * local.mflops(800),
        "n=800: Ninf ({:.1}) must beat UltraSPARC local ({:.1}) decisively",
        large.perf.mean,
        local.mflops(800)
    );
}

/// Headline 3: the optimized data-parallel library wins at light load and
/// roughly ties task-parallel under heavy load (Fig 7 / §4.2.1).
#[test]
fn data_parallel_library_wins_light_ties_heavy() {
    let light_1pe = lan(1, 1400, ExecMode::TaskParallel, 500.0);
    let light_4pe = lan(1, 1400, ExecMode::DataParallel, 500.0);
    assert!(
        light_4pe.perf.mean > 1.4 * light_1pe.perf.mean,
        "c=1: 4-PE {:.1} should clearly beat 1-PE {:.1}",
        light_4pe.perf.mean,
        light_1pe.perf.mean
    );

    let heavy_1pe = lan(16, 1400, ExecMode::TaskParallel, 700.0);
    let heavy_4pe = lan(16, 1400, ExecMode::DataParallel, 700.0);
    let ratio = heavy_4pe.perf.mean / heavy_1pe.perf.mean;
    assert!(
        (0.6..=1.4).contains(&ratio),
        "c=16: modes should roughly tie, got 4PE/1PE = {ratio:.2}"
    );
}

/// Headline 5a: LAN performance is server-CPU dominated — utilization
/// saturates as clients pile on, and per-stream throughput sags.
#[test]
fn lan_saturates_server_cpu() {
    let c1 = lan(1, 1000, ExecMode::TaskParallel, 600.0);
    let c16 = lan(16, 1000, ExecMode::TaskParallel, 600.0);
    assert!(c1.cpu_utilization < 30.0);
    assert!(c16.cpu_utilization > 90.0, "util = {}", c16.cpu_utilization);
    assert!(c16.throughput.mean < 0.8 * c1.throughput.mean);
    // "the J90 Ninf server continued to work flawlessly": calls complete.
    assert!(c16.times > 100);
}

/// Headline 5b: WAN performance is bandwidth dominated — the server stays
/// nearly idle no matter how many clients one site adds, and per-client
/// performance scales like 1/c.
#[test]
fn wan_is_bandwidth_dominated() {
    let c1 = wan(1, 1000, ExecMode::TaskParallel, 1500.0);
    let c8 = wan(8, 1000, ExecMode::TaskParallel, 2500.0);
    assert!(
        c8.cpu_utilization < 20.0,
        "WAN util = {}",
        c8.cpu_utilization
    );
    let ratio = c8.perf.mean / c1.perf.mean;
    assert!(
        (0.08..=0.35).contains(&ratio),
        "c=8 should see roughly 1/8 of c=1 performance, got {ratio:.3}"
    );
    // And the 4-PE library still wins in WAN ("it is preferable to use the
    // optimized library versions for WAN clients as well").
    let c1_4pe = wan(1, 1000, ExecMode::DataParallel, 1500.0);
    assert!(c1_4pe.perf.mean >= 0.95 * c1.perf.mean);
}

/// Headline 5c: multiple sites achieve aggregate bandwidth a single site
/// cannot (Fig 10) — so distribution across networks is essential.
#[test]
fn multi_site_aggregates_bandwidth() {
    let mut multi = Scenario::multi_site_wan(
        j90(),
        4,
        1,
        Workload::Linpack { n: 1000 },
        ExecMode::DataParallel,
        SchedPolicy::Fcfs,
        1997,
    );
    multi.duration = 2500.0;
    multi.warmup = 250.0;
    let multi = cell(multi);

    let single = wan(4, 1000, ExecMode::DataParallel, 2500.0);

    let agg_multi = multi.throughput.mean * multi.clients as f64;
    let agg_single = single.throughput.mean * single.clients as f64;
    assert!(
        agg_multi > 2.0 * agg_single,
        "4 sites ({agg_multi:.3} MB/s) must beat 1 site ({agg_single:.3} MB/s) by >2x"
    );
    assert!(multi.perf.mean > 2.0 * single.perf.mean);
    assert!(multi.cpu_utilization > single.cpu_utilization);
}

/// Headline 4: EP is location-transparent — LAN and WAN client-observed
/// performance are essentially equal (Table 8), and both degrade only with
/// server timesharing.
#[test]
fn ep_lan_equals_wan() {
    for &c in &[1usize, 4] {
        let mut lan_s = Scenario::lan(
            j90(),
            c,
            Workload::Ep { m: 22 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            7,
        );
        lan_s.duration = 1500.0;
        lan_s.warmup = 150.0;
        let lan_cell = cell(lan_s);

        let mut wan_s = Scenario::single_site_wan(
            j90(),
            c,
            Workload::Ep { m: 22 },
            ExecMode::TaskParallel,
            SchedPolicy::Fcfs,
            7,
        );
        wan_s.duration = 1500.0;
        wan_s.warmup = 150.0;
        let wan_cell = cell(wan_s);

        let ratio = wan_cell.perf.mean / lan_cell.perf.mean;
        assert!(
            (0.93..=1.07).contains(&ratio),
            "c={c}: EP WAN/LAN should be ~1, got {ratio:.3}"
        );
    }
}

/// The paper's widening max/min performance spread under load, as a single
/// number: Jain's fairness index over per-call performance falls as clients
/// contend.
#[test]
fn fairness_degrades_with_contention() {
    let light = lan(1, 1000, ExecMode::TaskParallel, 600.0);
    let heavy = lan(16, 1000, ExecMode::TaskParallel, 600.0);
    assert!(
        light.fairness > 0.9,
        "c=1 should be nearly fair: {}",
        light.fairness
    );
    assert!(
        heavy.fairness < light.fairness,
        "fairness should fall with contention: {} vs {}",
        heavy.fairness,
        light.fairness
    );
}

/// Failure-model mirror: a WAN link failure in the fluid network behaves
/// like the live path's hung server — transfers freeze (no error, no
/// progress) until the link is restored or the client's deadline cancels
/// the flow, and competitors on healthy paths are unaffected.
#[test]
fn link_failure_starves_then_recovers_like_a_hung_server() {
    use ninf::netsim::{FlowSpec, FluidNet, Topology};

    // Two client sites into one server over separate WAN links.
    let mut t = Topology::new();
    let c0 = t.add_node("site0");
    let c1 = t.add_node("site1");
    let hub = t.add_node("hub");
    let srv = t.add_node("server");
    t.add_duplex_link(c0, hub, 1.0e6, 0.0);
    t.add_duplex_link(c1, hub, 1.0e6, 0.0);
    t.add_duplex_link(hub, srv, 2.0e6, 0.0);
    t.compute_routes();
    let mut net = FluidNet::new(t);

    let f0 = net.start_flow(
        FlowSpec {
            src: c0,
            dst: srv,
            bytes: 2.0e6,
            cap: f64::INFINITY,
        },
        0.0,
    );
    let f1 = net.start_flow(
        FlowSpec {
            src: c1,
            dst: srv,
            bytes: 2.0e6,
            cap: f64::INFINITY,
        },
        0.0,
    );
    assert!((net.rate(f0) - 1.0e6).abs() < 1.0);
    assert!((net.rate(f1) - 1.0e6).abs() < 1.0);

    // Site 0's access link fails at t=0.5 (live analogue: its connection
    // goes silent mid-transfer).
    let cut = net.path(f0)[0];
    net.fail_link(cut, 0.5);
    assert!(net.link_is_down(cut));
    assert_eq!(net.rate(f0), 0.0);
    // The healthy site is untouched and completes on schedule: 2 MB at
    // 1 MB/s (its own access link is the bottleneck throughout).
    let (t1, id1) = net.next_completion().unwrap();
    assert_eq!(id1, f1);
    assert!((t1 - 2.0).abs() < 1e-6);
    net.advance_to(t1);
    net.finish_flow(f1);

    // The frozen flow made no progress during the outage...
    assert!((net.remaining(f0) - 1.5e6).abs() < 1.0);
    // ...and resumes at full rate once the link is restored.
    net.restore_link(cut, t1);
    assert!((net.rate(f0) - 1.0e6).abs() < 1.0);
    let (t0, id0) = net.next_completion().unwrap();
    assert_eq!(id0, f0);
    assert!((t0 - (t1 + 1.5)).abs() < 1e-6);
}

/// §4.2.1: response and wait stay modest even at c=16 with the server
/// saturated — no thrashing anomaly.
#[test]
fn no_thrashing_at_saturation() {
    let c16 = lan(16, 1400, ExecMode::DataParallel, 700.0);
    assert!(c16.cpu_utilization > 95.0);
    assert!(c16.wait.mean < 1.0, "wait mean = {}", c16.wait.mean);
    assert!(
        c16.response.mean < 1.5,
        "response mean = {}",
        c16.response.mean
    );
    assert!(
        c16.load_max > 10.0,
        "load should pile up, max = {}",
        c16.load_max
    );
}
