//! End-to-end tracing: one metaserver-routed `Ninf_call` must yield a
//! single connected trace spanning client, metaserver, and server, be
//! drainable over the `QueryTrace` wire message, export as valid Chrome
//! `trace_event` JSON, and agree with the Prometheus metrics exposition.
//!
//! All tests here share the process-global flight recorder, so they only
//! ever arm it (never disarm) and always filter snapshots by trace id.

use std::collections::BTreeSet;

use ninf::client::NinfClient;
use ninf::metaserver::{Balancing, Directory, Metaserver, ServerEntry};
use ninf::obs::export::{
    chrome_trace_json, client_server_coverage, dedup, parse_chrome_trace, validate_nesting,
};
use ninf::obs::{http, recorder, Span, TraceContext};
use ninf::protocol::Value;
use ninf::server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};

fn start_server() -> NinfServer {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, false);
    NinfServer::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            pes: 2,
            mode: ExecMode::TaskParallel,
            policy: SchedPolicy::Fcfs,
            ..Default::default()
        },
    )
    .expect("server starts")
}

fn linpack_args(n: usize) -> Vec<Value> {
    let (a, b) = ninf::exec::matgen(n);
    vec![
        Value::Int(n as i32),
        Value::DoubleArray(a.as_slice().to_vec()),
        Value::DoubleArray(b),
    ]
}

/// Wait for the server's connection thread to record its trailing "reply"
/// span before draining the recorder.
fn settle() {
    std::thread::sleep(std::time::Duration::from_millis(50));
}

#[test]
fn metaserver_routed_call_yields_one_connected_trace() {
    recorder::global().set_enabled(true);
    let server = start_server();
    let mut dir = Directory::new();
    dir.register(ServerEntry {
        name: "node0".into(),
        addr: server.addr().to_string(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    let meta = Metaserver::new(dir, Balancing::RoundRobin);

    // The client's own root span: everything downstream parents under it.
    let ctx = TraceContext::root();
    let start = ninf::obs::now_us();
    let (outcome, trace_id) = meta.ninf_call_traced("linpack", &linpack_args(32), Some(ctx));
    recorder::global().record(Span::at(ctx, "call", "client", start));
    outcome.expect("routed call succeeds");
    assert_eq!(
        trace_id, ctx.trace_id,
        "metaserver reports the joined trace id"
    );

    settle();
    let spans = dedup(&recorder::global().snapshot(trace_id));

    // One trace, all three processes represented.
    let traces: BTreeSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    assert_eq!(traces, BTreeSet::from([trace_id]));
    let processes: BTreeSet<&str> = spans.iter().map(|s| s.process.as_str()).collect();
    assert!(
        processes.is_superset(&BTreeSet::from(["client", "metaserver", "server"])),
        "expected spans from every hop, got {processes:?}"
    );

    // Connected: every span's parent chain reaches the client root span,
    // children stay inside their parents (slack absorbs the server's
    // post-send "reply" stamp), and client calls have server-side spans.
    validate_nesting(&spans, 10_000).expect("spans nest into one tree");
    let covered = client_server_coverage(&spans).expect("coverage holds");
    assert_eq!(covered, 1, "exactly one client call with server spans");
    for name in [
        "call",
        "forward",
        "route",
        "rpc",
        "invoke",
        "queue_wait",
        "exec",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "span `{name}` missing from {spans:#?}"
        );
    }

    // The export round-trips through the Chrome trace_event format.
    let json = chrome_trace_json(&spans);
    let parsed = parse_chrome_trace(&json).expect("exported JSON parses");
    assert_eq!(parsed.len(), spans.len());

    server.shutdown();
}

#[test]
fn query_trace_drains_spans_over_the_wire() {
    recorder::global().set_enabled(true);
    let server = start_server();
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    client.ninf_call("linpack", &linpack_args(24)).unwrap();
    let trace_id = client.last_trace_id();
    assert_ne!(trace_id, 0, "tracing was armed, so the call got a trace id");

    settle();
    let (process, _dropped, spans) = client.query_trace(trace_id).unwrap();
    assert_eq!(process, "server");
    assert!(!spans.is_empty(), "server returned its spans for the trace");
    assert!(spans.iter().all(|s| s.trace_id == trace_id));
    // In-process fleet: the server answers from the shared recorder, so the
    // reply holds both sides' spans; the server-side ones must be there.
    for name in ["invoke", "queue_wait", "exec"] {
        assert!(
            spans
                .iter()
                .any(|s| s.name == name && s.process == "server"),
            "missing server span `{name}`"
        );
    }

    server.shutdown();
}

#[test]
fn metrics_exposition_agrees_with_call_count() {
    recorder::global().set_enabled(true);
    let server = start_server();
    let registry = server.metrics().registry().clone();
    let addr = http::serve_metrics(registry, "127.0.0.1:0").expect("metrics endpoint binds");

    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let calls = 3usize;
    for _ in 0..calls {
        client.ninf_call("linpack", &linpack_args(16)).unwrap();
    }

    let body = http::fetch_metrics(&addr.to_string()).expect("metrics endpoint answers");
    let count: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("ninf_server_calls_total "))
        .expect("counter exposed")
        .trim()
        .parse()
        .expect("counter is a number");
    assert!(
        count >= calls as u64,
        "exposition reports at least this client's {calls} calls, got {count}"
    );
    assert!(body.contains("ninf_server_call_seconds_count"));
    assert!(body.contains("ninf_server_queued"));

    server.shutdown();
}
