//! Cross-crate integration tests of the *live* Ninf system: real TCP, real
//! XDR marshalling, real numerical kernels, metaserver fan-out.

use ninf::client::{call_async, NinfClient, Transaction, TxArg};
use ninf::metaserver::{Balancing, Directory, Metaserver, ServerEntry};
use ninf::protocol::{ProtocolError, Value};
use ninf::server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};

fn start_server(pes: usize, mode: ExecMode) -> NinfServer {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, matches!(mode, ExecMode::DataParallel));
    NinfServer::start(
        "127.0.0.1:0",
        registry,
        ServerConfig { pes, mode, policy: SchedPolicy::Fcfs },
    )
    .expect("server starts")
}

#[test]
fn full_linpack_call_over_tcp() {
    let server = start_server(2, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();

    let n = 64usize;
    let (a, b) = ninf::exec::matgen(n);
    let results = client
        .ninf_call(
            "linpack",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(a.as_slice().to_vec()),
                Value::DoubleArray(b.clone()),
            ],
        )
        .unwrap();

    // Remote solution must match a local solve and the residual must pass.
    let Value::DoubleArray(x) = &results[0] else { panic!("expected solution") };
    assert!(ninf::exec::residual_check(&a, x, &b) < 50.0);

    // Client-side byte accounting equals the paper's §3.1 traffic model:
    // A (8n²) + b (8n) out, x (8n) + ipvt (4n) back = 8n² + 20n in total.
    assert_eq!(client.bytes_sent() + client.bytes_received(), 8 * n * n + 20 * n);
    server.shutdown();
}

#[test]
fn byte_accounting_matches_paper_formula_exactly() {
    let server = start_server(1, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let n = 40usize;
    let (a, b) = ninf::exec::matgen(n);
    client
        .ninf_call(
            "linpack",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(a.as_slice().to_vec()),
                Value::DoubleArray(b),
            ],
        )
        .unwrap();
    // 8n^2 + 8n out; 12n back: total 8n^2 + 20n (§3.1).
    assert_eq!(client.bytes_sent(), 8 * n * n + 8 * n);
    assert_eq!(client.bytes_received(), 12 * n);
    server.shutdown();
}

#[test]
fn dgefa_dgesl_split_call_chain() {
    let server = start_server(2, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let mut client = NinfClient::connect(&addr).unwrap();
    let n = 32usize;
    let (a, b) = ninf::exec::matgen(n);

    let fa = client
        .ninf_call(
            "dgefa",
            &[Value::Int(n as i32), Value::DoubleArray(a.as_slice().to_vec())],
        )
        .unwrap();
    let Value::IntArray(info) = &fa[2] else { panic!() };
    assert_eq!(info[0], 0);

    let sl = client
        .ninf_call(
            "dgesl",
            &[Value::Int(n as i32), fa[0].clone(), fa[1].clone(), Value::DoubleArray(b)],
        )
        .unwrap();
    let Value::DoubleArray(x) = &sl[0] else { panic!() };
    for xi in x {
        assert!((xi - 1.0).abs() < 1e-8);
    }
    server.shutdown();
}

#[test]
fn async_calls_overlap_and_join() {
    let server = start_server(4, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let pending: Vec<_> = (0..4)
        .map(|_| call_async(addr.clone(), "ep".into(), vec![Value::Int(12)]))
        .collect();
    for call in pending {
        let out = call.wait().unwrap();
        let Value::DoubleArray(counts) = &out[1] else { panic!() };
        assert_eq!(counts.len(), 10);
    }
    assert_eq!(server.stats().completed(), 4);
    server.shutdown();
}

#[test]
fn metaserver_distributes_ep_transaction() {
    let servers: Vec<NinfServer> = (0..3).map(|_| start_server(1, ExecMode::TaskParallel)).collect();
    let mut dir = Directory::new();
    for (i, s) in servers.iter().enumerate() {
        dir.register(ServerEntry {
            name: format!("node{i}"),
            addr: s.addr().to_string(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
    }
    let meta = Metaserver::new(dir, Balancing::RoundRobin);

    let mut tx = Transaction::new();
    for _ in 0..9 {
        let sums = tx.slot();
        let counts = tx.slot();
        tx.call("ep", vec![TxArg::Value(Value::Int(10))], vec![Some(sums), Some(counts)]);
    }
    let slots = meta.execute_transaction(&tx).unwrap();
    assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 18);
    // Round-robin: 3 calls each.
    for s in &servers {
        assert_eq!(s.stats().completed(), 3);
    }
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn transaction_dataflow_across_servers() {
    // dgefa on one server, dgesl potentially on another: slots carry the
    // factored matrix between machines.
    let servers: Vec<NinfServer> = (0..2).map(|_| start_server(1, ExecMode::TaskParallel)).collect();
    let mut dir = Directory::new();
    for (i, s) in servers.iter().enumerate() {
        dir.register(ServerEntry {
            name: format!("node{i}"),
            addr: s.addr().to_string(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
    }
    let meta = Metaserver::new(dir, Balancing::RoundRobin);

    let n = 24usize;
    let (a, b) = ninf::exec::matgen(n);
    let mut tx = Transaction::new();
    let lu = tx.slot();
    let piv = tx.slot();
    tx.call(
        "dgefa",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Value(Value::DoubleArray(a.as_slice().to_vec())),
        ],
        vec![Some(lu), Some(piv), None],
    );
    let x = tx.slot();
    tx.call(
        "dgesl",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Ref(lu),
            TxArg::Ref(piv),
            TxArg::Value(Value::DoubleArray(b)),
        ],
        vec![Some(x)],
    );
    let slots = meta.execute_transaction(&tx).unwrap();
    let Some(Value::DoubleArray(sol)) = &slots[x.0] else { panic!() };
    for xi in sol {
        assert!((xi - 1.0).abs() < 1e-8);
    }
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn server_survives_bad_clients() {
    // A client that sends garbage arguments, then a well-formed call: the
    // server must keep serving (the paper's fault-resiliency requirement).
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();

    let mut bad = NinfClient::connect(&addr).unwrap();
    let err = bad
        .ninf_call("linpack", &[Value::Int(-3)])
        .unwrap_err();
    assert!(matches!(err, ProtocolError::Remote(_)));

    let mut good = NinfClient::connect(&addr).unwrap();
    let out = good.ninf_call("ep", &[Value::Int(8)]).unwrap();
    assert_eq!(out.len(), 2);
    server.shutdown();
}

#[test]
fn two_phase_call_survives_disconnect() {
    // §5.1: submit, drop the connection while the server computes, then poll
    // and fetch from fresh connections.
    let server = start_server(2, ExecMode::TaskParallel);
    let addr = server.addr().to_string();

    let job = {
        let mut submitter = NinfClient::connect(&addr).unwrap();
        submitter.submit_job("ep", &[Value::Int(16)]).unwrap()
        // connection dropped here
    };
    // The server-side table tracks the job even with no connection open.
    server.jobs().wait_done(job);

    let mut fetcher = NinfClient::connect(&addr).unwrap();
    assert_eq!(fetcher.poll_job(job).unwrap(), ninf::protocol::JobPhase::Done);
    let results = fetcher.fetch_result(job).unwrap();
    let Value::DoubleArray(counts) = &results[1] else { panic!() };
    let total: f64 = counts.iter().sum();
    assert!((total / (1 << 16) as f64 - std::f64::consts::FRAC_PI_4).abs() < 0.02);
    // The ticket is consumed.
    assert_eq!(fetcher.poll_job(job).unwrap(), ninf::protocol::JobPhase::Unknown);
    server.shutdown();
}

#[test]
fn two_phase_blocking_helper() {
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let results = ninf::client::call_two_phase(
        &addr,
        "ep",
        &[Value::Int(14)],
        std::time::Duration::from_millis(5),
    )
    .unwrap();
    assert_eq!(results.len(), 2);
    server.shutdown();
}

#[test]
fn two_phase_reports_failures_on_fetch() {
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let mut client = NinfClient::connect(&addr).unwrap();
    // Singular matrix: the failure is stored and returned at fetch time.
    let job = client
        .submit_job(
            "linpack",
            &[
                Value::Int(2),
                Value::DoubleArray(vec![1.0, 2.0, 2.0, 4.0]),
                Value::DoubleArray(vec![1.0, 1.0]),
            ],
        )
        .unwrap();
    server.jobs().wait_done(job);
    assert_eq!(client.poll_job(job).unwrap(), ninf::protocol::JobPhase::Failed);
    let err = client.fetch_result(job).unwrap_err();
    assert!(matches!(err, ProtocolError::Remote(_)));
    server.shutdown();
}

#[test]
fn metaserver_ft_retries_on_failure() {
    // A directory with one dead and one live server: fault-tolerant
    // transaction execution must succeed.
    let live = start_server(1, ExecMode::TaskParallel);
    let mut dir = Directory::new();
    dir.register(ServerEntry {
        name: "dead".into(),
        addr: "127.0.0.1:1".into(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    dir.register(ServerEntry {
        name: "live".into(),
        addr: live.addr().to_string(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    let meta = Metaserver::new(dir, Balancing::RoundRobin);
    let mut tx = Transaction::new();
    let out = tx.slot();
    tx.call("ep", vec![TxArg::Value(Value::Int(10))], vec![Some(out), None]);
    let slots = meta.execute_transaction_ft(&tx).unwrap();
    assert!(slots[out.0].is_some());
    live.shutdown();
}

#[test]
fn local_transaction_execution_without_metaserver() {
    let server = start_server(2, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();

    let n = 16usize;
    let (a, b) = ninf::exec::matgen(n);
    let mut tx = Transaction::new();
    let lu = tx.slot();
    let piv = tx.slot();
    tx.call(
        "dgefa",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Value(Value::DoubleArray(a.as_slice().to_vec())),
        ],
        vec![Some(lu), Some(piv), None],
    );
    let x = tx.slot();
    tx.call(
        "dgesl",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Ref(lu),
            TxArg::Ref(piv),
            TxArg::Value(Value::DoubleArray(b)),
        ],
        vec![Some(x)],
    );
    let slots = ninf::client::execute_locally(&mut client, &tx).unwrap();
    let Some(Value::DoubleArray(sol)) = &slots[x.0] else { panic!() };
    for xi in sol {
        assert!((xi - 1.0).abs() < 1e-8);
    }
    server.shutdown();
}

#[test]
fn remote_condition_estimate() {
    // dgeco over the wire: identity well-conditioned, Hilbert not.
    let server = start_server(1, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let n = 8usize;
    let mut eye = vec![0.0; n * n];
    for i in 0..n {
        eye[i * n + i] = 1.0;
    }
    let out = client
        .ninf_call("dgeco", &[Value::Int(n as i32), Value::DoubleArray(eye)])
        .unwrap();
    let Value::DoubleArray(rcond) = &out[2] else { panic!() };
    assert!((rcond[0] - 1.0).abs() < 1e-9);
    server.shutdown();
}

#[test]
fn load_reports_reflect_activity() {
    let server = start_server(2, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let report = client.query_load().unwrap();
    assert_eq!(report.pes, 2);
    assert_eq!(report.running, 0);
    server.shutdown();
}

#[test]
fn interface_query_matches_registered_idl() {
    let server = start_server(1, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let iface = client.query_interface("dmmul").unwrap();
    assert_eq!(iface.name, "dmmul");
    assert_eq!(iface.scalar_table, vec!["n"]);
    assert_eq!(iface.params.len(), 4);
    server.shutdown();
}
