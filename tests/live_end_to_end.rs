//! Cross-crate integration tests of the *live* Ninf system: real TCP, real
//! XDR marshalling, real numerical kernels, metaserver fan-out.

use std::time::{Duration, Instant};

use ninf::client::{call_async, CallOptions, NinfClient, Transaction, TxArg};
use ninf::metaserver::{Balancing, Directory, Metaserver, ServerEntry, QUARANTINE_THRESHOLD};
use ninf::protocol::{
    FaultPlan, FaultyTransport, Message, ProtocolError, TcpTransport, Transport, Value,
};
use ninf::server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};

fn start_server(pes: usize, mode: ExecMode) -> NinfServer {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, matches!(mode, ExecMode::DataParallel));
    NinfServer::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            pes,
            mode,
            policy: SchedPolicy::Fcfs,
            ..Default::default()
        },
    )
    .expect("server starts")
}

#[test]
fn full_linpack_call_over_tcp() {
    let server = start_server(2, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();

    let n = 64usize;
    let (a, b) = ninf::exec::matgen(n);
    let results = client
        .ninf_call(
            "linpack",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(a.as_slice().to_vec()),
                Value::DoubleArray(b.clone()),
            ],
        )
        .unwrap();

    // Remote solution must match a local solve and the residual must pass.
    let Value::DoubleArray(x) = &results[0] else {
        panic!("expected solution")
    };
    assert!(ninf::exec::residual_check(&a, x, &b) < 50.0);

    // Client-side byte accounting equals the paper's §3.1 traffic model:
    // A (8n²) + b (8n) out, x (8n) + ipvt (4n) back = 8n² + 20n in total.
    assert_eq!(
        client.bytes_sent() + client.bytes_received(),
        8 * n * n + 20 * n
    );
    server.shutdown();
}

#[test]
fn byte_accounting_matches_paper_formula_exactly() {
    let server = start_server(1, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let n = 40usize;
    let (a, b) = ninf::exec::matgen(n);
    client
        .ninf_call(
            "linpack",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(a.as_slice().to_vec()),
                Value::DoubleArray(b),
            ],
        )
        .unwrap();
    // 8n^2 + 8n out; 12n back: total 8n^2 + 20n (§3.1).
    assert_eq!(client.bytes_sent(), 8 * n * n + 8 * n);
    assert_eq!(client.bytes_received(), 12 * n);
    server.shutdown();
}

#[test]
fn dgefa_dgesl_split_call_chain() {
    let server = start_server(2, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let mut client = NinfClient::connect(&addr).unwrap();
    let n = 32usize;
    let (a, b) = ninf::exec::matgen(n);

    let fa = client
        .ninf_call(
            "dgefa",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(a.as_slice().to_vec()),
            ],
        )
        .unwrap();
    let Value::IntArray(info) = &fa[2] else {
        panic!()
    };
    assert_eq!(info[0], 0);

    let sl = client
        .ninf_call(
            "dgesl",
            &[
                Value::Int(n as i32),
                fa[0].clone(),
                fa[1].clone(),
                Value::DoubleArray(b),
            ],
        )
        .unwrap();
    let Value::DoubleArray(x) = &sl[0] else {
        panic!()
    };
    for xi in x {
        assert!((xi - 1.0).abs() < 1e-8);
    }
    server.shutdown();
}

#[test]
fn async_calls_overlap_and_join() {
    let server = start_server(4, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let pending: Vec<_> = (0..4)
        .map(|_| call_async(addr.clone(), "ep".into(), vec![Value::Int(12)]))
        .collect();
    for call in pending {
        let out = call.wait().unwrap();
        let Value::DoubleArray(counts) = &out[1] else {
            panic!()
        };
        assert_eq!(counts.len(), 10);
    }
    assert_eq!(server.stats().completed(), 4);
    server.shutdown();
}

#[test]
fn metaserver_distributes_ep_transaction() {
    let servers: Vec<NinfServer> = (0..3)
        .map(|_| start_server(1, ExecMode::TaskParallel))
        .collect();
    let mut dir = Directory::new();
    for (i, s) in servers.iter().enumerate() {
        dir.register(ServerEntry {
            name: format!("node{i}"),
            addr: s.addr().to_string(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
    }
    let meta = Metaserver::new(dir, Balancing::RoundRobin);

    let mut tx = Transaction::new();
    for _ in 0..9 {
        let sums = tx.slot();
        let counts = tx.slot();
        tx.call(
            "ep",
            vec![TxArg::Value(Value::Int(10))],
            vec![Some(sums), Some(counts)],
        );
    }
    let slots = meta.execute_transaction(&tx).unwrap();
    assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 18);
    // Round-robin: 3 calls each.
    for s in &servers {
        assert_eq!(s.stats().completed(), 3);
    }
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn transaction_dataflow_across_servers() {
    // dgefa on one server, dgesl potentially on another: slots carry the
    // factored matrix between machines.
    let servers: Vec<NinfServer> = (0..2)
        .map(|_| start_server(1, ExecMode::TaskParallel))
        .collect();
    let mut dir = Directory::new();
    for (i, s) in servers.iter().enumerate() {
        dir.register(ServerEntry {
            name: format!("node{i}"),
            addr: s.addr().to_string(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
    }
    let meta = Metaserver::new(dir, Balancing::RoundRobin);

    let n = 24usize;
    let (a, b) = ninf::exec::matgen(n);
    let mut tx = Transaction::new();
    let lu = tx.slot();
    let piv = tx.slot();
    tx.call(
        "dgefa",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Value(Value::DoubleArray(a.as_slice().to_vec())),
        ],
        vec![Some(lu), Some(piv), None],
    );
    let x = tx.slot();
    tx.call(
        "dgesl",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Ref(lu),
            TxArg::Ref(piv),
            TxArg::Value(Value::DoubleArray(b)),
        ],
        vec![Some(x)],
    );
    let slots = meta.execute_transaction(&tx).unwrap();
    let Some(Value::DoubleArray(sol)) = &slots[x.0] else {
        panic!()
    };
    for xi in sol {
        assert!((xi - 1.0).abs() < 1e-8);
    }
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn server_survives_bad_clients() {
    // A client that sends garbage arguments, then a well-formed call: the
    // server must keep serving (the paper's fault-resiliency requirement).
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();

    let mut bad = NinfClient::connect(&addr).unwrap();
    let err = bad.ninf_call("linpack", &[Value::Int(-3)]).unwrap_err();
    assert!(matches!(err, ProtocolError::Remote(_)));

    let mut good = NinfClient::connect(&addr).unwrap();
    let out = good.ninf_call("ep", &[Value::Int(8)]).unwrap();
    assert_eq!(out.len(), 2);
    server.shutdown();
}

#[test]
fn two_phase_call_survives_disconnect() {
    // §5.1: submit, drop the connection while the server computes, then poll
    // and fetch from fresh connections.
    let server = start_server(2, ExecMode::TaskParallel);
    let addr = server.addr().to_string();

    let job = {
        let mut submitter = NinfClient::connect(&addr).unwrap();
        submitter.submit_job("ep", &[Value::Int(16)]).unwrap()
        // connection dropped here
    };
    // The server-side table tracks the job even with no connection open.
    server.jobs().wait_done(job);

    let mut fetcher = NinfClient::connect(&addr).unwrap();
    assert_eq!(
        fetcher.poll_job(job).unwrap(),
        ninf::protocol::JobPhase::Done
    );
    let results = fetcher.fetch_result(job).unwrap();
    let Value::DoubleArray(counts) = &results[1] else {
        panic!()
    };
    let total: f64 = counts.iter().sum();
    assert!((total / (1 << 16) as f64 - std::f64::consts::FRAC_PI_4).abs() < 0.02);
    // The ticket is consumed.
    assert_eq!(
        fetcher.poll_job(job).unwrap(),
        ninf::protocol::JobPhase::Unknown
    );
    server.shutdown();
}

#[test]
fn two_phase_blocking_helper() {
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let results = ninf::client::call_two_phase(
        &addr,
        "ep",
        &[Value::Int(14)],
        std::time::Duration::from_millis(5),
    )
    .unwrap();
    assert_eq!(results.len(), 2);
    server.shutdown();
}

#[test]
fn two_phase_reports_failures_on_fetch() {
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let mut client = NinfClient::connect(&addr).unwrap();
    // Singular matrix: the failure is stored and returned at fetch time.
    let job = client
        .submit_job(
            "linpack",
            &[
                Value::Int(2),
                Value::DoubleArray(vec![1.0, 2.0, 2.0, 4.0]),
                Value::DoubleArray(vec![1.0, 1.0]),
            ],
        )
        .unwrap();
    server.jobs().wait_done(job);
    assert_eq!(
        client.poll_job(job).unwrap(),
        ninf::protocol::JobPhase::Failed
    );
    let err = client.fetch_result(job).unwrap_err();
    assert!(matches!(err, ProtocolError::Remote(_)));
    server.shutdown();
}

#[test]
fn metaserver_ft_retries_on_failure() {
    // A directory with one dead and one live server: fault-tolerant
    // transaction execution must succeed.
    let live = start_server(1, ExecMode::TaskParallel);
    let mut dir = Directory::new();
    dir.register(ServerEntry {
        name: "dead".into(),
        addr: "127.0.0.1:1".into(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    dir.register(ServerEntry {
        name: "live".into(),
        addr: live.addr().to_string(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    let meta = Metaserver::new(dir, Balancing::RoundRobin);
    let mut tx = Transaction::new();
    let out = tx.slot();
    tx.call(
        "ep",
        vec![TxArg::Value(Value::Int(10))],
        vec![Some(out), None],
    );
    let slots = meta.execute_transaction_ft(&tx).unwrap();
    assert!(slots[out.0].is_some());
    live.shutdown();
}

#[test]
fn local_transaction_execution_without_metaserver() {
    let server = start_server(2, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();

    let n = 16usize;
    let (a, b) = ninf::exec::matgen(n);
    let mut tx = Transaction::new();
    let lu = tx.slot();
    let piv = tx.slot();
    tx.call(
        "dgefa",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Value(Value::DoubleArray(a.as_slice().to_vec())),
        ],
        vec![Some(lu), Some(piv), None],
    );
    let x = tx.slot();
    tx.call(
        "dgesl",
        vec![
            TxArg::Value(Value::Int(n as i32)),
            TxArg::Ref(lu),
            TxArg::Ref(piv),
            TxArg::Value(Value::DoubleArray(b)),
        ],
        vec![Some(x)],
    );
    let slots = ninf::client::execute_locally(&mut client, &tx).unwrap();
    let Some(Value::DoubleArray(sol)) = &slots[x.0] else {
        panic!()
    };
    for xi in sol {
        assert!((xi - 1.0).abs() < 1e-8);
    }
    server.shutdown();
}

#[test]
fn remote_condition_estimate() {
    // dgeco over the wire: identity well-conditioned, Hilbert not.
    let server = start_server(1, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let n = 8usize;
    let mut eye = vec![0.0; n * n];
    for i in 0..n {
        eye[i * n + i] = 1.0;
    }
    let out = client
        .ninf_call("dgeco", &[Value::Int(n as i32), Value::DoubleArray(eye)])
        .unwrap();
    let Value::DoubleArray(rcond) = &out[2] else {
        panic!()
    };
    assert!((rcond[0] - 1.0).abs() < 1e-9);
    server.shutdown();
}

#[test]
fn load_reports_reflect_activity() {
    let server = start_server(2, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let report = client.query_load().unwrap();
    assert_eq!(report.pes, 2);
    assert_eq!(report.running, 0);
    server.shutdown();
}

/// A listener that accepts connections and never answers — the worst live
/// failure mode, invisible to connection-refused checks.
fn hung_listener() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((sock, _)) = listener.accept() {
            held.push(sock); // hold the socket open, say nothing
        }
    });
    addr
}

#[test]
fn silent_server_yields_typed_timeout_within_deadline() {
    // The headline failure-path guarantee: a call into an
    // accepting-but-silent server completes with a typed Timeout roughly at
    // the configured deadline — it does not hang.
    let addr = hung_listener();
    let deadline = Duration::from_millis(200);
    let mut client = NinfClient::connect_with(&addr, CallOptions::with_deadline(deadline)).unwrap();
    let start = Instant::now();
    let err = client.ninf_call("ep", &[Value::Int(8)]).unwrap_err();
    let elapsed = start.elapsed();
    match err {
        ProtocolError::Timeout { operation, after } => {
            assert_eq!(operation, "read");
            assert_eq!(after, deadline);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(2),
        "took {elapsed:?}, deadline was {deadline:?}"
    );
}

#[test]
fn server_death_mid_call_yields_typed_error_not_hang() {
    // The peer accepts and immediately dies: the client's call must surface
    // a typed error (EOF → Io / Disconnected) promptly, never block.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        if let Ok((sock, _)) = listener.accept() {
            drop(sock); // "killed" before replying
        }
    });
    let mut client = NinfClient::connect_with(
        &addr,
        CallOptions::with_deadline(Duration::from_millis(500)),
    )
    .unwrap();
    let start = Instant::now();
    let err = client.ninf_call("ep", &[Value::Int(8)]).unwrap_err();
    assert!(
        matches!(
            err,
            ProtocolError::Io(_) | ProtocolError::Disconnected | ProtocolError::Timeout { .. }
        ),
        "unexpected error {err:?}"
    );
    assert!(start.elapsed() < Duration::from_secs(2));
}

#[test]
fn client_retries_reach_a_late_starting_server() {
    // The server comes up only after the first attempts have failed: the
    // retry/backoff policy dials fresh connections until one lands.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe); // free the port for the late server
    let addr2 = addr.clone();
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        let mut registry = Registry::new();
        register_stdlib(&mut registry, false);
        NinfServer::start(
            &addr2,
            registry,
            ServerConfig {
                pes: 1,
                mode: ExecMode::TaskParallel,
                policy: SchedPolicy::Fcfs,
                ..Default::default()
            },
        )
        .expect("late server starts")
    });
    let out = ninf::client::call_with_options(
        &addr,
        "ep",
        &[Value::Int(8)],
        CallOptions {
            deadline: Some(Duration::from_secs(2)),
            retries: 40,
            backoff: Duration::from_millis(25),
            ..CallOptions::default()
        },
    )
    .unwrap();
    assert_eq!(out.len(), 2);
    starter.join().unwrap().shutdown();
}

#[test]
fn garbled_frames_are_rejected_and_server_keeps_serving() {
    // A client whose frames get garbled on the wire: the server's framing
    // rejects them (bad magic) and drops the connection; the server itself
    // keeps serving clean clients afterwards.
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();

    let tcp = TcpTransport::connect_with_deadline(&addr, Some(Duration::from_millis(500))).unwrap();
    let mut garbler = FaultyTransport::new(
        tcp,
        FaultPlan {
            garble_prob: 1.0,
            ..FaultPlan::default()
        },
    );
    garbler.send(&Message::QueryLoad).unwrap();
    // The server never answers a garbled frame — it closes the connection.
    assert!(garbler.recv().is_err());
    assert_eq!(garbler.stats().garbled, 1);

    let mut clean = NinfClient::connect(&addr).unwrap();
    assert_eq!(clean.query_load().unwrap().pes, 1);
    server.shutdown();
}

#[test]
fn dropped_requests_surface_as_read_timeouts() {
    // Drop faults swallow the request; with a read deadline armed the
    // client sees the same typed Timeout a downed link would produce.
    let server = start_server(1, ExecMode::TaskParallel);
    let addr = server.addr().to_string();
    let deadline = Duration::from_millis(150);
    let tcp = TcpTransport::connect_with_deadline(&addr, Some(deadline)).unwrap();
    let mut lossy = FaultyTransport::new(
        tcp,
        FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::default()
        },
    );
    lossy.send(&Message::QueryLoad).unwrap(); // silently dropped
    match lossy.recv().unwrap_err() {
        ProtocolError::Timeout { operation, .. } => assert_eq!(operation, "read"),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert_eq!(lossy.stats().dropped, 1);
    server.shutdown();
}

#[test]
fn quarantined_live_server_is_probed_and_reinstated() {
    let server = start_server(1, ExecMode::TaskParallel);
    let mut dir = Directory::new();
    dir.register(ServerEntry {
        name: "flaky".into(),
        addr: server.addr().to_string(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    for _ in 0..QUARANTINE_THRESHOLD {
        dir.record_failure(0);
    }
    assert!(dir.is_quarantined(0));
    assert!(dir.available_indices().is_empty());
    // The server answers the reinstatement probe: back in rotation.
    assert!(dir.try_reinstate(0, Some(Duration::from_millis(500))));
    assert!(!dir.is_quarantined(0));
    assert_eq!(dir.available_indices(), vec![0]);
    server.shutdown();
}

#[test]
fn metaserver_ft_survives_hung_server_live() {
    // Acceptance: execute_transaction_ft succeeds against a directory
    // containing a hung (accepting-but-silent) server, not just a
    // connection-refusing one.
    let live = start_server(1, ExecMode::TaskParallel);
    let mut dir = Directory::new();
    dir.register(ServerEntry {
        name: "hung".into(),
        addr: hung_listener(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    dir.register(ServerEntry {
        name: "live".into(),
        addr: live.addr().to_string(),
        bandwidth_bytes_per_sec: 10e6,
        linpack_mflops: 100.0,
    });
    let meta = Metaserver::with_options(
        dir,
        Balancing::RoundRobin,
        CallOptions {
            deadline: Some(Duration::from_millis(300)),
            retries: 0,
            backoff: Duration::from_millis(10),
            ..CallOptions::default()
        },
        Some(Duration::from_millis(200)),
    );
    let mut tx = Transaction::new();
    let mut outs = Vec::new();
    for _ in 0..4 {
        let sums = tx.slot();
        tx.call(
            "ep",
            vec![TxArg::Value(Value::Int(10))],
            vec![Some(sums), None],
        );
        outs.push(sums);
    }
    let start = Instant::now();
    let slots = meta.execute_transaction_ft(&tx).unwrap();
    for s in outs {
        assert!(slots[s.0].is_some());
    }
    // Bounded: each hung attempt costs one deadline, not forever.
    assert!(start.elapsed() < Duration::from_secs(20));
    live.shutdown();
}

#[test]
fn interface_query_matches_registered_idl() {
    let server = start_server(1, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let iface = client.query_interface("dmmul").unwrap();
    assert_eq!(iface.name, "dmmul");
    assert_eq!(iface.scalar_table, vec!["n"]);
    assert_eq!(iface.params.len(), 4);
    server.shutdown();
}

#[test]
fn evicted_arg_is_refilled_transparently_exactly_once() {
    // The eviction race: the client decides to send digests, the server
    // evicts the referenced values before the Invoke lands. The call must
    // still complete exactly once — the client absorbs the NeedArg, ships
    // the arrays inline, and stays within the same attempt.
    let server = start_server(2, ExecMode::TaskParallel);
    let mut client = NinfClient::connect(&server.addr().to_string()).unwrap();
    let n = 512usize;
    let (masses, pos) = ninf::exec::nbody_particles(n);
    let args = |step: i32| {
        vec![
            Value::Int(n as i32),
            Value::Int(step),
            Value::DoubleArray(masses.clone()),
            Value::DoubleArray(pos.clone()),
        ]
    };

    // Cold call ships inline and primes the store; warm call ships refs.
    client.ninf_call("nbody", &args(0)).unwrap();
    client.ninf_call("nbody", &args(1)).unwrap();
    let warm = client.last_timing().unwrap();
    assert_eq!(warm.args_refd, 2, "both arrays sent by digest");
    assert_eq!(warm.args_refilled, 0);

    // Evict behind the client's back, then call again: the client still
    // believes the server holds both digests.
    server.arg_store().clear();
    let out = client.ninf_call("nbody", &args(2)).unwrap();
    let refill = client.last_timing().unwrap();
    assert_eq!(refill.attempts, 1, "the refill is not a retry");
    assert_eq!(refill.args_refd, 2);
    assert_eq!(refill.args_refilled, 2, "both evicted arrays re-shipped");
    let expected = ninf::exec::nbody_kernel(&masses, &pos, 2).to_vec();
    assert_eq!(out, vec![Value::DoubleArray(expected)]);

    // Exactly once: three calls issued, three executions recorded.
    let (_, _, records) = client.query_stats(0).unwrap();
    assert_eq!(records.iter().filter(|r| r.routine == "nbody").count(), 3);

    // The refill re-primed the store, so the next call refs cleanly again.
    client.ninf_call("nbody", &args(3)).unwrap();
    let reprimed = client.last_timing().unwrap();
    assert_eq!(reprimed.args_refd, 2);
    assert_eq!(reprimed.args_refilled, 0);
    server.shutdown();
}
