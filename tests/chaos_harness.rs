//! Integration tests of the chaos/conformance harness: bit-deterministic
//! transcripts, injected-violation detection, and a 100-seed flake sweep of
//! the fault-tolerant metaserver scenario.

use ninf::loadgen::{run_scenario, scenario};
use ninf::testkit::{chaos, chaos_names, run_chaos, Inject};

/// `ninf-chaos run --seed S` is bit-deterministic: the same (scenario,
/// seed) yields byte-identical invariant-check transcripts — including the
/// planned fault and arrival schedules — across runs.
#[test]
fn same_seed_runs_produce_identical_transcripts() {
    for name in chaos_names() {
        let spec = chaos(name).expect("scenario exists");
        let a = run_chaos(&spec, 1997, Inject::None).expect("run a");
        let b = run_chaos(&spec, 1997, Inject::None).expect("run b");
        assert_eq!(
            a.transcript, b.transcript,
            "{name}: same-seed transcripts differ"
        );
        assert!(
            a.pass(),
            "{name} seed 1997 violated an invariant:\n{}",
            a.transcript
        );
        // A different seed reschedules faults/arrivals, so the transcript
        // (which embeds those schedules) must change with it.
        let c = run_chaos(&spec, 1998, Inject::None).expect("run c");
        assert_ne!(a.transcript, c.transcript, "{name}: seed not in transcript");
    }
}

/// A deliberately injected exactly-once violation (a duplicated completion
/// record) is caught, and the reported detail is deterministic — the same
/// seed reproduces the same violation text.
#[test]
fn injected_duplicate_completion_is_caught_deterministically() {
    let spec = chaos("clean").expect("scenario exists");
    let a = run_chaos(&spec, 7, Inject::DuplicateCompletion).expect("run a");
    assert!(!a.pass(), "injected violation went undetected");
    let exactly_once = a
        .checks
        .iter()
        .find(|c| c.name == "exactly-once")
        .expect("exactly-once check ran");
    assert!(
        !exactly_once.pass,
        "wrong invariant tripped: {:?}",
        a.violations()
    );
    assert!(
        exactly_once.detail.contains("2 times"),
        "detail should name the duplicate count: {}",
        exactly_once.detail
    );
    let b = run_chaos(&spec, 7, Inject::DuplicateCompletion).expect("run b");
    assert_eq!(
        a.transcript, b.transcript,
        "violation transcript not deterministic"
    );
}

/// Corruption sweep: 100 consecutive seeds of the `corrupt` scenario
/// (seeded frame truncation + garbling). With checksummed v2 framing every
/// injected corruption must surface as a typed error — zero frames decode
/// after a truncate/garble, no call on a corrupted stream succeeds
/// (`corruption-rejected`), and trace connectedness holds for every `Ok`
/// with no corrupted-stream carve-out (`trace-connected`).
#[test]
fn corrupt_scenario_rejects_every_corruption_over_100_seeds() {
    let spec = chaos("corrupt").expect("scenario exists");
    for seed in 3000..3100u64 {
        let run = run_chaos(&spec, seed, Inject::None)
            .unwrap_or_else(|e| panic!("corrupt seed {seed} failed to run: {e}"));
        assert!(
            run.pass(),
            "corrupt seed {seed} violated an invariant:\n{}",
            run.transcript
        );
        for name in ["corruption-rejected", "trace-connected"] {
            assert!(
                run.checks.iter().any(|c| c.name == name && c.pass),
                "corrupt seed {seed}: check {name} missing from transcript"
            );
        }
    }
}

/// Flake sweep: 100 consecutive seeds of the fault-tolerant metaserver
/// scenario all complete with conserved outcomes and no panics. Any seed
/// that fails here is a ready-made reproducer.
#[test]
fn metaserver_ft_is_flake_free_over_100_seeds() {
    let sc = scenario("metaserver-ft").expect("scenario exists");
    for seed in 2000..2100u64 {
        let report = run_scenario(&sc, 2, seed)
            .unwrap_or_else(|e| panic!("metaserver-ft seed {seed} failed: {e}"));
        let issued: usize = sc.spec.calls_per_client * 2;
        let accounted = report.fleet.ok
            + report.fleet.remote_errors
            + report.fleet.timeouts
            + report.fleet.transport_errors;
        assert_eq!(
            accounted, issued,
            "seed {seed}: outcomes not conserved ({accounted}/{issued})"
        );
        assert!(report.fleet.ok > 0, "seed {seed}: no call ever succeeded");
    }
}
