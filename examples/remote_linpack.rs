//! A live miniature of Figure 3: sweep the Linpack size and compare *local*
//! solves on this machine against remote `Ninf_call`s over real TCP
//! (loopback), printing observed Mflops and the transfer volume.
//!
//! ```text
//! cargo run --release --example remote_linpack [max_n]
//! ```

use ninf::client::NinfClient;
use ninf::exec::{linpack_flops, linpack_message_bytes, matgen, solve};
use ninf::protocol::Value;
use ninf::server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};
use std::time::Instant;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);

    let mut registry = Registry::new();
    register_stdlib(&mut registry, /* data_parallel = */ true);
    let server = NinfServer::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            pes: 4,
            mode: ExecMode::DataParallel,
            policy: SchedPolicy::Fcfs,
            ..Default::default()
        },
    )
    .expect("start server");
    let mut client = NinfClient::connect(&server.addr().to_string()).expect("connect");

    println!(
        "{:>6} {:>14} {:>14} {:>12}",
        "n", "local Mflops", "ninf Mflops", "bytes moved"
    );
    let mut n = 100usize;
    while n <= max_n {
        // Local solve.
        let (orig, b) = matgen(n);
        let mut a = orig.clone();
        let mut rhs = b.clone();
        let t0 = Instant::now();
        let x_local = solve(&mut a, &mut rhs).expect("non-singular");
        let t_local = t0.elapsed().as_secs_f64();

        // Remote Ninf_call (two-stage RPC, full marshalling, loopback TCP).
        let t1 = Instant::now();
        let results = client
            .ninf_call(
                "linpack",
                &[
                    Value::Int(n as i32),
                    Value::DoubleArray(orig.as_slice().to_vec()),
                    Value::DoubleArray(b.clone()),
                ],
            )
            .expect("remote linpack");
        let t_remote = t1.elapsed().as_secs_f64();

        let Value::DoubleArray(x_remote) = &results[0] else {
            unreachable!()
        };
        let max_dev = x_local
            .iter()
            .zip(x_remote)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_dev < 1e-8,
            "local and remote solutions must agree (dev {max_dev})"
        );

        let flops = linpack_flops(n as u64) as f64;
        println!(
            "{n:>6} {:>14.1} {:>14.1} {:>12}",
            flops / t_local / 1e6,
            flops / t_remote / 1e6,
            linpack_message_bytes(n as u64)
        );
        n *= 2;
    }
    println!(
        "total payload: {} bytes sent, {} received — loopback has no 0.17 MB/s WAN link, \
         so remote ≈ local minus marshalling; see `wan_study` for the modelled WAN",
        client.bytes_sent(),
        client.bytes_received()
    );
    server.shutdown();
}
