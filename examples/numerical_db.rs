//! The database side of Ninf: run a numerical database server, `Ninf_query`
//! it for a matrix, and feed the result to a computational server — the
//! two-server pipeline of §2's Figure 1.
//!
//! ```text
//! cargo run --example numerical_db
//! ```

use ninf::client::NinfClient;
use ninf::db::{builtin_datasets, ninf_query, DbServer};
use ninf::protocol::Value;
use ninf::server::{builtin::register_stdlib, NinfServer, Registry, ServerConfig};

fn main() {
    // --- the database server, loaded with constants and test matrices.
    let db = DbServer::start("127.0.0.1:0", builtin_datasets()).expect("db server");
    let db_addr = db.addr().to_string();
    println!("Ninf database server at {db_addr}");

    // --- the computational server.
    let mut registry = Registry::new();
    register_stdlib(&mut registry, false);
    let compute =
        NinfServer::start("127.0.0.1:0", registry, ServerConfig::default()).expect("compute");
    println!("Ninf computational server at {}", compute.addr());

    // --- browse the database.
    let (listing, _) = ninf_query(&db_addr, "LIST").expect("LIST");
    println!("\ndatasets:\n{listing}\n");

    // --- Ninf_query: fetch the Hilbert matrix (ill-conditioned test case).
    let n = 8usize;
    let (desc, values) = ninf_query(&db_addr, "GET matrix/hilbert8").expect("GET");
    println!("fetched: {desc}");
    let Value::DoubleArray(h) = &values[1] else {
        unreachable!()
    };

    // --- Ninf_call: factor + solve it remotely.
    let b: Vec<f64> = {
        // b = H * ones so the true solution is all-ones.
        let m = ninf::exec::Matrix::from_col_major(n, n, h.clone());
        m.matvec(&vec![1.0; n])
    };
    let mut client = NinfClient::connect(&compute.addr().to_string()).expect("connect");
    let results = client
        .ninf_call(
            "linpack",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(h.clone()),
                Value::DoubleArray(b),
            ],
        )
        .expect("linpack");
    let Value::DoubleArray(x) = &results[0] else {
        unreachable!()
    };
    let max_err = x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0f64, f64::max);
    println!(
        "solved hilbert{n} remotely: max |x_i - 1| = {max_err:.2e} \
         (large-ish — Hilbert matrices are brutally ill-conditioned)"
    );

    // --- sub-matrix queries ship only what you need.
    let (desc, values) = ninf_query(&db_addr, "GET matrix/linpack100 SUB 0 4 0 4").expect("SUB");
    let Value::DoubleArray(block) = &values[1] else {
        unreachable!()
    };
    println!(
        "sub-matrix query: {desc} -> {} doubles (not 10000)",
        block.len()
    );

    compute.shutdown();
    db.shutdown();
}
