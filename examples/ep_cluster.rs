//! Task-parallel EP across a fleet of Ninf servers via the metaserver — the
//! live-system version of the paper's §4.3.1 benchmark:
//!
//! ```c
//! Ninf_transaction_begin();
//! for (i = 1; i <= numprocs(); i++) Ninf_call("ep", ...);
//! Ninf_transaction_end();
//! ```
//!
//! ```text
//! cargo run --example ep_cluster [n_servers] [m]
//! ```

use ninf::client::{Transaction, TxArg};
use ninf::exec::{ep_kernel, EpResult, EP_GAUSSIAN_BINS};
use ninf::metaserver::{Balancing, Directory, Metaserver, ServerEntry};
use ninf::protocol::Value;
use ninf::server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_servers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let m: i32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);

    // --- the "Alpha cluster": one Ninf computational server per node.
    let mut directory = Directory::new();
    let servers: Vec<NinfServer> = (0..n_servers)
        .map(|i| {
            let mut registry = Registry::new();
            register_stdlib(&mut registry, false);
            let server = NinfServer::start(
                "127.0.0.1:0",
                registry,
                ServerConfig {
                    pes: 1,
                    mode: ExecMode::TaskParallel,
                    policy: SchedPolicy::Fcfs,
                    ..Default::default()
                },
            )
            .expect("start server");
            directory.register(ServerEntry {
                name: format!("alpha{i:02}"),
                addr: server.addr().to_string(),
                bandwidth_bytes_per_sec: 10e6,
                linpack_mflops: 140.0,
            });
            server
        })
        .collect();
    println!("cluster up: {n_servers} Ninf servers");

    // --- record the transaction: n_servers independent EP calls.
    let meta = Metaserver::new(directory, Balancing::RoundRobin);
    let mut tx = Transaction::new();
    let mut slots = Vec::new();
    for _ in 0..n_servers {
        let sums = tx.slot();
        let counts = tx.slot();
        tx.call(
            "ep",
            vec![TxArg::Value(Value::Int(m))],
            vec![Some(sums), Some(counts)],
        );
        slots.push((sums, counts));
    }
    let levels = tx.dependency_levels().expect("acyclic");
    println!(
        "transaction: {} calls, {} dependency level(s) -> all task-parallel",
        tx.calls().len(),
        levels.len()
    );

    // --- distributed run.
    let t0 = Instant::now();
    let results = meta.execute_transaction(&tx).expect("transaction");
    let distributed = t0.elapsed();

    // Merge the O(1)-sized partial results.
    let mut merged = EpResult {
        sx: 0.0,
        sy: 0.0,
        counts: [0; EP_GAUSSIAN_BINS],
        accepted: 0,
        trials: 0,
    };
    for &(sums, counts) in &slots {
        let Some(Value::DoubleArray(s)) = &results[sums.0] else {
            panic!("missing sums")
        };
        let Some(Value::DoubleArray(c)) = &results[counts.0] else {
            panic!("missing counts")
        };
        merged.sx += s[0];
        merged.sy += s[1];
        for (dst, src) in merged.counts.iter_mut().zip(c) {
            *dst += *src as u64;
        }
    }
    merged.accepted = merged.counts.iter().sum();
    merged.trials = (n_servers as u64) << m;

    // --- local single-node run for the speedup figure.
    let t1 = Instant::now();
    let local = ep_kernel(m as u32);
    let local_time = t1.elapsed();

    println!(
        "distributed: {n_servers} x 2^{m} trials in {distributed:?}  (sx={:.3}, sy={:.3}, accepted={})",
        merged.sx, merged.sy, merged.accepted
    );
    println!(
        "local      : 1 x 2^{m} trials in {local_time:?}        (accepted={})",
        local.accepted
    );
    println!(
        "acceptance rate {:.4} (pi/4 = {:.4}); annuli counts: {:?}",
        merged.accepted as f64 / merged.trials as f64,
        std::f64::consts::FRAC_PI_4,
        merged.counts
    );

    for s in servers {
        s.shutdown();
    }
}
