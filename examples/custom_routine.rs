//! Registering your *own* routine on a Ninf server: write IDL, bind a
//! handler, serve it, call it — the full library-provider workflow of §2.1/§2.3.
//!
//! ```text
//! cargo run --example custom_routine
//! ```

use std::sync::Arc;

use ninf::client::NinfClient;
use ninf::protocol::Value;
use ninf::server::{NinfServer, Registry, ServerConfig};

// The interface: a 1-D convolution whose output size depends on *two*
// scalar inputs — exactly the scalar-dependent sizing Ninf IDL exists for.
const CONVOLVE_IDL: &str = r#"
    Define convolve(mode_in int n, mode_in int k,
                    mode_in double signal[n],
                    mode_in double kernel[k],
                    mode_out double out[n+k-1])
    "1-D direct convolution",
    Calls "C" conv(n, k, signal, kernel, out);
"#;

fn main() {
    // --- provider side: registry with one custom executable.
    let mut registry = Registry::new();
    registry
        .register(
            CONVOLVE_IDL,
            Arc::new(|args: &[Value]| {
                let n = args[0].as_scalar_i64().ok_or("n must be integer")? as usize;
                let k = args[1].as_scalar_i64().ok_or("k must be integer")? as usize;
                let Value::DoubleArray(signal) = &args[2] else {
                    return Err("signal must be doubles".into());
                };
                let Value::DoubleArray(kernel) = &args[3] else {
                    return Err("kernel must be doubles".into());
                };
                let mut out = vec![0.0; n + k - 1];
                for (i, &s) in signal.iter().enumerate() {
                    for (j, &w) in kernel.iter().enumerate() {
                        out[i + j] += s * w;
                    }
                }
                Ok(vec![Value::DoubleArray(out)])
            }),
        )
        .expect("valid IDL");

    // Show what the stub generator would have emitted for this IDL.
    let def = ninf::idl::parse_one(CONVOLVE_IDL).expect("parses");
    println!("--- stub generator output (cargo run -p ninf-bench --bin stubgen) ---");
    for line in ninf::idl::generate_handler_stub(&def).lines().take(8) {
        println!("{line}");
    }
    println!("    ... (handler body elided; we registered a hand-written one)\n");

    let server =
        NinfServer::start("127.0.0.1:0", registry, ServerConfig::default()).expect("server");

    // --- client side: no stubs, no headers, no IDL file. The client learns
    // the layout (including the n+k-1 output size) from the server.
    let mut client = NinfClient::connect(&server.addr().to_string()).expect("connect");
    let iface = client.query_interface("convolve").expect("interface");
    println!(
        "fetched compiled interface `{}` with {} params; scalar table {:?}",
        iface.name,
        iface.params.len(),
        iface.scalar_table
    );

    let signal = vec![1.0, 2.0, 3.0, 4.0];
    let kernel = vec![0.5, 0.5];
    let results = client
        .ninf_call(
            "convolve",
            &[
                Value::Int(signal.len() as i32),
                Value::Int(kernel.len() as i32),
                Value::DoubleArray(signal.clone()),
                Value::DoubleArray(kernel.clone()),
            ],
        )
        .expect("convolve");
    let Value::DoubleArray(out) = &results[0] else {
        unreachable!()
    };
    println!("convolve({signal:?}, {kernel:?}) = {out:?}");
    assert_eq!(out, &vec![0.5, 1.5, 2.5, 3.5, 2.0]);
    println!(
        "output length n+k-1 = {} — sized by the server-shipped IDL bytecode",
        out.len()
    );
    server.shutdown();
}
