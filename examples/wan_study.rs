//! Drive the whole-system simulator directly: a miniature LAN-vs-WAN
//! multi-client study, the programmable version of the paper's §4 benchmarks.
//!
//! ```text
//! cargo run --release --example wan_study [n] [clients]
//! ```

use ninf::machine::j90;
use ninf::server::{ExecMode, SchedPolicy};
use ninf::sim::report::render_table;
use ninf::sim::{Scenario, Workload, World};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let max_c: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    let cs: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&c| c <= max_c)
        .collect();
    let workload = Workload::Linpack { n };

    // --- LAN: the J90 behind a 15 MB/s attachment, 2.6 MB/s per stream.
    let lan: Vec<_> = cs
        .iter()
        .map(|&c| {
            let mut s = Scenario::lan(
                j90(),
                c,
                workload,
                ExecMode::DataParallel,
                SchedPolicy::Fcfs,
                1997,
            );
            s.duration = 600.0;
            s.warmup = 60.0;
            World::new(s).run()
        })
        .collect();
    println!(
        "{}",
        render_table(&format!("LAN, 4-PE libSci, n={n}"), &lan)
    );

    // --- Single-site WAN: everyone behind the shared 0.17 MB/s Ocha-U link.
    let wan: Vec<_> = cs
        .iter()
        .map(|&c| {
            let mut s = Scenario::single_site_wan(
                j90(),
                c,
                workload,
                ExecMode::DataParallel,
                SchedPolicy::Fcfs,
                1997,
            );
            s.duration = 2000.0;
            s.warmup = 150.0;
            World::new(s).run()
        })
        .collect();
    println!(
        "{}",
        render_table(&format!("single-site WAN, 4-PE libSci, n={n}"), &wan)
    );

    // --- Multi-site WAN: the same 4/16 clients spread over four sites.
    let multi: Vec<_> = [1usize, 4]
        .iter()
        .map(|&per_site| {
            let mut s = Scenario::multi_site_wan(
                j90(),
                4,
                per_site,
                workload,
                ExecMode::DataParallel,
                SchedPolicy::Fcfs,
                1997,
            );
            s.duration = 2000.0;
            s.warmup = 150.0;
            World::new(s).run()
        })
        .collect();
    println!(
        "{}",
        render_table(&format!("multi-site WAN (4 sites), n={n}"), &multi)
    );

    // --- The paper's takeaways, computed from the runs above.
    let lan_idle = &lan[0];
    let lan_busy = lan.last().expect("cells");
    let wan_busy = wan.last().expect("cells");
    println!("observations:");
    println!(
        "  LAN    c=1 -> c={}: perf {:.1} -> {:.1} Mflops, CPU {:.0}% -> {:.0}%  (server CPU saturates)",
        lan_busy.clients, lan_idle.perf.mean, lan_busy.perf.mean,
        lan_idle.cpu_utilization, lan_busy.cpu_utilization
    );
    println!(
        "  WAN    c={}: perf {:.2} Mflops at only {:.0}% CPU  (bandwidth-bound, server idle)",
        wan_busy.clients, wan_busy.perf.mean, wan_busy.cpu_utilization
    );
    println!(
        "  multi-site 4x4 clients: {:.2} Mflops vs single-site {} clients: {:.2} Mflops  (aggregate bandwidth wins)",
        multi[1].perf.mean, wan_busy.clients, wan_busy.perf.mean
    );
}
