//! Quickstart: start a Ninf computational server, make `Ninf_call`s against
//! it over real TCP, exactly like the paper's §2.2 example.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ninf::client::{call_async, NinfClient};
use ninf::protocol::Value;
use ninf::server::{builtin::register_stdlib, NinfServer, Registry, ServerConfig};

fn main() {
    // --- server side: register the stdlib routines (dmmul, dgefa, dgesl,
    // linpack, ep, dos) and start serving.
    let mut registry = Registry::new();
    register_stdlib(&mut registry, /* data_parallel = */ true);
    let server =
        NinfServer::start("127.0.0.1:0", registry, ServerConfig::default()).expect("bind server");
    let addr = server.addr().to_string();
    println!("Ninf computational server up at {addr}");

    // --- client side: Ninf_call("dmmul", n, A, B, C) — the §2 running
    // example. No stubs or headers: the server ships its compiled IDL.
    let mut client = NinfClient::connect(&addr).expect("connect");
    let n = 3usize;
    // Column-major A = diag(2), B = ones.
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        a[i * n + i] = 2.0;
    }
    let b = vec![1.0; n * n];
    let results = client
        .ninf_call(
            "dmmul",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(a),
                Value::DoubleArray(b),
            ],
        )
        .expect("dmmul");
    let Value::DoubleArray(c) = &results[0] else {
        unreachable!()
    };
    println!("dmmul: diag(2) x ones = {c:?} (all 2s)");

    // --- a dense solve: linpack(n, A, b) -> (x, ipvt).
    let n = 300usize;
    let (a, b) = ninf::exec::matgen(n);
    let results = client
        .ninf_call(
            "linpack",
            &[
                Value::Int(n as i32),
                Value::DoubleArray(a.as_slice().to_vec()),
                Value::DoubleArray(b.clone()),
            ],
        )
        .expect("linpack");
    let Value::DoubleArray(x) = &results[0] else {
        unreachable!()
    };
    let max_err = x.iter().map(|xi| (xi - 1.0).abs()).fold(0.0f64, f64::max);
    println!(
        "linpack n={n}: solved {} unknowns remotely, max |x_i - 1| = {max_err:.2e}",
        x.len()
    );
    println!(
        "shipped {} bytes out / {} bytes back (paper model: 8n^2+20n = {})",
        client.bytes_sent(),
        client.bytes_received(),
        8 * n * n + 20 * n
    );

    // --- Ninf_call_async: overlap two EP batches.
    let ep1 = call_async(addr.clone(), "ep".into(), vec![Value::Int(18)]);
    let ep2 = call_async(addr.clone(), "ep".into(), vec![Value::Int(18)]);
    let (r1, r2) = (ep1.wait().expect("ep1"), ep2.wait().expect("ep2"));
    let Value::DoubleArray(counts1) = &r1[1] else {
        unreachable!()
    };
    let Value::DoubleArray(counts2) = &r2[1] else {
        unreachable!()
    };
    let accepted: f64 = counts1.iter().chain(counts2).sum();
    println!(
        "async EP: 2 x 2^18 trials, acceptance rate = {:.4} (pi/4 = {:.4})",
        accepted / (2.0 * (1 << 18) as f64),
        std::f64::consts::FRAC_PI_4
    );

    // --- server-side accounting: the §4.1 lifecycle timestamps.
    for rec in server.stats().snapshot() {
        println!(
            "  call {:<8} n={:<6} response={:.4}s wait={:.4}s service={:.3}s",
            rec.routine,
            rec.n.map(|v| v.to_string()).unwrap_or_default(),
            rec.response(),
            rec.wait(),
            rec.service()
        );
    }
    server.shutdown();
}
