//! Structured, leveled `key=value` logging to stderr.
//!
//! One line per event: `ts=<epoch secs> level=<l> component=<c> event=<e>
//! k=v ...`. The level gate is a relaxed atomic load, and the [`crate::logkv!`]
//! macro formats field values only when the line will actually be emitted —
//! so an `info`-level request-path log costs one atomic read when the
//! process runs at the default `warn`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable selecting the log level (`error`, `warn`, `info`,
/// `debug`); default `warn`.
pub const LOG_ENV: &str = "NINF_LOG";

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A request failed or state was lost.
    Error = 0,
    /// Something degraded but handled (retry, eviction, clamp).
    Warn = 1,
    /// Request-path milestones.
    Info = 2,
    /// Per-hop detail.
    Debug = 3,
}

impl Level {
    /// Lower-case name used on the wire format and in [`LOG_ENV`].
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn max_level() -> u8 {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if MAX_LEVEL.load(Ordering::Relaxed) == u8::MAX {
            let from_env = std::env::var(LOG_ENV)
                .ok()
                .and_then(|v| Level::parse(&v))
                .unwrap_or(Level::Warn);
            MAX_LEVEL.store(from_env as u8, Ordering::Relaxed);
        }
    });
    MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= max_level()
}

/// Override the level (tests, CLI flags); wins over [`LOG_ENV`].
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Format one record. `=`-joined fields follow the fixed header; values with
/// whitespace, quotes, or `=` get quoted.
pub fn format_line(
    level: Level,
    component: &str,
    event: &str,
    fields: &[(&str, String)],
) -> String {
    use std::fmt::Write as _;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let mut line = format!(
        "ts={ts:.6} level={} component={component} event={event}",
        level.name()
    );
    for (k, v) in fields {
        if v.contains([' ', '\t', '"', '=']) {
            let _ = write!(line, " {k}={:?}", v);
        } else {
            let _ = write!(line, " {k}={v}");
        }
    }
    line
}

/// Emit one record to stderr (already level-gated by callers via
/// [`enabled`]; gates again for direct calls).
pub fn write_line(level: Level, component: &str, event: &str, fields: &[(&str, String)]) {
    if !enabled(level) {
        return;
    }
    eprintln!("{}", format_line(level, component, event, fields));
}

/// Structured log line: `logkv!(Level::Info, "server", "invoke", routine =
/// name, bytes = n)`. Field values are formatted with `Display` and only
/// when the level is enabled.
#[macro_export]
macro_rules! logkv {
    ($level:expr, $component:expr, $event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::log::enabled($level) {
            $crate::log::write_line(
                $level,
                $component,
                $event,
                &[$((stringify!($key), format!("{}", $value))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_common_spellings() {
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("trace"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn format_is_key_value_with_quoting() {
        let line = format_line(
            Level::Info,
            "server",
            "invoke",
            &[
                ("routine", "linpack".into()),
                ("detail", "has space".into()),
            ],
        );
        assert!(line.contains("level=info"));
        assert!(line.contains("component=server"));
        assert!(line.contains("event=invoke"));
        assert!(line.contains("routine=linpack"));
        assert!(line.contains("detail=\"has space\""));
        assert!(line.starts_with("ts="));
    }

    #[test]
    fn set_level_gates() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
    }
}
