//! Time-series telemetry: fixed-interval window snapshots of a metrics
//! registry, kept in a bounded drop-counting ring.
//!
//! Cumulative counters answer "how many ever" — useless for locating the
//! knee where a server stops keeping up, because the collapse is visible
//! only in the *rate* around the transition. A window frame captures every
//! registered metric's delta (counters, histograms) or instantaneous value
//! (gauges) over one interval, so queue depth, in-flight calls, and cache
//! hits become per-second series a sweep controller can align across
//! processes.
//!
//! Capture is sampling-based: a caller (the `MetricsRegistry` sampler
//! thread, or a test) closes windows explicitly; the hot-path metric
//! handles are untouched, so a disarmed registry pays nothing — not even a
//! branch. The ring mirrors the server stats ring: a monotone global window
//! index survives eviction, `snapshot_since` clamps stale cursors to the
//! ring base, and the pair `(total, dropped)` lets a poller prove
//! exactly-once delivery of every window it was fast enough to see.

use std::collections::VecDeque;
use std::time::Instant;

/// Default ring capacity: ~8.5 minutes of 1 s windows.
pub const DEFAULT_WINDOW_CAPACITY: usize = 512;

/// What kind of metric a [`MetricSample`] came from (fixes the
/// interpretation of its `value`/`count` pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// `value` = `count` = increase within the window.
    Counter,
    /// `value` = instantaneous reading at window close; `count` = 0.
    Gauge,
    /// `value` = sum of seconds recorded within the window; `count` =
    /// samples recorded within the window (mean = value / count).
    Histogram,
}

/// One metric's contribution to one window.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Registered metric name (`ninf_server_calls_total`, ...).
    pub name: String,
    /// How to read `value`/`count`.
    pub kind: MetricKind,
    /// See [`MetricKind`].
    pub value: f64,
    /// See [`MetricKind`].
    pub count: u64,
}

/// One closed window: every registered metric's sample over one interval.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFrame {
    /// Global monotone window index — never reused, survives eviction.
    pub window: u64,
    /// Seconds since the registry armed windows, at window close.
    pub t: f64,
    /// One sample per registered metric, in registration order.
    pub samples: Vec<MetricSample>,
}

/// An incremental drain of the window ring — the in-process shape of the
/// `MetricsReply` wire message.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowsSnapshot {
    /// Window clock (seconds since arm) when the snapshot was built; with
    /// the poller's own send/receive timestamps this yields the clock-skew
    /// offset that maps frame times onto the poller's epoch.
    pub now: f64,
    /// Configured window interval in seconds; 0 means the registry is
    /// disarmed and the snapshot is necessarily empty.
    pub interval: f64,
    /// Windows ever closed (frames occupy indices `total - len .. total`).
    pub total: u64,
    /// Windows evicted from the ring to stay within capacity.
    pub dropped: u64,
    /// Retained frames from the cursor onward, oldest first.
    pub frames: Vec<MetricFrame>,
}

impl WindowsSnapshot {
    /// The empty snapshot a disarmed registry answers with.
    pub fn disarmed() -> Self {
        Self {
            now: 0.0,
            interval: 0.0,
            total: 0,
            dropped: 0,
            frames: Vec::new(),
        }
    }
}

/// Per-metric cumulative values at the previous window close, so the next
/// capture can emit deltas.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PrevCumulative {
    pub(crate) count: u64,
    pub(crate) sum: f64,
}

/// Armed window state of one registry: the ring plus the delta baseline.
#[derive(Debug)]
pub(crate) struct WindowState {
    /// Clock zero for `t`/`now`.
    pub(crate) epoch: Instant,
    /// Configured interval, seconds (informational — capture cadence is the
    /// caller's).
    pub(crate) interval: f64,
    pub(crate) cap: usize,
    pub(crate) frames: VecDeque<MetricFrame>,
    /// Windows evicted; frame `frames[0]` has global index `base`.
    pub(crate) base: u64,
    /// Previous cumulative value per metric name.
    pub(crate) prev: std::collections::HashMap<String, PrevCumulative>,
}

impl WindowState {
    pub(crate) fn new(interval: f64, cap: usize) -> Self {
        Self {
            epoch: Instant::now(),
            interval,
            cap: cap.max(1),
            frames: VecDeque::new(),
            base: 0,
            prev: std::collections::HashMap::new(),
        }
    }

    /// Windows ever closed.
    pub(crate) fn total(&self) -> u64 {
        self.base + self.frames.len() as u64
    }

    /// Append a closed window, evicting the oldest at capacity.
    pub(crate) fn push(&mut self, t: f64, samples: Vec<MetricSample>) {
        let window = self.total();
        if self.frames.len() == self.cap {
            self.frames.pop_front();
            self.base += 1;
        }
        self.frames.push_back(MetricFrame { window, t, samples });
    }

    /// Frames from global index `since` onward; a stale cursor (pointing at
    /// evicted windows) clamps to the ring base, a future cursor to the end.
    pub(crate) fn snapshot_since(&self, since: u64) -> WindowsSnapshot {
        let total = self.total();
        let from = since.clamp(self.base, total);
        let frames = self
            .frames
            .iter()
            .skip((from - self.base) as usize)
            .cloned()
            .collect();
        WindowsSnapshot {
            now: self.epoch.elapsed().as_secs_f64(),
            interval: self.interval,
            total,
            dropped: self.base,
            frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_indices(s: &WindowsSnapshot) -> Vec<u64> {
        s.frames.iter().map(|f| f.window).collect()
    }

    #[test]
    fn ring_evicts_but_indices_stay_global() {
        let mut w = WindowState::new(1.0, 4);
        for i in 0..10 {
            w.push(i as f64, Vec::new());
        }
        let s = w.snapshot_since(0);
        assert_eq!(s.total, 10);
        assert_eq!(s.dropped, 6);
        assert_eq!(frame_indices(&s), vec![6, 7, 8, 9]);
    }

    #[test]
    fn incremental_cursors_are_exactly_once_across_eviction() {
        // Mirror of the stats-ring invariant: a poller advancing its cursor
        // to `total` after each snapshot sees every window exactly once as
        // long as it keeps within one ring of the writer, and the clamp
        // makes a lagging poller skip exactly the evicted prefix.
        let mut w = WindowState::new(1.0, 8);
        let mut cursor = 0u64;
        let mut seen: Vec<u64> = Vec::new();
        for i in 0..30 {
            w.push(i as f64, Vec::new());
            if i % 3 == 2 {
                let s = w.snapshot_since(cursor);
                seen.extend(frame_indices(&s));
                cursor = s.total;
            }
        }
        let s = w.snapshot_since(cursor);
        seen.extend(frame_indices(&s));
        // Every window 0..30, each exactly once.
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn lagging_cursor_clamps_to_ring_base() {
        let mut w = WindowState::new(1.0, 4);
        for i in 0..12 {
            w.push(i as f64, Vec::new());
        }
        // Cursor 2 points at evicted windows; the clamp skips to base 8.
        let s = w.snapshot_since(2);
        assert_eq!(frame_indices(&s), vec![8, 9, 10, 11]);
        // A cursor beyond the end yields nothing (and no panic).
        let s = w.snapshot_since(99);
        assert!(s.frames.is_empty());
        assert_eq!(s.total, 12);
    }
}
