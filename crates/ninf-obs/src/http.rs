//! Plain-TCP Prometheus exposition endpoint.
//!
//! A deliberately tiny HTTP/1.0 responder: every request to the bound port
//! answers with the registry rendered as `text/plain; version=0.0.4`,
//! which is exactly what `curl http://host:port/metrics` and a Prometheus
//! scrape need. One thread, one connection at a time — a scrape endpoint,
//! not a web server.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::MetricsRegistry;

/// Bind `addr` and serve `registry` forever from a background thread.
/// Returns the bound address (useful with port 0).
pub fn serve_metrics(registry: Arc<MetricsRegistry>, addr: &str) -> io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("ninf-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let _ = answer(stream, &registry);
            }
        })?;
    Ok(local)
}

fn answer(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the blank line ending the request head (bounded).
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while head.len() < 8192 && !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(_) => break,
        }
    }
    let body = registry.render_prometheus();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// `curl`-equivalent client: fetch and return the exposition body from a
/// metrics endpoint.
pub fn fetch_metrics(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: ninf\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(head, body)| {
            if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "metrics endpoint answered: {}",
                        head.lines().next().unwrap_or("")
                    ),
                ));
            }
            Ok(body.to_string())
        })
        .unwrap_or_else(|| {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "no HTTP header terminator in response",
            ))
        })?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_round_trips_prometheus_text() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("ninf_calls_total", "calls").add(42);
        let addr = serve_metrics(registry.clone(), "127.0.0.1:0").expect("bind");
        let body = fetch_metrics(&addr.to_string()).expect("fetch");
        assert!(body.contains("ninf_calls_total 42"), "{body}");
        // Counters keep moving between scrapes.
        registry.counter("ninf_calls_total", "calls").inc();
        let body = fetch_metrics(&addr.to_string()).expect("fetch again");
        assert!(body.contains("ninf_calls_total 43"), "{body}");
    }
}
