//! Trace context and span model: the causal vocabulary shared by every
//! process in the stack.
//!
//! A `Ninf_call` mints one [`TraceContext`] at the client; the context rides
//! the wire inside `Invoke`/`SubmitJob`, and each hop (metaserver, server)
//! records [`Span`]s parented under the span id it received. Joining the
//! per-process flight recorders by `trace_id` reconstructs the call as one
//! tree — the end-to-end story the paper's §4.1 timestamps only tell
//! per-process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

/// SplitMix64 scramble: a full-period bijection on u64, so distinct inputs
/// give distinct, well-mixed ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static ID_COUNTER: AtomicU64 = AtomicU64::new(0);
static ID_SEED: OnceLock<u64> = OnceLock::new();

/// A fresh process-unique, well-mixed, non-zero id. Ids from different
/// processes collide with probability ~2⁻⁶⁴ per pair: the counter is
/// scrambled together with a per-process seed (boot time ⊕ pid).
pub fn next_id() -> u64 {
    let seed = *ID_SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ ((std::process::id() as u64) << 32))
    });
    loop {
        let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        if id != 0 {
            return id;
        }
    }
}

/// Microseconds since the Unix epoch. All processes of a measurement run
/// share one machine room (LAN) or at worst NTP-disciplined clocks, so
/// epoch-based timestamps are what lets spans from different processes land
/// on one timeline.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// The identity of one call (`trace_id`) plus the caller's current position
/// in its tree (`span_id`, `parent_span_id`). `parent_span_id == 0` marks a
/// root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the whole call tree.
    pub trace_id: u64,
    /// The span the holder is currently inside.
    pub span_id: u64,
    /// Parent of `span_id`; 0 at the root.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Start a brand-new trace.
    pub fn root() -> Self {
        Self {
            trace_id: next_id(),
            span_id: next_id(),
            parent_span_id: 0,
        }
    }

    /// A child position under this context's span, in the same trace.
    pub fn child(&self) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: next_id(),
            parent_span_id: self.span_id,
        }
    }
}

/// One completed interval of work, attributable to a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Enclosing span, 0 if root.
    pub parent_span_id: u64,
    /// What the interval covers (`connect`, `queue_wait`, `exec`, ...).
    pub name: String,
    /// Logical process that did the work (`client`, `metaserver`, `server`).
    pub process: String,
    /// Microseconds since the Unix epoch at span start.
    pub start_us: u64,
    /// Span length in microseconds.
    pub dur_us: u64,
    /// Free-form annotation (routine name, byte counts, ...).
    pub detail: String,
}

impl Span {
    /// Span at `ctx`'s position, timed from `start_us` to now.
    pub fn at(ctx: TraceContext, name: &str, process: &str, start_us: u64) -> Self {
        Self {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            name: name.to_string(),
            process: process.to_string(),
            start_us,
            dur_us: now_us().saturating_sub(start_us),
            detail: String::new(),
        }
    }

    /// Attach a detail annotation (builder style).
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// End of the interval in epoch microseconds.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn root_then_child_links() {
        let root = TraceContext::root();
        assert_eq!(root.parent_span_id, 0);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn clock_is_epoch_scale_and_monotone_enough() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        // Sanity: after 2020-01-01 in µs.
        assert!(a > 1_577_836_800_000_000);
    }

    #[test]
    fn span_at_measures_from_start() {
        let ctx = TraceContext::root();
        let start = now_us();
        let span = Span::at(ctx, "connect", "client", start).with_detail("addr=x");
        assert_eq!(span.trace_id, ctx.trace_id);
        assert_eq!(span.span_id, ctx.span_id);
        assert_eq!(span.name, "connect");
        assert_eq!(span.process, "client");
        assert_eq!(span.detail, "addr=x");
        assert!(span.end_us() >= span.start_us);
    }
}
