//! Fixed-bucket log-scale latency histogram.
//!
//! Percentiles over thousands of per-call latencies without keeping (or
//! sorting) every sample: 16 geometric buckets per decade spanning 1 µs to
//! 10⁴ s, constant memory, O(1) record, mergeable across clients. Bucket
//! resolution is ~15% — far below the run-to-run variance of any live
//! latency distribution.

/// Buckets per decade of the geometric grid.
const PER_DECADE: usize = 16;
/// log10 of the smallest bucketed latency (1 µs).
const LOG_MIN: f64 = -6.0;
/// Decades covered: 1 µs .. 10⁴ s.
const DECADES: usize = 10;
/// Bucket count.
const BUCKETS: usize = PER_DECADE * DECADES;

/// A mergeable fixed-memory histogram of positive durations (seconds).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    /// Samples below 1 µs (clamped to the bottom).
    under: u64,
    /// Samples at or above 10⁴ s (clamped to the top).
    over: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            under: 0,
            over: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    fn bucket(secs: f64) -> Result<usize, bool> {
        let idx = (secs.log10() - LOG_MIN) * PER_DECADE as f64;
        if idx < 0.0 {
            Err(false) // under
        } else if idx >= BUCKETS as f64 {
            Err(true) // over
        } else {
            Ok(idx as usize)
        }
    }

    /// Record one duration; non-positive and non-finite samples are ignored.
    pub fn record(&mut self, secs: f64) {
        if !(secs > 0.0 && secs.is_finite()) {
            return;
        }
        match Self::bucket(secs) {
            Ok(i) => self.counts[i] += 1,
            Err(false) => self.under += 1,
            Err(true) => self.over += 1,
        }
        self.count += 1;
        self.sum += secs;
        self.min = self.min.min(secs);
        self.max = self.max.max(secs);
    }

    /// Fold another histogram in (per-client → fleet aggregation).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.under += other.under;
        self.over += other.over;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact — tracked outside the buckets).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The histogram of exactly the samples recorded between `earlier` and
    /// `self`, where `earlier` is a previous cumulative snapshot of the same
    /// histogram (same sample stream, fewer samples). This is the window
    /// operation behind time-series telemetry: consecutive cumulative
    /// snapshots subtract bucket-wise into per-window histograms, and merging
    /// every window diff reproduces the pooled histogram exactly — counts,
    /// buckets, min, and max are bit-identical, sum to floating-point
    /// rounding.
    ///
    /// `min`/`max` of a non-empty diff are the *cumulative* min/max at the
    /// later snapshot: the tightest bound derivable without per-window sample
    /// retention, and exactly what makes the merge-of-diffs min/max equal the
    /// pooled values (cumulative min is non-increasing, max non-decreasing,
    /// so the last non-empty window's bounds win the merge).
    pub fn diff(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (o, (a, b)) in out
            .counts
            .iter_mut()
            .zip(self.counts.iter().zip(earlier.counts.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out.under = self.under.saturating_sub(earlier.under);
        out.over = self.over.saturating_sub(earlier.over);
        out.count = self.count.saturating_sub(earlier.count);
        if out.count > 0 {
            out.sum = (self.sum - earlier.sum).max(0.0);
            out.min = self.min;
            out.max = self.max;
        }
        out
    }

    /// Arithmetic mean (exact — tracked outside the buckets), or 0 when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (exact), or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (exact), or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-th percentile (`0 < q ≤ 100`), approximated at the geometric
    /// midpoint of the containing bucket and clamped to the exact observed
    /// [min, max]; 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.under;
        let mut value = if self.under >= rank {
            self.min
        } else {
            let mut v = self.max;
            for (i, &c) in self.counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Geometric midpoint of bucket i.
                    let lo = LOG_MIN + i as f64 / PER_DECADE as f64;
                    v = 10f64.powf(lo + 0.5 / PER_DECADE as f64);
                    break;
                }
            }
            v
        };
        value = value.clamp(self.min, self.max);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0.010, 0.020, 0.030] {
            h.record(v);
        }
        assert!((h.mean() - 0.020).abs() < 1e-12);
        assert_eq!(h.min(), 0.010);
        assert_eq!(h.max(), 0.030);
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let mut h = LogHistogram::new();
        // 100 samples: 90 at ~1 ms, 10 at ~1 s.
        for _ in 0..90 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!((5e-4..2e-3).contains(&p50), "p50 = {p50}");
        assert!((0.5..2.0).contains(&p95), "p95 = {p95}");
        assert!((0.5..2.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn percentile_error_is_bounded_by_bucket_width() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1 ms .. 1 s uniform
        }
        let p50 = h.percentile(50.0);
        // True median 0.5 s; one bucket is 10^(1/16) ≈ 15.5%.
        assert!((p50 - 0.5).abs() / 0.5 < 0.2, "p50 = {p50}");
    }

    #[test]
    fn out_of_range_samples_clamp_not_lost() {
        let mut h = LogHistogram::new();
        h.record(1e-9); // under 1 µs
        h.record(1e6); // over 10⁴ s
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), 1e-9); // clamped to exact min
        assert_eq!(h.percentile(100.0), 1e6); // clamped to exact max
    }

    #[test]
    fn junk_samples_ignored() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 1..=50 {
            let v = i as f64 * 2e-3;
            a.record(v);
            whole.record(v);
        }
        for i in 1..=50 {
            let v = i as f64 * 4e-3;
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert_eq!(a.percentile(90.0), whole.percentile(90.0));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    /// Deterministic pseudo-random sample stream (SplitMix64), spanning the
    /// whole bucketed range plus the under/over clamps.
    fn adversarial_samples(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Map to 10^u for u uniform in [-8, 6): exercises under, every
            // bucket, and over.
            let u = (z >> 11) as f64 / (1u64 << 53) as f64 * 14.0 - 8.0;
            out.push(10f64.powf(u));
        }
        out
    }

    #[test]
    fn merged_per_client_equals_pooled_samples() {
        // Satellite requirement: merging per-client histograms must equal
        // the histogram of the pooled samples — exactly, field for field.
        for clients in [1usize, 3, 8] {
            let mut pooled = LogHistogram::new();
            let mut merged = LogHistogram::new();
            for c in 0..clients {
                let mut per_client = LogHistogram::new();
                for v in adversarial_samples(1997 + c as u64, 400) {
                    per_client.record(v);
                    pooled.record(v);
                }
                merged.merge(&per_client);
            }
            assert_eq!(merged.count(), pooled.count());
            assert_eq!(merged.min(), pooled.min());
            assert_eq!(merged.max(), pooled.max());
            assert!((merged.mean() - pooled.mean()).abs() <= 1e-9 * pooled.mean().abs());
            for q in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
                assert_eq!(
                    merged.percentile(q),
                    pooled.percentile(q),
                    "q={q} clients={clients}"
                );
            }
        }
    }

    #[test]
    fn percentile_ordering_under_adversarial_inputs() {
        // p50 ≤ p95 ≤ p99 must hold for every shape we can throw at it.
        let mut cases: Vec<LogHistogram> = Vec::new();

        // Empty.
        cases.push(LogHistogram::new());

        // Single bucket: many identical mid-range samples.
        let mut single = LogHistogram::new();
        for _ in 0..1000 {
            single.record(3.3e-3);
        }
        cases.push(single);

        // Only the under clamp.
        let mut under = LogHistogram::new();
        for _ in 0..10 {
            under.record(1e-9);
        }
        cases.push(under);

        // Only the over clamp.
        let mut over = LogHistogram::new();
        for _ in 0..10 {
            over.record(1e7);
        }
        cases.push(over);

        // Both clamps plus sparse in-range spikes.
        let mut mixed = LogHistogram::new();
        for v in [1e-9, 1e-8, 5e-4, 5e-4, 2.0, 1e6, 1e7] {
            mixed.record(v);
        }
        cases.push(mixed);

        // Full-range pseudo-random stream.
        let mut wide = LogHistogram::new();
        for v in adversarial_samples(42, 5000) {
            wide.record(v);
        }
        cases.push(wide);

        for (i, h) in cases.iter().enumerate() {
            let p50 = h.percentile(50.0);
            let p95 = h.percentile(95.0);
            let p99 = h.percentile(99.0);
            assert!(
                p50 <= p95 && p95 <= p99,
                "case {i}: p50={p50} p95={p95} p99={p99}"
            );
            if h.count() > 0 {
                assert!(p50 >= h.min() && p99 <= h.max(), "case {i} out of range");
            }
        }
    }

    #[test]
    fn single_bucket_percentiles_collapse_to_observed_range() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(1.0e-3);
        }
        for q in [1.0, 50.0, 99.0, 100.0] {
            let p = h.percentile(q);
            assert!((p - 1.0e-3).abs() < 1e-12, "q={q} gave {p}");
        }
    }
}
