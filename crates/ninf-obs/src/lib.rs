//! Observability for the Ninf stack.
//!
//! The paper's contribution is measurement; this crate is the shared
//! measurement substrate for the live system and the simulator:
//!
//! - [`trace`]: trace context (`trace_id`/`span_id`/`parent_span_id`) and
//!   the [`Span`] schema every process records.
//! - [`recorder`]: a fixed-memory, drop-counting per-process flight
//!   recorder; `QueryTrace` serves from it.
//! - [`metrics`]: counters/gauges/latency summaries with Prometheus text
//!   exposition, served over TCP by [`http`].
//! - [`window`]: bounded ring of fixed-interval window snapshots over a
//!   registry — per-second series instead of lifetime totals; `QueryMetrics`
//!   serves from it.
//! - [`hist`]: the log-scale latency histogram (shared with `ninf-loadgen`).
//! - [`export`]: joins per-process spans into call trees, exports Chrome
//!   `trace_event` JSON for Perfetto, validates nesting, diffs live vs sim.
//! - [`log`]: leveled `key=value` structured logging ([`logkv!`]).
//!
//! The crate is dependency-light on purpose: `ninf-protocol` depends on it
//! for the wire-visible types, so it must sit below the whole stack.

pub mod export;
pub mod hist;
pub mod http;
pub mod log;
pub mod metrics;
pub mod recorder;
pub mod trace;
pub mod window;

pub use hist::LogHistogram;
pub use metrics::{process_metrics, Counter, Gauge, MetricsRegistry};
pub use recorder::FlightRecorder;
pub use trace::{next_id, now_us, Span, TraceContext};
pub use window::{MetricFrame, MetricKind, MetricSample, WindowsSnapshot};
