//! Counters, gauges, and latency summaries with Prometheus text exposition.
//!
//! The registry hands out cheap atomic handles (`Counter`, `Gauge`) and
//! shared [`LogHistogram`]s keyed by metric name; `render_prometheus`
//! produces the version-0.0.4 text format a `curl` of the metrics endpoint
//! expects.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::LogHistogram;

/// Monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (queue depth, utilization, ...), stored as f64 bits.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Mutex<LogHistogram>>),
}

/// Named metrics of one process; get-or-create by name, render as Prometheus
/// text.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<(String, String, Metric)>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} metrics)", self.metrics.lock().len())
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created with `help` on first use.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut metrics = self.metrics.lock();
        for (n, _, m) in metrics.iter() {
            if n == name {
                if let Metric::Counter(c) = m {
                    return c.clone();
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let c = Counter::default();
        metrics.push((name.into(), help.into(), Metric::Counter(c.clone())));
        c
    }

    /// The gauge named `name`, created with `help` on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut metrics = self.metrics.lock();
        for (n, _, m) in metrics.iter() {
            if n == name {
                if let Metric::Gauge(g) = m {
                    return g.clone();
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let g = Gauge::default();
        metrics.push((name.into(), help.into(), Metric::Gauge(g.clone())));
        g
    }

    /// The latency summary named `name` (record seconds into the returned
    /// histogram), created with `help` on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Mutex<LogHistogram>> {
        let mut metrics = self.metrics.lock();
        for (n, _, m) in metrics.iter() {
            if n == name {
                if let Metric::Histogram(h) = m {
                    return h.clone();
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let h = Arc::new(Mutex::new(LogHistogram::new()));
        metrics.push((name.into(), help.into(), Metric::Histogram(h.clone())));
        h
    }

    /// Prometheus text exposition format 0.0.4; histograms render as
    /// summaries with p50/p95/p99 quantiles.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock();
        let mut out = String::new();
        for (name, help, metric) in metrics.iter() {
            let _ = writeln!(out, "# HELP {name} {help}");
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let h = h.lock();
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", h.percentile(p));
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.mean() * h.count() as f64);
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// The process-wide registry: the shared home for metrics owned by a
/// library rather than a component with its own registry (the client's
/// argument-cache counters live here). Whoever serves a metrics endpoint
/// can render it alongside component registries.
pub fn process_metrics() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_registry_is_shared() {
        let a = process_metrics().counter("ninf_test_shared_total", "x");
        let b = process_metrics().counter("ninf_test_shared_total", "x");
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn counter_is_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ninf_calls_total", "calls");
        let b = reg.counter("ninf_calls_total", "calls");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn gauge_stores_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("ninf_queue_depth", "queued jobs");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn render_contains_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("ninf_calls_total", "completed calls").add(7);
        reg.gauge("ninf_running", "executing now").set(3.0);
        let h = reg.histogram("ninf_call_seconds", "per-call latency");
        for _ in 0..100 {
            h.lock().record(0.010);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ninf_calls_total counter"));
        assert!(text.contains("ninf_calls_total 7"));
        assert!(text.contains("# TYPE ninf_running gauge"));
        assert!(text.contains("ninf_running 3"));
        assert!(text.contains("# TYPE ninf_call_seconds summary"));
        assert!(text.contains("ninf_call_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("ninf_call_seconds_count 100"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(name.starts_with("ninf_"), "bad name in {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
        }
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn name_reuse_across_types_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("ninf_x", "x");
        reg.gauge("ninf_x", "x");
    }
}
