//! Counters, gauges, and latency summaries with Prometheus text exposition.
//!
//! The registry hands out cheap atomic handles (`Counter`, `Gauge`) and
//! shared [`LogHistogram`]s keyed by metric name; `render_prometheus`
//! produces the version-0.0.4 text format a `curl` of the metrics endpoint
//! expects.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use crate::hist::LogHistogram;
use crate::window::{
    MetricKind, MetricSample, PrevCumulative, WindowState, WindowsSnapshot, DEFAULT_WINDOW_CAPACITY,
};

/// Monotone event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (queue depth, utilization, ...), stored as f64 bits.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Mutex<LogHistogram>>),
}

/// Named metrics of one process; get-or-create by name, render as Prometheus
/// text.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<(String, String, Metric)>>,
    /// `Some` while windowed capture is armed. Hot-path handles never touch
    /// this — only `capture_window`/`snapshot_windows` do — so a disarmed
    /// registry's metric updates cost exactly what they did before windows
    /// existed.
    windows: Mutex<Option<WindowState>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsRegistry({} metrics)", self.metrics.lock().len())
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created with `help` on first use.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut metrics = self.metrics.lock();
        for (n, _, m) in metrics.iter() {
            if n == name {
                if let Metric::Counter(c) = m {
                    return c.clone();
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let c = Counter::default();
        metrics.push((name.into(), help.into(), Metric::Counter(c.clone())));
        c
    }

    /// The gauge named `name`, created with `help` on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut metrics = self.metrics.lock();
        for (n, _, m) in metrics.iter() {
            if n == name {
                if let Metric::Gauge(g) = m {
                    return g.clone();
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let g = Gauge::default();
        metrics.push((name.into(), help.into(), Metric::Gauge(g.clone())));
        g
    }

    /// The latency summary named `name` (record seconds into the returned
    /// histogram), created with `help` on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Mutex<LogHistogram>> {
        let mut metrics = self.metrics.lock();
        for (n, _, m) in metrics.iter() {
            if n == name {
                if let Metric::Histogram(h) = m {
                    return h.clone();
                }
                panic!("metric {name} already registered with a different type");
            }
        }
        let h = Arc::new(Mutex::new(LogHistogram::new()));
        metrics.push((name.into(), help.into(), Metric::Histogram(h.clone())));
        h
    }

    /// Prometheus text exposition format 0.0.4; histograms render as
    /// summaries with p50/p95/p99 quantiles.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock();
        let mut out = String::new();
        for (name, help, metric) in metrics.iter() {
            let _ = writeln!(out, "# HELP {name} {help}");
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let h = h.lock();
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", h.percentile(p));
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.mean() * h.count() as f64);
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Arm fixed-interval window capture with the default ring capacity
    /// ([`DEFAULT_WINDOW_CAPACITY`]). `interval` is recorded for consumers;
    /// actually closing windows is the caller's job — call
    /// [`Self::capture_window`] on that cadence, or let
    /// [`Self::start_window_sampler`] do it. Re-arming resets the ring and
    /// the window clock.
    pub fn arm_windows(&self, interval: Duration) {
        self.arm_windows_with_capacity(interval, DEFAULT_WINDOW_CAPACITY);
    }

    /// [`Self::arm_windows`] with an explicit ring capacity.
    pub fn arm_windows_with_capacity(&self, interval: Duration, capacity: usize) {
        *self.windows.lock() = Some(WindowState::new(interval.as_secs_f64(), capacity));
    }

    /// Stop window capture and drop the ring; a running sampler thread exits
    /// at its next tick.
    pub fn disarm_windows(&self) {
        *self.windows.lock() = None;
    }

    /// Whether windowed capture is armed.
    pub fn windows_armed(&self) -> bool {
        self.windows.lock().is_some()
    }

    /// Close one window: every registered metric contributes its delta
    /// (counters, histograms) or instantaneous value (gauges) since the
    /// previous capture. Returns `false` (and records nothing) when
    /// disarmed.
    pub fn capture_window(&self) -> bool {
        let mut windows = self.windows.lock();
        let Some(state) = windows.as_mut() else {
            return false;
        };
        let t = state.epoch.elapsed().as_secs_f64();
        let metrics = self.metrics.lock();
        let mut samples = Vec::with_capacity(metrics.len());
        for (name, _, metric) in metrics.iter() {
            let sample = match metric {
                Metric::Counter(c) => {
                    let cur = c.get();
                    let prev = state.prev.entry(name.clone()).or_default();
                    let delta = cur.saturating_sub(prev.count);
                    prev.count = cur;
                    MetricSample {
                        name: name.clone(),
                        kind: MetricKind::Counter,
                        value: delta as f64,
                        count: delta,
                    }
                }
                Metric::Gauge(g) => MetricSample {
                    name: name.clone(),
                    kind: MetricKind::Gauge,
                    value: g.get(),
                    count: 0,
                },
                Metric::Histogram(h) => {
                    let (cur_count, cur_sum) = {
                        let h = h.lock();
                        (h.count(), h.sum())
                    };
                    let prev = state.prev.entry(name.clone()).or_default();
                    let dcount = cur_count.saturating_sub(prev.count);
                    let dsum = if dcount > 0 {
                        (cur_sum - prev.sum).max(0.0)
                    } else {
                        0.0
                    };
                    *prev = PrevCumulative {
                        count: cur_count,
                        sum: cur_sum,
                    };
                    MetricSample {
                        name: name.clone(),
                        kind: MetricKind::Histogram,
                        value: dsum,
                        count: dcount,
                    }
                }
            };
            samples.push(sample);
        }
        drop(metrics);
        state.push(t, samples);
        true
    }

    /// Incremental drain of the window ring from global window index
    /// `since`, clamped to what the ring still holds. A disarmed registry
    /// answers [`WindowsSnapshot::disarmed`] (interval 0, no frames), so
    /// remote pollers can tell "no telemetry" from "no traffic".
    pub fn snapshot_windows(&self, since: u64) -> WindowsSnapshot {
        match self.windows.lock().as_ref() {
            Some(state) => state.snapshot_since(since),
            None => WindowsSnapshot::disarmed(),
        }
    }

    /// Arm windows and spawn a detached sampler thread closing one every
    /// `interval`. The thread holds only a [`Weak`] registry reference and
    /// exits when the registry is dropped or disarmed.
    pub fn start_window_sampler(self: &Arc<Self>, interval: Duration) {
        self.arm_windows(interval);
        let weak: Weak<MetricsRegistry> = Arc::downgrade(self);
        std::thread::Builder::new()
            .name("ninf-metric-windows".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(reg) = weak.upgrade() else {
                    return;
                };
                if !reg.capture_window() {
                    return;
                }
            })
            .expect("spawn window sampler");
    }
}

/// The process-wide registry: the shared home for metrics owned by a
/// library rather than a component with its own registry (the client's
/// argument-cache counters live here). Whoever serves a metrics endpoint
/// can render it alongside component registries.
pub fn process_metrics() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_registry_is_shared() {
        let a = process_metrics().counter("ninf_test_shared_total", "x");
        let b = process_metrics().counter("ninf_test_shared_total", "x");
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn counter_is_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ninf_calls_total", "calls");
        let b = reg.counter("ninf_calls_total", "calls");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn gauge_stores_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("ninf_queue_depth", "queued jobs");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn render_contains_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("ninf_calls_total", "completed calls").add(7);
        reg.gauge("ninf_running", "executing now").set(3.0);
        let h = reg.histogram("ninf_call_seconds", "per-call latency");
        for _ in 0..100 {
            h.lock().record(0.010);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ninf_calls_total counter"));
        assert!(text.contains("ninf_calls_total 7"));
        assert!(text.contains("# TYPE ninf_running gauge"));
        assert!(text.contains("ninf_running 3"));
        assert!(text.contains("# TYPE ninf_call_seconds summary"));
        assert!(text.contains("ninf_call_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("ninf_call_seconds_count 100"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(name.starts_with("ninf_"), "bad name in {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
        }
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn name_reuse_across_types_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("ninf_x", "x");
        reg.gauge("ninf_x", "x");
    }

    #[test]
    fn disarmed_registry_emits_no_window_data() {
        let reg = MetricsRegistry::new();
        reg.counter("ninf_calls_total", "calls").add(5);
        assert!(!reg.capture_window());
        let s = reg.snapshot_windows(0);
        assert_eq!(s.interval, 0.0);
        assert_eq!(s.total, 0);
        assert!(s.frames.is_empty());
    }

    #[test]
    fn windows_carry_deltas_not_totals() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ninf_calls_total", "calls");
        let g = reg.gauge("ninf_running", "running");
        let h = reg.histogram("ninf_call_seconds", "latency");
        reg.arm_windows(Duration::from_millis(100));

        c.add(3);
        g.set(2.0);
        h.lock().record(0.010);
        h.lock().record(0.030);
        assert!(reg.capture_window());

        c.add(4);
        g.set(7.0);
        assert!(reg.capture_window());

        let s = reg.snapshot_windows(0);
        assert_eq!(s.total, 2);
        assert_eq!(s.frames.len(), 2);
        let by = |w: usize, name: &str| {
            s.frames[w]
                .samples
                .iter()
                .find(|m| m.name == name)
                .unwrap()
                .clone()
        };
        // Window 0: the first burst.
        assert_eq!(by(0, "ninf_calls_total").count, 3);
        assert_eq!(by(0, "ninf_running").value, 2.0);
        assert_eq!(by(0, "ninf_call_seconds").count, 2);
        assert!((by(0, "ninf_call_seconds").value - 0.040).abs() < 1e-12);
        // Window 1: only what happened after window 0 closed.
        assert_eq!(by(1, "ninf_calls_total").count, 4);
        assert_eq!(by(1, "ninf_running").value, 7.0);
        assert_eq!(by(1, "ninf_call_seconds").count, 0);
        assert_eq!(by(1, "ninf_call_seconds").value, 0.0);
        // Window deltas of the counter sum back to the cumulative total.
        let total: u64 = s
            .frames
            .iter()
            .flat_map(|f| &f.samples)
            .filter(|m| m.name == "ninf_calls_total")
            .map(|m| m.count)
            .sum();
        assert_eq!(total, c.get());
    }

    #[test]
    fn metric_registered_after_arming_joins_later_windows() {
        let reg = MetricsRegistry::new();
        reg.arm_windows(Duration::from_secs(1));
        reg.capture_window();
        let c = reg.counter("ninf_late_total", "registered mid-flight");
        c.add(2);
        reg.capture_window();
        let s = reg.snapshot_windows(0);
        assert!(s.frames[0].samples.is_empty());
        assert_eq!(s.frames[1].samples[0].count, 2);
    }

    #[test]
    fn rearming_resets_ring_and_clock() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ninf_calls_total", "calls");
        reg.arm_windows(Duration::from_secs(1));
        c.add(10);
        reg.capture_window();
        assert_eq!(reg.snapshot_windows(0).total, 1);
        reg.arm_windows(Duration::from_secs(1));
        let s = reg.snapshot_windows(0);
        assert_eq!(s.total, 0);
        // The delta baseline reset too: the next window re-reports the
        // cumulative value as its delta.
        reg.capture_window();
        assert_eq!(reg.snapshot_windows(0).frames[0].samples[0].count, 10);
    }

    #[test]
    fn sampler_thread_captures_and_stops_on_disarm() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("ninf_calls_total", "calls").add(1);
        reg.start_window_sampler(Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while reg.snapshot_windows(0).total < 3 {
            assert!(std::time::Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(5));
        }
        reg.disarm_windows();
        assert_eq!(reg.snapshot_windows(0).total, 0);
    }
}
