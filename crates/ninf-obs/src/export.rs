//! Joining spans into call trees and exporting Chrome `trace_event` JSON.
//!
//! The exported document loads directly in Perfetto / `chrome://tracing`:
//! one `pid` per logical process (client, metaserver, server), one `tid` per
//! trace so each call tree renders on its own track, and complete (`ph:"X"`)
//! events carrying the raw ids in `args` so a trace file round-trips loss-
//! lessly through [`parse_chrome_trace`] for CI validation and live-vs-sim
//! diffing.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde_json::{json, Map, Value};

use crate::trace::Span;

/// Drop duplicate spans (same `trace_id` + `span_id`), keeping the first
/// occurrence. Joining recorders that shared a process (an in-process fleet)
/// or overlapping fetches produces duplicates; the tree wants each span
/// once.
pub fn dedup(spans: &[Span]) -> Vec<Span> {
    let mut seen = HashSet::new();
    spans
        .iter()
        .filter(|s| seen.insert((s.trace_id, s.span_id)))
        .cloned()
        .collect()
}

/// Render spans as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let spans = dedup(spans);
    // Stable pid per process name, in order of first appearance.
    let mut pids: Vec<String> = Vec::new();
    // Stable tid per trace id, in order of first appearance.
    let mut tids: Vec<u64> = Vec::new();
    let mut events: Vec<Value> = Vec::new();
    for span in &spans {
        let pid = match pids.iter().position(|p| *p == span.process) {
            Some(i) => i + 1,
            None => {
                pids.push(span.process.clone());
                events.push(json!({
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids.len(),
                    "tid": 0,
                    "args": { "name": span.process },
                }));
                pids.len()
            }
        };
        let tid = match tids.iter().position(|t| *t == span.trace_id) {
            Some(i) => i + 1,
            None => {
                tids.push(span.trace_id);
                tids.len()
            }
        };
        events.push(json!({
            "ph": "X",
            "cat": "ninf",
            "name": span.name,
            "pid": pid,
            "tid": tid,
            "ts": span.start_us,
            "dur": span.dur_us,
            "args": {
                "trace_id": format!("{:016x}", span.trace_id),
                "span_id": format!("{:016x}", span.span_id),
                "parent_span_id": format!("{:016x}", span.parent_span_id),
                "process": span.process,
                "detail": span.detail,
            },
        }));
    }
    let mut doc = Map::new();
    doc.insert("traceEvents".into(), Value::Array(events));
    doc.insert("displayTimeUnit".into(), Value::String("ms".into()));
    serde_json::to_string_pretty(&Value::Object(doc)).expect("json render")
}

fn hex_id(args: &Value, key: &str) -> Result<u64, String> {
    let s = args[key]
        .as_str()
        .ok_or_else(|| format!("event args missing {key}"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad {key} {s:?}: {e}"))
}

/// Rebuild spans from a Chrome trace document produced by
/// [`chrome_trace_json`]. Metadata events are skipped; every `ph:"X"` event
/// must carry the id args.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<Span>, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("document has no traceEvents array")?;
    let mut spans = Vec::new();
    for ev in events {
        if ev["ph"].as_str() != Some("X") {
            continue;
        }
        let args = &ev["args"];
        spans.push(Span {
            trace_id: hex_id(args, "trace_id")?,
            span_id: hex_id(args, "span_id")?,
            parent_span_id: hex_id(args, "parent_span_id")?,
            name: ev["name"].as_str().ok_or("event missing name")?.to_string(),
            process: args["process"]
                .as_str()
                .ok_or("event args missing process")?
                .to_string(),
            start_us: ev["ts"].as_u64().ok_or("event missing ts")?,
            dur_us: ev["dur"].as_u64().ok_or("event missing dur")?,
            detail: args["detail"].as_str().unwrap_or("").to_string(),
        });
    }
    Ok(spans)
}

/// Verify that every child span nests inside its parent's interval, within
/// `slack_us` of clock tolerance. Spans whose parent is absent from the set
/// are treated as roots (a partial fetch is not an error).
pub fn validate_nesting(spans: &[Span], slack_us: u64) -> Result<(), String> {
    let by_id: HashMap<(u64, u64), &Span> =
        spans.iter().map(|s| ((s.trace_id, s.span_id), s)).collect();
    for span in spans {
        if span.parent_span_id == 0 {
            continue;
        }
        let Some(parent) = by_id.get(&(span.trace_id, span.parent_span_id)) else {
            continue;
        };
        if span.start_us + slack_us < parent.start_us || span.end_us() > parent.end_us() + slack_us
        {
            return Err(format!(
                "span {:016x} `{}` [{}..{}] escapes parent `{}` [{}..{}]",
                span.span_id,
                span.name,
                span.start_us,
                span.end_us(),
                parent.name,
                parent.start_us,
                parent.end_us(),
            ));
        }
    }
    Ok(())
}

/// Verify that every client-side call span has at least one server span in
/// the same trace; returns the number of client calls checked.
pub fn client_server_coverage(spans: &[Span]) -> Result<usize, String> {
    let mut server_traces: HashSet<u64> = HashSet::new();
    for s in spans {
        if s.process == "server" {
            server_traces.insert(s.trace_id);
        }
    }
    let mut checked = 0;
    for s in spans {
        if s.process == "client" && s.name == "call" {
            if !server_traces.contains(&s.trace_id) {
                return Err(format!(
                    "client call trace {:016x} has no server span",
                    s.trace_id
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// ASCII call tree of one joined trace set: one block per trace, children
/// indented under parents and ordered by start time.
pub fn render_tree(spans: &[Span]) -> String {
    let spans = dedup(spans);
    let mut by_trace: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in &spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let mut out = String::new();
    for (trace_id, mut members) in by_trace {
        members.sort_by_key(|s| (s.start_us, s.span_id));
        out.push_str(&format!("trace {trace_id:016x}\n"));
        let ids: HashSet<u64> = members.iter().map(|s| s.span_id).collect();
        let t0 = members.iter().map(|s| s.start_us).min().unwrap_or(0);
        // Roots: parent 0 or parent not fetched.
        let roots: Vec<&&Span> = members
            .iter()
            .filter(|s| s.parent_span_id == 0 || !ids.contains(&s.parent_span_id))
            .collect();
        for root in roots {
            render_subtree(root, &members, t0, 1, &mut out);
        }
    }
    out
}

fn render_subtree(span: &Span, all: &[&Span], t0: u64, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let detail = if span.detail.is_empty() {
        String::new()
    } else {
        format!("  [{}]", span.detail)
    };
    out.push_str(&format!(
        "{indent}{:<12} {:>10} +{:>8} µs  dur {:>8} µs{detail}\n",
        span.name,
        span.process,
        span.start_us.saturating_sub(t0),
        span.dur_us,
    ));
    for child in all.iter().filter(|s| s.parent_span_id == span.span_id) {
        render_subtree(child, all, t0, depth + 1, out);
    }
}

/// Per-(process, span-name) aggregate of a span set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAggregate {
    /// Spans with this key.
    pub count: u64,
    /// Mean duration in microseconds.
    pub mean_us: f64,
}

fn aggregate(spans: &[Span]) -> BTreeMap<(String, String), SpanAggregate> {
    let mut agg: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for s in spans {
        let e = agg
            .entry((s.process.clone(), s.name.clone()))
            .or_insert((0, 0.0));
        e.0 += 1;
        e.1 += s.dur_us as f64;
    }
    agg.into_iter()
        .map(|(k, (count, sum))| {
            (
                k,
                SpanAggregate {
                    count,
                    mean_us: sum / count as f64,
                },
            )
        })
        .collect()
}

/// Side-by-side per-span-name comparison of two traces — built for diffing a
/// live run against its simulated twin. Columns: count and mean duration for
/// each side, plus the b/a duration ratio.
pub fn diff_summary(label_a: &str, a: &[Span], label_b: &str, b: &[Span]) -> String {
    let agg_a = aggregate(&dedup(a));
    let agg_b = aggregate(&dedup(b));
    let keys: std::collections::BTreeSet<_> = agg_a.keys().chain(agg_b.keys()).cloned().collect();
    let mut out = format!(
        "{:<12} {:<12} {:>8} {:>12} {:>8} {:>12} {:>8}\n",
        "process",
        "span",
        format!("n({label_a})"),
        format!("us({label_a})"),
        format!("n({label_b})"),
        format!("us({label_b})"),
        "ratio"
    );
    for key in keys {
        let da = agg_a.get(&key).copied().unwrap_or_default();
        let db = agg_b.get(&key).copied().unwrap_or_default();
        let ratio = if da.mean_us > 0.0 && db.count > 0 {
            format!("{:.2}", db.mean_us / da.mean_us)
        } else {
            "-".into()
        };
        out.push_str(&format!(
            "{:<12} {:<12} {:>8} {:>12.1} {:>8} {:>12.1} {:>8}\n",
            key.0, key.1, da.count, da.mean_us, db.count, db.mean_us, ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;

    fn span(ctx: TraceContext, name: &str, process: &str, start: u64, dur: u64) -> Span {
        Span {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            name: name.into(),
            process: process.into(),
            start_us: start,
            dur_us: dur,
            detail: String::new(),
        }
    }

    fn sample_trace() -> Vec<Span> {
        let root = TraceContext::root();
        let rpc = root.child();
        let server = rpc.child();
        let exec = server.child();
        vec![
            span(root, "call", "client", 1000, 900),
            span(rpc, "rpc", "client", 1100, 700),
            span(server, "request", "server", 1200, 500),
            span(exec, "exec", "server", 1300, 300),
        ]
    }

    #[test]
    fn chrome_json_round_trips() {
        let spans = sample_trace();
        let text = chrome_trace_json(&spans);
        let parsed = parse_chrome_trace(&text).expect("parse");
        assert_eq!(parsed, spans);
    }

    #[test]
    fn chrome_json_has_metadata_and_valid_shape() {
        let text = chrome_trace_json(&sample_trace());
        let doc: Value = serde_json::from_str(&text).expect("valid json");
        let events = doc["traceEvents"].as_array().expect("array");
        // 2 process_name metadata events (client, server) + 4 spans.
        assert_eq!(events.len(), 6);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0]["args"]["name"].as_str(), Some("client"));
    }

    #[test]
    fn nesting_validates_and_catches_escapes() {
        let mut spans = sample_trace();
        assert!(validate_nesting(&spans, 0).is_ok());
        // Push the exec span past its parent's end.
        spans[3].start_us = 5000;
        let err = validate_nesting(&spans, 0).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
        // A big enough slack forgives it.
        assert!(validate_nesting(&spans, 10_000).is_ok());
    }

    #[test]
    fn orphan_spans_are_roots_not_errors() {
        let spans = &sample_trace()[2..]; // server side only
        assert!(validate_nesting(spans, 0).is_ok());
    }

    #[test]
    fn coverage_requires_a_server_span_per_client_call() {
        let spans = sample_trace();
        assert_eq!(client_server_coverage(&spans).unwrap(), 1);
        let client_only = &spans[..2];
        assert!(client_server_coverage(client_only).is_err());
        // No client calls at all: vacuously fine, zero checked.
        assert_eq!(client_server_coverage(&spans[2..]).unwrap(), 0);
    }

    #[test]
    fn dedup_drops_repeats() {
        let mut spans = sample_trace();
        spans.extend(sample_trace_clone(&spans));
        assert_eq!(dedup(&spans).len(), 4);
    }

    fn sample_trace_clone(spans: &[Span]) -> Vec<Span> {
        spans.to_vec()
    }

    #[test]
    fn tree_renders_depth_and_order() {
        let tree = render_tree(&sample_trace());
        let call = tree.find("call").unwrap();
        let rpc = tree.find("rpc").unwrap();
        let request = tree.find("request").unwrap();
        let exec = tree.find("exec").unwrap();
        assert!(call < rpc && rpc < request && request < exec);
        assert!(tree.starts_with("trace "));
        // Depth shows as growing indentation.
        let line = |needle: &str| {
            tree.lines()
                .find(|l| l.contains(needle))
                .unwrap()
                .chars()
                .take_while(|c| *c == ' ')
                .count()
        };
        assert!(line("call") < line("rpc"));
        assert!(line("rpc") < line("request"));
        assert!(line("request") < line("exec"));
    }

    #[test]
    fn diff_lines_up_matching_keys() {
        let live = sample_trace();
        let mut sim = sample_trace();
        for s in &mut sim {
            s.dur_us *= 2;
        }
        let table = diff_summary("live", &live, "sim", &sim);
        let exec_line = table.lines().find(|l| l.contains("exec")).unwrap();
        assert!(exec_line.contains("2.00"), "{exec_line}");
        assert!(table.lines().count() >= 5);
    }
}
