//! Fixed-memory per-process flight recorder.
//!
//! A bounded ring of recent [`Span`]s: recording is a cheap atomic check when
//! tracing is off, one short mutex hold when on, and memory never grows past
//! the configured capacity — the recorder evicts the oldest span and counts
//! the drop instead. `QueryTrace` serves straight from here.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::trace::Span;

/// Default ring capacity: ~64k spans ≈ a few minutes of heavy load, a few
/// MiB of memory.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Environment variable that arms the process-global recorder (any value but
/// empty or `0`).
pub const TRACE_ENV: &str = "NINF_TRACE";

struct Ring {
    buf: VecDeque<Span>,
    cap: usize,
}

/// Bounded, drop-counting span sink shared by every thread of a process.
pub struct FlightRecorder {
    enabled: AtomicBool,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// New recorder holding at most `capacity` spans; starts disabled.
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: capacity.max(1),
            }),
        }
    }

    /// New enabled recorder (tests, sim runs).
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        let r = Self::new(capacity);
        r.set_enabled(true);
        r
    }

    /// Whether spans are currently being kept.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Arm or disarm the recorder.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Store a span; silently evicts (and counts) the oldest when full.
    /// A no-op when disabled.
    pub fn record(&self, span: Span) {
        if !self.enabled() {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.buf.len() >= ring.cap {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(span);
    }

    /// Spans for one trace, or all retained spans when `trace_id == 0`.
    pub fn snapshot(&self, trace_id: u64) -> Vec<Span> {
        let ring = self.ring.lock();
        ring.buf
            .iter()
            .filter(|s| trace_id == 0 || s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// How many spans were evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained spans (keeps the drop counter).
    pub fn clear(&self) {
        self.ring.lock().buf.clear();
    }
}

/// The process-global recorder, armed at first use iff [`TRACE_ENV`] is set
/// to a non-empty value other than `0`. Components that lack an explicitly
/// injected recorder record here.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let r = FlightRecorder::new(DEFAULT_CAPACITY);
        let armed = std::env::var(TRACE_ENV).map(|v| !v.is_empty() && v != "0");
        r.set_enabled(armed.unwrap_or(false));
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Span, TraceContext};

    fn span(trace_id: u64, span_id: u64) -> Span {
        Span {
            trace_id,
            span_id,
            parent_span_id: 0,
            name: "x".into(),
            process: "test".into(),
            start_us: 1,
            dur_us: 1,
            detail: String::new(),
        }
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let r = FlightRecorder::new(8);
        r.record(span(1, 1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let r = FlightRecorder::enabled_with_capacity(4);
        for i in 0..10 {
            r.record(span(1, i + 1));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        // Oldest evicted: the survivors are the last four.
        let ids: Vec<u64> = r.snapshot(0).iter().map(|s| s.span_id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn snapshot_filters_by_trace() {
        let r = FlightRecorder::enabled_with_capacity(16);
        r.record(span(1, 10));
        r.record(span(2, 20));
        r.record(span(1, 11));
        assert_eq!(r.snapshot(1).len(), 2);
        assert_eq!(r.snapshot(2).len(), 1);
        assert_eq!(r.snapshot(0).len(), 3);
        assert_eq!(r.snapshot(99).len(), 0);
    }

    #[test]
    fn clear_empties_the_ring() {
        let r = FlightRecorder::enabled_with_capacity(4);
        r.record(Span::at(TraceContext::root(), "a", "p", 0));
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }
}
