//! Window semantics of [`LogHistogram`]: per-window histograms are diffs of
//! consecutive cumulative snapshots (exactly what the metrics window ring
//! captures), and merging every window diff must reproduce the pooled
//! histogram over the same span — extending the per-client merge==pooled
//! guarantee to the time axis.

use ninf_obs::LogHistogram;
use proptest::prelude::*;

/// Map a raw exponent to `10^u` for `u ∈ [-8, 6)` — exercises the under
/// clamp, every bucket, and the over clamp.
fn sample_from_unit(x: f64) -> f64 {
    10f64.powf(x * 14.0 - 8.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-window diffs equals the pooled histogram, field for
    /// field, for any partition of any sample stream into windows —
    /// including empty windows (idle seconds) and a leading empty prefix.
    #[test]
    fn merged_window_diffs_equal_pooled(
        windows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 0..40),
            1..10,
        ),
    ) {
        let mut cumulative = LogHistogram::new();
        let mut pooled = LogHistogram::new();
        let mut merged = LogHistogram::new();
        let mut prev = LogHistogram::new();
        for window in &windows {
            for &x in window {
                let v = sample_from_unit(x);
                cumulative.record(v);
                pooled.record(v);
            }
            let diff = cumulative.diff(&prev);
            prop_assert_eq!(diff.count(), window.len() as u64);
            merged.merge(&diff);
            prev = cumulative.clone();
        }
        prop_assert_eq!(merged.count(), pooled.count());
        prop_assert_eq!(merged.min(), pooled.min());
        prop_assert_eq!(merged.max(), pooled.max());
        let tol = 1e-9 * pooled.sum().abs().max(1e-300);
        prop_assert!((merged.sum() - pooled.sum()).abs() <= tol,
            "sum drifted: merged={} pooled={}", merged.sum(), pooled.sum());
        for q in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(q), pooled.percentile(q), "q={}", q);
        }
    }

    /// A window diff never reports values outside the cumulative range, and
    /// an empty window is the empty histogram.
    #[test]
    fn window_diff_is_well_formed(
        first in prop::collection::vec(0.0f64..1.0, 0..30),
        second in prop::collection::vec(0.0f64..1.0, 0..30),
    ) {
        let mut cumulative = LogHistogram::new();
        for &x in &first {
            cumulative.record(sample_from_unit(x));
        }
        let snap = cumulative.clone();
        for &x in &second {
            cumulative.record(sample_from_unit(x));
        }
        let diff = cumulative.diff(&snap);
        prop_assert_eq!(diff.count(), second.len() as u64);
        if second.is_empty() {
            prop_assert_eq!(diff.mean(), 0.0);
            prop_assert_eq!(diff.min(), 0.0);
            prop_assert_eq!(diff.max(), 0.0);
        } else {
            prop_assert!(diff.min() >= cumulative.min());
            prop_assert!(diff.max() <= cumulative.max());
            prop_assert!(diff.sum() >= 0.0);
        }
    }
}
