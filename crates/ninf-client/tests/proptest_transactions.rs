//! Property tests on transaction dependency analysis: random call DAGs must
//! layer consistently with their dataflow.

use ninf_client::{Transaction, TxArg};
use ninf_protocol::Value;
use proptest::prelude::*;

/// Build a random transaction: each call reads up to 2 existing written
/// slots and writes 1 fresh slot. Returns the transaction.
fn build(reads_per_call: &[Vec<usize>]) -> Transaction {
    let mut tx = Transaction::new();
    let mut written: Vec<ninf_client::SlotId> = Vec::new();
    for reads in reads_per_call {
        let args: Vec<TxArg> = std::iter::once(TxArg::Value(Value::Int(1)))
            .chain(
                reads
                    .iter()
                    .filter(|&&r| r < written.len())
                    .map(|&r| TxArg::Ref(written[r])),
            )
            .collect();
        let out = tx.slot();
        tx.call("f", args, vec![Some(out)]);
        written.push(out);
    }
    tx
}

fn arb_dag() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..16, 0..3), 1..24)
}

proptest! {
    /// Every call appears in exactly one level, and each call's level is
    /// strictly greater than all of its dependencies' levels.
    #[test]
    fn levels_respect_dependencies(dag in arb_dag()) {
        let tx = build(&dag);
        let deps = tx.dependencies().unwrap();
        let levels = tx.dependency_levels().unwrap();

        let mut level_of = vec![usize::MAX; tx.calls().len()];
        let mut seen = 0;
        for (l, calls) in levels.iter().enumerate() {
            for &c in calls {
                prop_assert_eq!(level_of[c], usize::MAX, "call {} in two levels", c);
                level_of[c] = l;
                seen += 1;
            }
        }
        prop_assert_eq!(seen, tx.calls().len());

        for (c, dep_list) in deps.iter().enumerate() {
            for &d in dep_list {
                prop_assert!(
                    level_of[d] < level_of[c],
                    "dep {} (level {}) not before call {} (level {})",
                    d, level_of[d], c, level_of[c]
                );
            }
        }
    }

    /// Dependencies only point backwards and never at the call itself.
    #[test]
    fn dependencies_are_acyclic_by_construction(dag in arb_dag()) {
        let tx = build(&dag);
        for (c, dep_list) in tx.dependencies().unwrap().iter().enumerate() {
            for &d in dep_list {
                prop_assert!(d < c);
            }
        }
    }

    /// A transaction of independent calls always yields exactly one level.
    #[test]
    fn independent_calls_fully_parallel(n in 1usize..32) {
        let mut tx = Transaction::new();
        for _ in 0..n {
            let out = tx.slot();
            tx.call("ep", vec![TxArg::Value(Value::Int(20))], vec![Some(out)]);
        }
        let levels = tx.dependency_levels().unwrap();
        prop_assert_eq!(levels.len(), 1);
        prop_assert_eq!(levels[0].len(), n);
    }

    /// A linear chain yields one call per level.
    #[test]
    fn chain_is_fully_serial(n in 1usize..24) {
        let mut tx = Transaction::new();
        let mut prev: Option<ninf_client::SlotId> = None;
        for _ in 0..n {
            let out = tx.slot();
            let args = match prev {
                Some(p) => vec![TxArg::Ref(p)],
                None => vec![TxArg::Value(Value::Int(0))],
            };
            tx.call("f", args, vec![Some(out)]);
            prev = Some(out);
        }
        let levels = tx.dependency_levels().unwrap();
        prop_assert_eq!(levels.len(), n);
        for l in levels {
            prop_assert_eq!(l.len(), 1);
        }
    }
}
