//! Live tests of the pooled client path: checked-out multiplexed streams
//! against a real reactor-core server.

use std::sync::Arc;
use std::time::Duration;

use ninf_client::{call_async_pooled, CallOptions, NinfClient};
use ninf_protocol::Value;
use ninf_reactor::{MuxPool, PoolConfig};
use ninf_server::{builtin::register_stdlib, NinfServer, Registry, ServerConfig};

fn start_server() -> NinfServer {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, false);
    NinfServer::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap()
}

fn opts() -> CallOptions {
    CallOptions::with_deadline(Duration::from_secs(10))
}

#[test]
fn second_pooled_client_reuses_the_stream() {
    let server = start_server();
    let addr = server.addr().to_string();
    let pool = Arc::new(MuxPool::default());

    let mut first = NinfClient::connect_pooled(&addr, opts(), pool.clone()).unwrap();
    assert!(!first.stream_reused(), "first checkout must dial");
    first.ninf_call("ep", &[Value::Int(4)]).unwrap();

    let mut second = NinfClient::connect_pooled(&addr, opts(), pool.clone()).unwrap();
    assert!(second.stream_reused(), "second checkout must reuse");
    second.ninf_call("ep", &[Value::Int(4)]).unwrap();

    assert_eq!(pool.hits(), 1);
    assert_eq!(pool.misses(), 1);
    assert_eq!(pool.open_streams(&addr), 1);
    server.shutdown();
}

#[test]
fn pooled_clients_share_one_stream_across_threads() {
    let server = start_server();
    let addr = server.addr().to_string();
    let pool = Arc::new(MuxPool::new(PoolConfig {
        max_streams_per_addr: 1,
        ..PoolConfig::default()
    }));

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut c = NinfClient::connect_pooled(&addr, opts(), pool).unwrap();
                for _ in 0..4 {
                    let out = c.ninf_call("ep", &[Value::Int(4)]).unwrap();
                    assert!(!out.is_empty());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(pool.misses(), 1, "all clients share one dialed stream");
    assert_eq!(pool.hits(), 7);
    server.shutdown();
}

#[test]
fn pooled_async_calls_complete_concurrently() {
    let server = start_server();
    let addr = server.addr().to_string();
    let pool = Arc::new(MuxPool::default());

    let calls: Vec<_> = (0..6)
        .map(|_| {
            call_async_pooled(
                pool.clone(),
                addr.clone(),
                "ep".into(),
                vec![Value::Int(4)],
                opts(),
                None,
                "client",
            )
        })
        .collect();
    for call in calls {
        call.wait().unwrap();
    }
    assert!(pool.hits() >= 4, "fan-out must reuse pooled streams");
    server.shutdown();
}

#[test]
fn retry_after_server_restart_lands_on_a_fresh_stream() {
    let server = start_server();
    let addr = server.addr().to_string();
    let pool = Arc::new(MuxPool::default());

    let mut client = NinfClient::connect_pooled(
        &addr,
        CallOptions {
            deadline: Some(Duration::from_secs(10)),
            retries: 3,
            backoff: Duration::from_millis(10),
            ..CallOptions::default()
        },
        pool.clone(),
    )
    .unwrap();
    client.ninf_call("ep", &[Value::Int(4)]).unwrap();

    // Kill the server: the pooled stream dies underneath the client.
    let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();
    server.shutdown();
    let server2 = {
        // The old port may linger in TIME_WAIT; retry the bind briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match NinfServer::start(
                &format!("127.0.0.1:{port}"),
                {
                    let mut r = Registry::new();
                    register_stdlib(&mut r, false);
                    r
                },
                ServerConfig::default(),
            ) {
                Ok(s) => break s,
                Err(e) if std::time::Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => panic!("rebind failed: {e}"),
            }
        }
    };

    // The retry path must evict the dead stream and re-check-out.
    client.ninf_call("ep", &[Value::Int(4)]).unwrap();
    assert!(pool.misses() >= 2, "reconnect must dial a fresh stream");
    server2.shutdown();
}
