//! Live tests of the parallel-stream bulk-transfer path: chunked uploads
//! fanned out over multiplexed lanes against a real server, with the call
//! itself naming the shipped value by content ref.

use std::time::Duration;

use ninf_client::{parallel_put, CallOptions, NinfClient};
use ninf_protocol::{LinkShape, Value};
use ninf_server::{builtin::register_stdlib, NinfServer, Registry, ServerConfig};

fn start_server() -> NinfServer {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, false);
    NinfServer::start("127.0.0.1:0", registry, ServerConfig::default()).unwrap()
}

fn bulk_opts(streams: u32) -> CallOptions {
    CallOptions {
        streams,
        chunk_bytes: 4096,
        ..CallOptions::with_deadline(Duration::from_secs(10))
    }
}

/// linpack arguments whose matrix clears the 64 KiB chunking threshold
/// (8·128·128 = 128 KiB image).
fn big_linpack_args() -> Vec<Value> {
    let n = 128usize;
    let (a, b) = ninf_exec::matgen(n);
    vec![
        Value::Int(n as i32),
        Value::DoubleArray(a.as_slice().to_vec()),
        Value::DoubleArray(b),
    ]
}

#[test]
fn large_args_preship_over_parallel_lanes_and_the_call_refs_them() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut client = NinfClient::connect_with(&addr, bulk_opts(4)).unwrap();
    // Fresh per-server-address digest memory: the dial address has a fresh
    // port, so nothing is believed held yet.
    let args = big_linpack_args();
    let out = client.ninf_call("linpack", &args).unwrap();
    assert!(!out.is_empty());

    let timing = client.last_timing().unwrap();
    assert_eq!(timing.bulk_streams, 4, "four lanes requested and used");
    let image_len = ninf_protocol::value_image(&args[1]).len();
    assert_eq!(
        timing.bulk_bytes, image_len,
        "exactly the matrix pre-shipped"
    );
    assert_eq!(timing.args_refd, 1, "the call names the upload by ref");
    assert!(
        timing.request_bytes < image_len,
        "the Invoke itself stays small: {} bytes",
        timing.request_bytes
    );

    let (chunks, rejects, uploads, chunk_bytes) = server.metrics().chunked();
    assert_eq!(uploads, 1);
    assert_eq!(rejects, 0);
    assert_eq!(chunk_bytes, image_len as u64);
    assert_eq!(chunks, (image_len as u64).div_ceil(4096));
    assert!(server
        .arg_store()
        .contains(&ninf_protocol::digest_value(&args[1])));
    server.shutdown();
}

#[test]
fn need_arg_refills_over_the_bulk_lanes_and_replays_the_refs() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut client = NinfClient::connect_with(&addr, bulk_opts(2)).unwrap();
    let args = big_linpack_args();
    client.ninf_call("linpack", &args).unwrap();

    // Evict everything server-side: the next ref'd call draws NeedArg (for
    // the matrix *and* the 1 KiB rhs, both cacheable), and the refill must
    // travel back over the bulk lanes — the replayed request still ships
    // refs, so its inline payload is zero.
    server.arg_store().clear();
    client.ninf_call("linpack", &args).unwrap();
    let timing = client.last_timing().unwrap();
    assert_eq!(timing.args_refilled, 2);
    let refilled =
        ninf_protocol::value_image(&args[1]).len() + ninf_protocol::value_image(&args[2]).len();
    assert_eq!(timing.bulk_bytes, refilled, "both refills went as chunks");
    assert_eq!(timing.request_bytes, 0, "no inline fallback");
    let (_, _, uploads, _) = server.metrics().chunked();
    assert_eq!(uploads, 3, "cold matrix pre-ship plus two refills");
    server.shutdown();
}

#[test]
fn shaped_bulk_upload_still_lands_byte_identically() {
    // A lossy, delayed, capped link between the lanes and the server: the
    // transfer must still complete exactly (retransmits recover every lost
    // chunk) — the correctness half of the WAN story.
    let server = start_server();
    let addr = server.addr().to_string();
    let shape = LinkShape::parse("bw=64m,delay=1ms,loss=0.02,seed=7").unwrap();
    let v = Value::DoubleArray((0..25_000).map(|i| i as f64 * 0.5).collect());
    let image = ninf_protocol::value_image(&v);
    let digest = ninf_protocol::Digest::of(&image);
    let report = parallel_put(
        &addr,
        digest,
        &image,
        4,
        8192,
        Some(Duration::from_millis(300)),
        Some(shape),
    )
    .unwrap();
    assert_eq!(report.streams, 4);
    assert_eq!(report.bytes, image.len() as u64);
    // loss=2% over ~25 chunks usually costs a retransmit, but the schedule
    // is seed-dependent; what matters is the image landed and verified.
    assert!(server.arg_store().contains(&digest));
    let (_, rejects, uploads, _) = server.metrics().chunked();
    assert_eq!((rejects, uploads), (0, 1));
    server.shutdown();
}

#[test]
fn a_dead_lane_loses_only_its_own_chunks_and_a_fresh_lane_finishes_them() {
    // The partition story at the chunk-protocol level: two lanes with
    // strided chunk ownership, one dies mid-upload. The survivor's chunks
    // must all land and be retained; only the dead lane's stride is
    // missing, and a replacement connection can finish exactly that
    // stride — including an idempotent re-ack of the chunk the dead lane
    // did deliver.
    let server = start_server();
    let addr = server.addr().to_string();
    let v = Value::DoubleArray((0..20_000).map(|i| (i as f64).sin()).collect());
    let image = ninf_protocol::value_image(&v);
    let digest = ninf_protocol::Digest::of(&image);
    let chunks = ninf_protocol::split_chunks(digest, &image, 8192);
    assert!(
        chunks.len() >= 6,
        "need a real fan-out: {} chunks",
        chunks.len()
    );

    fn send_chunk(conn: &mut ninf_protocol::TcpTransport, m: &ninf_protocol::Message) {
        use ninf_protocol::Transport;
        conn.send(m).unwrap();
        match conn.recv().unwrap() {
            ninf_protocol::Message::ChunkOk { .. } => {}
            other => panic!("expected ChunkOk, got {other:?}"),
        }
    }

    // Lane A (even seqs) ships exactly one chunk, then dies.
    let mut lane_a = ninf_protocol::TcpTransport::connect(&addr).unwrap();
    send_chunk(&mut lane_a, &chunks[0]);
    drop(lane_a);

    // Lane B (odd seqs) delivers its whole stride untouched.
    let mut lane_b = ninf_protocol::TcpTransport::connect(&addr).unwrap();
    for m in chunks.iter().skip(1).step_by(2) {
        send_chunk(&mut lane_b, m);
    }
    assert!(
        !server.arg_store().contains(&digest),
        "the upload must not complete while the dead lane's chunks are missing"
    );

    // A replacement lane re-walks the dead lane's stride from the top.
    let mut lane_a2 = ninf_protocol::TcpTransport::connect(&addr).unwrap();
    for m in chunks.iter().step_by(2) {
        send_chunk(&mut lane_a2, m);
    }
    assert!(server.arg_store().contains(&digest));
    let (_, rejects, uploads, bytes) = server.metrics().chunked();
    assert_eq!(rejects, 0, "a duplicate retransmit re-acks, never rejects");
    assert_eq!(uploads, 1);
    assert!(bytes >= image.len() as u64);
    server.shutdown();
}

#[test]
fn when_every_lane_dies_the_call_falls_back_inline_and_still_succeeds() {
    // A lane deadline no loopback round trip can beat: every chunk times
    // out, every lane dies, and the upload as a whole fails. The *call*
    // must absorb that — ship the value inline over the healthy call
    // connection — and the failed upload may not be accounted as bulk.
    let server = start_server();
    let addr = server.addr().to_string();
    let opts = CallOptions {
        streams: 4,
        chunk_bytes: 4096,
        lane_deadline: Some(Duration::from_nanos(1)),
        ..CallOptions::with_deadline(Duration::from_secs(30))
    };
    let mut client = NinfClient::connect_with(&addr, opts).unwrap();
    let args = big_linpack_args();
    let out = client.ninf_call("linpack", &args).unwrap();
    assert!(!out.is_empty());
    let timing = client.last_timing().unwrap();
    assert_eq!(timing.bulk_bytes, 0, "a failed upload is not accounted");
    assert_eq!(timing.args_refd, 0, "nothing pre-shipped, so nothing ref'd");
    let image_len = ninf_protocol::value_image(&args[1]).len();
    assert!(
        timing.request_bytes >= image_len,
        "the matrix went inline: {} request bytes",
        timing.request_bytes
    );
    server.shutdown();
}

#[test]
fn transport_wrapped_clients_ignore_the_streams_knob() {
    // No dial address: bulk fan-out is impossible, and the call must fall
    // back to plain inline shipping instead of failing.
    let server = start_server();
    let addr = server.addr().to_string();
    let t = ninf_protocol::TcpTransport::connect(&addr).unwrap();
    let mut client = NinfClient::from_transport(Box::new(t));
    client.set_options(bulk_opts(8)).unwrap();
    let args = big_linpack_args();
    client.ninf_call("linpack", &args).unwrap();
    let timing = client.last_timing().unwrap();
    assert_eq!(timing.bulk_streams, 0);
    assert_eq!(timing.bulk_bytes, 0);
    server.shutdown();
}
