//! `NinfClient`: two-stage calls over any transport, with per-connection
//! interface caching and asynchronous variants.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ninf_idl::CompiledInterface;
use ninf_obs::recorder;
use ninf_protocol::{
    validate_call_args, validate_results, Arg, Message, ProtocolError, ProtocolResult, Span,
    TcpTransport, TraceContext, Transport, Value,
};
use ninf_reactor::MuxPool;

use crate::argmem;

/// Per-call reliability policy: how long one attempt may take and how
/// failed attempts are retried.
///
/// The deadline bounds *each* network operation (connect, read, write) of
/// one attempt, so a hung or silent server surfaces as
/// [`ProtocolError::Timeout`] instead of blocking forever. Retries happen
/// on a **fresh connection** (a timed-out connection is desynchronized — a
/// late reply may still arrive on it) with exponential backoff and
/// deterministic jitter. Retried invokes are at-least-once: a call whose
/// reply was lost may execute twice, which is safe for the pure numerical
/// routines Ninf serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallOptions {
    /// Bound on each connect/read/write; `None` waits forever (the
    /// pre-deadline behavior).
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure. Remote application errors
    /// (unknown routine, singular matrix) are never retried.
    pub retries: u32,
    /// Base delay before the first retry; doubles per attempt, with jitter
    /// in [0.5, 1.0) of the exponential value.
    pub backoff: Duration,
    /// Whether to name repeat arguments by content digest instead of
    /// re-shipping their bytes (on by default). A destination that no longer
    /// holds a digest replies `NeedArg` and the call refills inline, so
    /// turning this off is purely a measurement/diagnostic switch.
    pub arg_cache: bool,
    /// Parallel bulk-transfer streams. At `0` (the default) everything
    /// ships inline on the call connection. At `1` or more, arguments
    /// whose XDR image is at least [`ninf_protocol::CHUNK_THRESHOLD`]
    /// bytes are pre-shipped as chunks fanned out over this many
    /// dedicated multiplexed streams (GridFTP-style parallel TCP), then
    /// named by content ref in the call itself — `1` measures the chunked
    /// path single-lane, the baseline a stream-count sweep compares
    /// against. Requires a dialed client (an address to fan out to) and
    /// `arg_cache`; otherwise it is ignored.
    pub streams: u32,
    /// Chunk payload size for parallel bulk transfer, in bytes.
    pub chunk_bytes: u32,
    /// Emulated WAN shaping applied client-side to the call connection and
    /// every bulk lane: all of one destination's traffic contends for one
    /// [`ninf_protocol::SharedLink`] keyed by `(addr, shape)`. `None` (the
    /// default) sends at wire speed. Pair with `ninfd --wan` to shape the
    /// reply direction.
    pub wan: Option<ninf_protocol::LinkShape>,
    /// Per-chunk send+ack deadline for the bulk lanes, driving loss
    /// recovery: a lane that misses it retransmits the chunk. `None`
    /// falls back to `deadline`, then to
    /// [`crate::bulk::DEFAULT_LANE_DEADLINE`]. On a lossy link this
    /// should be a small multiple of the per-chunk round trip — far
    /// shorter than the whole-call `deadline` — or every lost chunk
    /// stalls its lane for the full call budget.
    pub lane_deadline: Option<Duration>,
}

impl Default for CallOptions {
    fn default() -> Self {
        Self {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(100),
            arg_cache: true,
            streams: 0,
            chunk_bytes: ninf_protocol::DEFAULT_CHUNK_BYTES,
            wan: None,
            lane_deadline: None,
        }
    }
}

impl CallOptions {
    /// Options with just a per-operation deadline set.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Delay before retry number `attempt` (0-based): exponential backoff
    /// with deterministic jitter derived from `salt`, so concurrent
    /// retriers against one server de-synchronize without OS entropy.
    pub fn backoff_delay(&self, attempt: u32, salt: u64) -> Duration {
        let doubled = self.backoff.saturating_mul(1u32 << attempt.min(10));
        // One SplitMix64 scramble of (salt, attempt) -> jitter in [0.5, 1.0).
        let mut z = salt.wrapping_add((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        doubled.mul_f64(0.5 + 0.5 * unit)
    }
}

/// Client-side decomposition of one `Ninf_call`, in seconds — the
/// measurement hook a load-generation harness reads instead of scraping
/// stdout. Segments that did not occur (interface cache hit, no redial) are
/// zero. `total` covers the whole call including retries and backoff sleeps,
/// so `total ≥ connect + interface + marshal + roundtrip`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CallTiming {
    /// Seconds spent re-dialing the server inside the call (retries only).
    pub connect: f64,
    /// Seconds fetching the compiled interface (stage 1); 0 on a cache hit.
    pub interface: f64,
    /// Seconds interpreting the IDL client-side: argument validation and
    /// layout computation before any payload byte is sent.
    pub marshal: f64,
    /// Seconds between sending `Invoke` and receiving the reply — wire
    /// transfer both ways plus server wall time (subtract the server-side
    /// [`ninf_protocol::CallStat::total`] to isolate transfer).
    pub roundtrip: f64,
    /// End-to-end wall seconds of the call, retries and backoff included.
    pub total: f64,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Request payload bytes (arrays only) actually shipped on the last
    /// attempt — refs subtract their value's bytes, a refill adds the full
    /// inline payload back.
    pub request_bytes: usize,
    /// Reply payload bytes of the last attempt (0 if it failed).
    pub reply_bytes: usize,
    /// Argument positions shipped as content refs on the last attempt.
    pub args_refd: u32,
    /// Arguments re-shipped inline after a server-side cache miss
    /// (`NeedArg`) on the last attempt.
    pub args_refilled: u32,
    /// Image bytes pre-shipped as chunks over parallel bulk streams on
    /// this call. Tracked separately from `request_bytes`, which counts
    /// only payload shipped inside the Invoke itself — a bulk-shipped
    /// value arrives by ref there.
    pub bulk_bytes: usize,
    /// Chunk retransmits during bulk transfer (lost chunks or acks).
    pub bulk_retransmits: u32,
    /// Parallel lanes the call's bulk uploads used (0 = no bulk upload).
    pub bulk_streams: u32,
}

/// FNV-1a of an address, used to salt backoff jitter per server.
fn addr_salt(addr: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in addr.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A connected Ninf client.
///
/// The client keeps one ordered connection (as "standard TCP-based
/// RPC-protocols require clients and servers to stay connected", §5.1) and
/// caches compiled interfaces it has already fetched, so repeated calls to
/// the same routine skip stage 1.
pub struct NinfClient {
    transport: Box<dyn Transport>,
    interfaces: HashMap<String, CompiledInterface>,
    /// Remembered dial address; retries reconnect through it. `None` for
    /// clients wrapped around a caller-supplied transport.
    addr: Option<String>,
    /// Pool this client checks streams out of; reconnects re-check-out
    /// instead of dialing, so a retry transparently lands on a live (or
    /// freshly dialed) multiplexed stream. `None` for direct connections.
    pool: Option<Arc<MuxPool>>,
    /// Whether the most recent checkout reused an already-open stream.
    stream_reused: bool,
    options: CallOptions,
    /// Running totals of array payload bytes, for throughput accounting.
    bytes_sent: usize,
    bytes_received: usize,
    /// Segment accumulator for the call in progress.
    timing: CallTiming,
    /// Completed timing of the most recent `ninf_call`.
    last_timing: Option<CallTiming>,
    /// Trace position to parent new calls under (set by a routing layer);
    /// `None` starts fresh root traces.
    trace_parent: Option<TraceContext>,
    /// Process label stamped on spans this client records (`client` unless a
    /// routing layer relabels its forwarding legs).
    trace_process: String,
    /// Key into the process-wide per-destination argument-digest memory;
    /// `None` (transport-wrapping clients) ships everything inline.
    cache_key: Option<String>,
    /// Context of the call in progress (`None` when tracing is off).
    call_ctx: Option<TraceContext>,
    /// Trace id of the most recent traced call (0 before any, or untraced).
    last_trace_id: u64,
}

impl NinfClient {
    /// Connect over TCP to a live server.
    pub fn connect(addr: &str) -> ProtocolResult<Self> {
        Self::connect_with(addr, CallOptions::default())
    }

    /// Wrap a dialed transport in client-side WAN shaping when the options
    /// ask for it. Lane id 0 is the call connection; bulk lanes take 1..N
    /// on the same shared link, so control and bulk traffic contend for
    /// one emulated bottleneck.
    fn wrap_wan(
        addr: &str,
        options: &CallOptions,
        transport: Box<dyn Transport>,
    ) -> Box<dyn Transport> {
        match options.wan {
            Some(shape) => Box::new(ninf_protocol::ShapedTransport::new(
                transport,
                ninf_protocol::link_for(addr, shape),
                0,
            )),
            None => transport,
        }
    }

    /// Connect with a reliability policy: the deadline bounds the connect
    /// itself and every subsequent operation, and calls through this client
    /// retry per `options`.
    pub fn connect_with(addr: &str, options: CallOptions) -> ProtocolResult<Self> {
        let transport = TcpTransport::connect_with_deadline(addr, options.deadline)?;
        let mut client = Self::from_transport(Self::wrap_wan(addr, &options, Box::new(transport)));
        client.addr = Some(addr.to_owned());
        client.cache_key = Some(addr.to_owned());
        client.options = options;
        Ok(client)
    }

    /// Connect through a shared [`MuxPool`]: the connection is *checked
    /// out* — an already-open multiplexed stream to `addr` is reused when
    /// one has admission capacity, and a new one is dialed only on a pool
    /// miss. Retries re-check-out, so after a stream failure the next
    /// attempt transparently lands on a fresh connection while calls on
    /// other streams never notice.
    pub fn connect_pooled(
        addr: &str,
        options: CallOptions,
        pool: Arc<MuxPool>,
    ) -> ProtocolResult<Self> {
        let checkout = pool.checkout(addr, options.deadline)?;
        let mut client =
            Self::from_transport(Self::wrap_wan(addr, &options, Box::new(checkout.handle)));
        client.transport.set_deadline(options.deadline)?;
        client.addr = Some(addr.to_owned());
        client.cache_key = Some(addr.to_owned());
        client.options = options;
        client.pool = Some(pool);
        client.stream_reused = checkout.reused;
        Ok(client)
    }

    /// Whether the most recent checkout of this pooled client reused an
    /// already-open multiplexed stream (always `false` for direct
    /// connections).
    pub fn stream_reused(&self) -> bool {
        self.stream_reused
    }

    /// Wrap an arbitrary transport (e.g. an in-process channel in tests).
    pub fn from_transport(transport: Box<dyn Transport>) -> Self {
        Self {
            transport,
            interfaces: HashMap::new(),
            addr: None,
            pool: None,
            stream_reused: false,
            options: CallOptions::default(),
            bytes_sent: 0,
            bytes_received: 0,
            timing: CallTiming::default(),
            last_timing: None,
            trace_parent: None,
            trace_process: "client".to_string(),
            cache_key: None,
            call_ctx: None,
            last_trace_id: 0,
        }
    }

    /// Timing decomposition of the most recent [`NinfClient::ninf_call`]
    /// (successful or not); `None` before the first call.
    pub fn last_timing(&self) -> Option<CallTiming> {
        self.last_timing
    }

    /// The active reliability policy.
    pub fn options(&self) -> CallOptions {
        self.options
    }

    /// Parent the next calls' traces under `parent` (a routing layer passes
    /// its own span position here); `None` reverts to fresh root traces.
    pub fn set_trace_parent(&mut self, parent: Option<TraceContext>) {
        self.trace_parent = parent;
    }

    /// Relabel the logical process stamped on spans this client records.
    pub fn set_trace_process(&mut self, process: impl Into<String>) {
        self.trace_process = process.into();
    }

    /// Trace id of the most recent traced call; 0 when tracing was off.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Context for one new call: a child of the configured parent, or a
    /// fresh root. `None` (free of any id/clock work) when tracing is off.
    fn mint_ctx(&self) -> Option<TraceContext> {
        if !recorder::global().enabled() {
            return None;
        }
        Some(match self.trace_parent {
            Some(parent) => parent.child(),
            None => TraceContext::root(),
        })
    }

    /// Key the per-destination argument-digest memory under `key`; `None`
    /// disables content refs for this client. Dialed and pooled clients
    /// default to their address, transport-wrapping clients to `None` —
    /// this setter exists for harnesses that wrap transports by hand.
    pub fn set_cache_key(&mut self, key: Option<String>) {
        self.cache_key = key;
    }

    /// Encode call values as wire arguments, replacing values this
    /// destination is believed to hold with content refs. Values sent inline
    /// are remembered optimistically — a stale belief surfaces as `NeedArg`
    /// and is repaired by [`NinfClient::send_with_refill`]. Returns
    /// `(args, refs shipped, payload bytes saved)`.
    fn encode_args(&self, values: &[Value]) -> (Vec<Arg>, u32, usize) {
        let Some(key) = self.cache_key.as_deref().filter(|_| self.options.arg_cache) else {
            return (Arg::inline(values.to_vec()), 0, 0);
        };
        let mut refs = 0u32;
        let mut saved = 0usize;
        let args = values
            .iter()
            .map(|v| {
                if !ninf_protocol::cacheable(v) {
                    return Arg::Data(v.clone());
                }
                let d = ninf_protocol::digest_value(v);
                if argmem::knows(key, &d) {
                    refs += 1;
                    saved += v.wire_bytes();
                    Arg::Ref(d)
                } else {
                    argmem::remember(key, d);
                    Arg::Data(v.clone())
                }
            })
            .collect();
        if refs > 0 {
            argmem::argref_sent().add(u64::from(refs));
        }
        (args, refs, saved)
    }

    /// Whether calls on this client use the parallel bulk-transfer path:
    /// more than one stream requested, a dialed destination to fan out
    /// to, and content refs on (a bulk upload is useless if the call
    /// cannot ref it afterwards).
    fn bulk_enabled(&self) -> bool {
        self.options.streams >= 1
            && self.options.arg_cache
            && self.addr.is_some()
            && self.cache_key.is_some()
    }

    /// Pre-ship large arguments this destination does not hold yet as
    /// chunks over parallel bulk streams, so `encode_args` refs them and
    /// the Invoke itself stays small. A failed upload is absorbed: the
    /// value simply ships inline with the call (at-most-one transfer of
    /// the bytes either way — the digest is only remembered on success).
    fn bulk_preship(&mut self, values: &[Value]) {
        if !self.bulk_enabled() {
            return;
        }
        let (addr, key) = (self.addr.clone().unwrap(), self.cache_key.clone().unwrap());
        for v in values {
            if !ninf_protocol::cacheable(v) {
                continue;
            }
            let image = ninf_protocol::value_image(v);
            if image.len() < ninf_protocol::CHUNK_THRESHOLD {
                continue;
            }
            let digest = ninf_protocol::Digest::of(&image);
            if argmem::knows(&key, &digest) {
                continue;
            }
            match crate::bulk::parallel_put(
                &addr,
                digest,
                &image,
                self.options.streams,
                self.options.chunk_bytes,
                self.options.lane_deadline.or(self.options.deadline),
                self.options.wan,
            ) {
                Ok(report) => {
                    argmem::remember(&key, digest);
                    self.bytes_sent += report.bytes as usize;
                    self.timing.bulk_bytes += report.bytes as usize;
                    self.timing.bulk_retransmits += report.retransmits;
                    self.timing.bulk_streams = self.timing.bulk_streams.max(report.streams);
                }
                Err(_) => {
                    // Fall through: encode_args will ship it inline.
                }
            }
        }
    }

    /// Refill the digests a `NeedArg` named over the parallel bulk lanes.
    /// Returns `true` only if every named value landed (and was
    /// remembered), so the ref'd request can simply be replayed.
    fn bulk_refill(&mut self, values: &[Value], digests: &[ninf_protocol::Digest]) -> bool {
        if !self.bulk_enabled() {
            return false;
        }
        let (addr, key) = (self.addr.clone().unwrap(), self.cache_key.clone().unwrap());
        for wanted in digests {
            let Some(image) = values
                .iter()
                .filter(|v| ninf_protocol::cacheable(v))
                .map(ninf_protocol::value_image)
                .find(|image| ninf_protocol::Digest::of(image) == *wanted)
            else {
                return false;
            };
            match crate::bulk::parallel_put(
                &addr,
                *wanted,
                &image,
                self.options.streams,
                self.options.chunk_bytes,
                self.options.lane_deadline.or(self.options.deadline),
                self.options.wan,
            ) {
                Ok(report) => {
                    argmem::remember(&key, *wanted);
                    self.bytes_sent += report.bytes as usize;
                    self.timing.bulk_bytes += report.bytes as usize;
                    self.timing.bulk_retransmits += report.retransmits;
                    self.timing.bulk_streams = self.timing.bulk_streams.max(report.streams);
                }
                Err(_) => return false,
            }
        }
        true
    }

    /// Ship one request whose argument list may contain content refs, and
    /// absorb `NeedArg` rounds: the named digests are forgotten, then
    /// either re-shipped as parallel chunk uploads (bulk clients — the
    /// ref'd request is replayed afterwards) or folded inline into a
    /// re-sent request. The server executes nothing before all refs
    /// resolve, so the refill round is the call's first (and only)
    /// execution — exactly-once is preserved. A `NeedArg` for an
    /// all-inline request is a protocol violation and surfaces to the
    /// caller as an unexpected message.
    fn send_with_refill(
        &mut self,
        values: &[Value],
        payload_bytes: usize,
        build: &dyn Fn(Vec<Arg>) -> Message,
    ) -> ProtocolResult<Message> {
        let (args, refs, saved) = self.encode_args(values);
        let shipped = payload_bytes - saved;
        self.bytes_sent += shipped;
        self.timing.request_bytes = shipped;
        self.timing.args_refd = refs;
        self.timing.args_refilled = 0;
        self.transport.send(&build(args))?;
        let reply = self.transport.recv()?;
        let Message::NeedArg { digests } = reply else {
            return Ok(reply);
        };
        if let Some(key) = self.cache_key.as_deref() {
            argmem::forget(key, &digests);
        }
        argmem::argref_refilled().add(digests.len() as u64);
        self.timing.args_refilled = digests.len() as u32;
        if self.bulk_refill(values, &digests) {
            // The lanes re-primed the server's store; replay the ref'd
            // request unchanged. A second NeedArg (the server evicted
            // again already) falls through to the inline path below.
            let (args, _, _) = self.encode_args(values);
            self.transport.send(&build(args))?;
            let reply = self.transport.recv()?;
            let Message::NeedArg { digests } = reply else {
                return Ok(reply);
            };
            if let Some(key) = self.cache_key.as_deref() {
                argmem::forget(key, &digests);
            }
        }
        self.bytes_sent += payload_bytes;
        self.timing.request_bytes += payload_bytes;
        self.transport.send(&build(Arg::inline(values.to_vec())))?;
        // The refill re-primes the server's store, so remember what it now
        // holds and the next call refs again.
        if let Some(key) = self.cache_key.as_deref() {
            for v in values.iter().filter(|v| ninf_protocol::cacheable(v)) {
                argmem::remember(key, ninf_protocol::digest_value(v));
            }
        }
        self.transport.recv()
    }

    /// Replace the reliability policy, re-arming the transport deadline.
    pub fn set_options(&mut self, options: CallOptions) -> ProtocolResult<()> {
        self.transport.set_deadline(options.deadline)?;
        self.options = options;
        Ok(())
    }

    /// Tear down the connection and reach the remembered address again —
    /// through the pool (re-checkout; dead streams were evicted) for pooled
    /// clients, by redialing for direct ones. Fails for transport-wrapping
    /// clients, which have no address.
    fn reconnect(&mut self) -> ProtocolResult<()> {
        let addr = self.addr.clone().ok_or(ProtocolError::Disconnected)?;
        let t0 = Instant::now();
        let start_us = self.call_ctx.map(|_| ninf_obs::now_us());
        let dialed: ProtocolResult<Box<dyn Transport>> = match &self.pool {
            Some(pool) => pool.checkout(&addr, self.options.deadline).map(|co| {
                self.stream_reused = co.reused;
                Box::new(co.handle) as Box<dyn Transport>
            }),
            None => TcpTransport::connect_with_deadline(&addr, self.options.deadline)
                .map(|t| Box::new(t) as Box<dyn Transport>),
        };
        self.timing.connect += t0.elapsed().as_secs_f64();
        if let (Some(ctx), Some(start)) = (self.call_ctx, start_us) {
            recorder::global().record(
                Span::at(ctx.child(), "connect", &self.trace_process, start)
                    .with_detail(format!("addr={addr}")),
            );
        }
        self.transport = Self::wrap_wan(&addr, &self.options, dialed?);
        self.transport.set_deadline(self.options.deadline)?;
        Ok(())
    }

    /// Run `op` under the retry policy: a retryable failure tears the
    /// connection down, backs off, reconnects, and tries again. Without a
    /// remembered address the first error is final.
    fn with_retries<R>(
        &mut self,
        op: impl Fn(&mut Self) -> ProtocolResult<R>,
    ) -> ProtocolResult<R> {
        let mut attempt = 0u32;
        loop {
            match op(self) {
                Ok(v) => return Ok(v),
                Err(e)
                    if e.is_retryable()
                        && attempt < self.options.retries
                        && self.addr.is_some() =>
                {
                    let salt = self.addr.as_deref().map(addr_salt).unwrap_or(0);
                    std::thread::sleep(self.options.backoff_delay(attempt, salt));
                    // A failed reconnect consumes this attempt; the loop
                    // decides whether more remain.
                    if let Err(rec) = self.reconnect() {
                        if attempt + 1 >= self.options.retries {
                            return Err(rec);
                        }
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Array payload bytes shipped to the server so far.
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent
    }

    /// Array payload bytes received from the server so far.
    pub fn bytes_received(&self) -> usize {
        self.bytes_received
    }

    /// Stage 1: fetch (or reuse) the compiled interface for `routine`.
    pub fn query_interface(&mut self, routine: &str) -> ProtocolResult<&CompiledInterface> {
        if !self.interfaces.contains_key(routine) {
            let t0 = Instant::now();
            self.transport.send(&Message::QueryInterface {
                routine: routine.to_owned(),
            })?;
            let reply = self.transport.recv();
            self.timing.interface += t0.elapsed().as_secs_f64();
            match reply? {
                Message::InterfaceReply { interface } => {
                    self.interfaces.insert(routine.to_owned(), interface);
                }
                Message::Error { reason } => return Err(ProtocolError::Remote(reason)),
                other => {
                    return Err(ProtocolError::UnexpectedMessage {
                        expected: "InterfaceReply",
                        got: other.kind().to_owned(),
                    })
                }
            }
        }
        Ok(&self.interfaces[routine])
    }

    /// `Ninf_call`: the blocking two-stage remote call.
    ///
    /// `args` are the `mode_in`/`mode_inout` values in declaration order; the
    /// return is the `mode_out`/`mode_inout` values in declaration order.
    /// Argument shapes are validated *client-side* against the interpreted
    /// IDL before a single payload byte is sent.
    ///
    /// Honors the client's [`CallOptions`]: each attempt is
    /// deadline-bounded, and retryable failures redial with backoff (see
    /// [`NinfClient::connect_with`]).
    pub fn ninf_call(&mut self, routine: &str, args: &[Value]) -> ProtocolResult<Vec<Value>> {
        self.timing = CallTiming::default();
        self.call_ctx = self.mint_ctx();
        let start_us = self.call_ctx.map(|_| ninf_obs::now_us());
        let t0 = Instant::now();
        let out = self.with_retries(|c| {
            c.timing.attempts += 1;
            c.ninf_call_once(routine, args)
        });
        self.timing.total = t0.elapsed().as_secs_f64();
        self.last_timing = Some(self.timing);
        if let (Some(ctx), Some(start)) = (self.call_ctx, start_us) {
            self.last_trace_id = ctx.trace_id;
            recorder::global().record(
                Span::at(ctx, "call", &self.trace_process, start).with_detail(format!(
                    "routine={routine} attempts={} ok={}",
                    self.timing.attempts,
                    out.is_ok()
                )),
            );
        }
        out
    }

    /// One two-stage call attempt, no retries.
    fn ninf_call_once(&mut self, routine: &str, args: &[Value]) -> ProtocolResult<Vec<Value>> {
        let ctx = self.call_ctx;
        let cache_miss = !self.interfaces.contains_key(routine);
        let iface_start_us = (ctx.is_some() && cache_miss).then(ninf_obs::now_us);
        let interface = self.query_interface(routine)?.clone();
        if let (Some(ctx), Some(start)) = (ctx, iface_start_us) {
            recorder::global().record(
                Span::at(ctx.child(), "interface", &self.trace_process, start)
                    .with_detail(format!("routine={routine}")),
            );
        }
        let marshal_start_us = ctx.map(|_| ninf_obs::now_us());
        let t_marshal = Instant::now();
        let layout = validate_call_args(&interface, args).map_err(ProtocolError::Remote)?;
        self.timing.marshal += t_marshal.elapsed().as_secs_f64();
        if let (Some(ctx), Some(start)) = (ctx, marshal_start_us) {
            recorder::global().record(Span::at(ctx.child(), "marshal", &self.trace_process, start));
        }
        let payload_bytes = ninf_protocol::request_payload_bytes(&layout);
        self.timing.reply_bytes = 0;
        self.bulk_preship(args);

        // The rpc span's position travels on the wire, so the server parents
        // its own spans inside the client's send→receive interval.
        let rpc_ctx = ctx.map(|c| c.child());
        let rpc_start_us = rpc_ctx.map(|_| ninf_obs::now_us());
        let t_wire = Instant::now();
        let routine_name = routine.to_owned();
        let reply = self.send_with_refill(args, payload_bytes, &move |wire_args| Message::Invoke {
            routine: routine_name.clone(),
            args: wire_args,
            trace: rpc_ctx,
        });
        self.timing.roundtrip += t_wire.elapsed().as_secs_f64();
        if let (Some(rpc), Some(start)) = (rpc_ctx, rpc_start_us) {
            recorder::global().record(
                Span::at(rpc, "rpc", &self.trace_process, start).with_detail(format!(
                    "request_bytes={} args_refd={} args_refilled={}",
                    self.timing.request_bytes, self.timing.args_refd, self.timing.args_refilled
                )),
            );
        }
        match reply? {
            Message::ResultData { results } => {
                validate_results(&interface, &layout, &results).map_err(ProtocolError::Remote)?;
                let reply_bytes = ninf_protocol::reply_payload_bytes(&layout);
                self.bytes_received += reply_bytes;
                self.timing.reply_bytes = reply_bytes;
                Ok(results)
            }
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "ResultData",
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Two-phase call, phase 1 (§5.1): validate and ship the arguments,
    /// receive a ticket, and return — the connection may then be dropped
    /// while the server computes. Resume from *any* connection with
    /// [`NinfClient::poll_job`] / [`NinfClient::fetch_result`].
    ///
    /// Honors the client's [`CallOptions`] like [`NinfClient::ninf_call`];
    /// a retried submission whose first ticket was lost in flight may leave
    /// an orphan job on the server whose result is simply never fetched.
    pub fn submit_job(&mut self, routine: &str, args: &[Value]) -> ProtocolResult<u64> {
        self.call_ctx = self.mint_ctx();
        let start_us = self.call_ctx.map(|_| ninf_obs::now_us());
        let out = self.with_retries(|c| c.submit_job_once(routine, args));
        if let (Some(ctx), Some(start)) = (self.call_ctx, start_us) {
            self.last_trace_id = ctx.trace_id;
            recorder::global().record(
                Span::at(ctx, "submit", &self.trace_process, start)
                    .with_detail(format!("routine={routine} ok={}", out.is_ok())),
            );
        }
        out
    }

    /// One submission attempt, no retries.
    fn submit_job_once(&mut self, routine: &str, args: &[Value]) -> ProtocolResult<u64> {
        let interface = self.query_interface(routine)?.clone();
        let layout = validate_call_args(&interface, args).map_err(ProtocolError::Remote)?;
        let payload_bytes = ninf_protocol::request_payload_bytes(&layout);
        self.bulk_preship(args);
        let trace = self.call_ctx;
        let routine_name = routine.to_owned();
        let reply =
            self.send_with_refill(args, payload_bytes, &move |wire_args| Message::SubmitJob {
                routine: routine_name.clone(),
                args: wire_args,
                trace,
            })?;
        match reply {
            Message::JobTicket { job } => Ok(job),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "JobTicket",
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Poll a two-phase ticket.
    pub fn poll_job(&mut self, job: u64) -> ProtocolResult<ninf_protocol::JobPhase> {
        self.transport.send(&Message::PollJob { job })?;
        match self.transport.recv()? {
            Message::JobStatus { job: j, state } if j == job => Ok(state),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "JobStatus",
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Two-phase call, phase 2: collect the results of a finished ticket.
    ///
    /// The fetch carries a trace position like the submit did: it parents
    /// under the submit's context when one is live on this client (or under
    /// the configured trace parent), so a two-phase call renders as one
    /// connected tree instead of an orphaned server-side fetch span.
    pub fn fetch_result(&mut self, job: u64) -> ProtocolResult<Vec<Value>> {
        let ctx = if recorder::global().enabled() {
            Some(match self.call_ctx {
                Some(submit) => submit.child(),
                None => match self.trace_parent {
                    Some(p) => p.child(),
                    None => TraceContext::root(),
                },
            })
        } else {
            None
        };
        let start_us = ctx.map(|_| ninf_obs::now_us());
        self.transport
            .send(&Message::FetchResult { job, trace: ctx })?;
        let out = match self.transport.recv()? {
            Message::ResultData { results } => Ok(results),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "ResultData",
                got: other.kind().to_owned(),
            }),
        };
        if let (Some(ctx), Some(start)) = (ctx, start_us) {
            self.last_trace_id = ctx.trace_id;
            recorder::global().record(
                Span::at(ctx, "fetch", &self.trace_process, start)
                    .with_detail(format!("job={job} ok={}", out.is_ok())),
            );
        }
        out
    }

    /// List the routines the server exports, with their documentation.
    pub fn list_routines(&mut self) -> ProtocolResult<Vec<(String, String)>> {
        self.transport.send(&Message::ListRoutines)?;
        match self.transport.recv()? {
            Message::RoutineList { routines } => Ok(routines),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "RoutineList",
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Query the server's completed-call records (§4.1 timelines) from
    /// record index `since`. Returns `(server clock now, total records,
    /// records[since..])` — the server-side half a measurement harness joins
    /// with its own [`CallTiming`] observations.
    pub fn query_stats(
        &mut self,
        since: u64,
    ) -> ProtocolResult<(f64, u64, Vec<ninf_protocol::CallStat>)> {
        self.transport.send(&Message::QueryStats { since })?;
        match self.transport.recv()? {
            Message::StatsReply {
                now,
                total,
                records,
            } => Ok((now, total, records)),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "StatsReply",
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Query the server's metric window series from global window index
    /// `since`: `(process label, snapshot)`. The snapshot's `interval` is 0
    /// when the remote registry has windows disarmed; its `now` is the
    /// remote window clock, which together with this call's local
    /// send/receive timestamps yields the clock-skew offset a sweep
    /// timeline needs.
    pub fn query_metrics(
        &mut self,
        since: u64,
    ) -> ProtocolResult<(String, ninf_protocol::WindowsSnapshot)> {
        self.transport.send(&Message::QueryMetrics { since })?;
        match self.transport.recv()? {
            Message::MetricsReply {
                process,
                now,
                interval,
                total,
                dropped,
                frames,
            } => Ok((
                process,
                ninf_protocol::WindowsSnapshot {
                    now,
                    interval,
                    total,
                    dropped,
                    frames,
                },
            )),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "MetricsReply",
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Fetch the remote process's flight recorder: `(process label, spans
    /// dropped by its ring, retained spans)`. `trace_id` 0 fetches every
    /// retained span.
    pub fn query_trace(&mut self, trace_id: u64) -> ProtocolResult<(String, u64, Vec<Span>)> {
        self.transport.send(&Message::QueryTrace { trace_id })?;
        match self.transport.recv()? {
            Message::TraceReply {
                process,
                dropped,
                spans,
            } => Ok((process, dropped, spans)),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "TraceReply",
                got: other.kind().to_owned(),
            }),
        }
    }

    /// Query the server's load (what the metaserver's monitor does).
    pub fn query_load(&mut self) -> ProtocolResult<ninf_protocol::LoadReport> {
        self.transport.send(&Message::QueryLoad)?;
        match self.transport.recv()? {
            Message::LoadStatus(r) => Ok(r),
            Message::Error { reason } => Err(ProtocolError::Remote(reason)),
            other => Err(ProtocolError::UnexpectedMessage {
                expected: "LoadStatus",
                got: other.kind().to_owned(),
            }),
        }
    }
}

/// Failure of a locally-executed transaction.
#[derive(Debug)]
pub enum LocalTxError {
    /// Call at this index reads a slot no earlier call wrote.
    UnwrittenSlot(usize),
    /// A call failed remotely.
    Call {
        /// Index of the failing call in the transaction.
        call: usize,
        /// The underlying RPC error.
        error: ProtocolError,
    },
}

impl std::fmt::Display for LocalTxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalTxError::UnwrittenSlot(i) => {
                write!(f, "transaction call #{i} reads an unwritten slot")
            }
            LocalTxError::Call { call, error } => write!(f, "transaction call #{call}: {error}"),
        }
    }
}

impl std::error::Error for LocalTxError {}

/// An in-flight asynchronous call (`Ninf_call_async`, §2.2).
pub struct AsyncCall {
    handle: JoinHandle<ProtocolResult<Vec<Value>>>,
}

impl AsyncCall {
    /// Block until the call completes (`Ninf_wait` in the original API).
    pub fn wait(self) -> ProtocolResult<Vec<Value>> {
        self.handle
            .join()
            .unwrap_or_else(|_| Err(ProtocolError::Remote("async call thread panicked".into())))
    }

    /// Whether the call has already finished.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Split a Ninf URL into `(server address, routine name)`.
///
/// Accepted forms (paper §2.2 allows
/// `Ninf_call("http://.../dmmul", ...)`-style naming):
/// `ninf://host:port/routine`, `http://host:port/path/routine`, or the bare
/// `host:port/routine`.
pub fn parse_ninf_url(url: &str) -> ProtocolResult<(String, String)> {
    let rest = url
        .strip_prefix("ninf://")
        .or_else(|| url.strip_prefix("http://"))
        .unwrap_or(url);
    let (addr, path) = rest
        .split_once('/')
        .ok_or_else(|| ProtocolError::Remote(format!("URL `{url}` has no routine path")))?;
    let routine = path.rsplit('/').next().unwrap_or(path);
    if addr.is_empty() || routine.is_empty() {
        return Err(ProtocolError::Remote(format!("malformed Ninf URL `{url}`")));
    }
    Ok((addr.to_owned(), routine.to_owned()))
}

/// One-shot URL-form `Ninf_call`: connect to the host in the URL, call the
/// routine named by its final path segment.
pub fn ninf_call_url(url: &str, args: &[Value]) -> ProtocolResult<Vec<Value>> {
    let (addr, routine) = parse_ninf_url(url)?;
    NinfClient::connect(&addr)?.ninf_call(&routine, args)
}

/// A complete two-phase call over *separate connections*: submit on one,
/// disconnect, then poll and fetch on a fresh connection every
/// `poll_interval` — the §5.1 design that "terminates" communication during
/// server computation so connections never pin server slots.
pub fn call_two_phase(
    addr: &str,
    routine: &str,
    args: &[Value],
    poll_interval: std::time::Duration,
) -> ProtocolResult<Vec<Value>> {
    let job = {
        let mut submitter = NinfClient::connect(addr)?;
        submitter.submit_job(routine, args)?
        // submitter dropped: connection closed while the server computes.
    };
    loop {
        let mut poller = NinfClient::connect(addr)?;
        match poller.poll_job(job)? {
            ninf_protocol::JobPhase::Pending => std::thread::sleep(poll_interval),
            ninf_protocol::JobPhase::Done | ninf_protocol::JobPhase::Failed => {
                return poller.fetch_result(job);
            }
            ninf_protocol::JobPhase::Unknown => {
                return Err(ProtocolError::Remote(format!("job {job} vanished")));
            }
        }
    }
}

/// One-shot `Ninf_call` under a reliability policy: every attempt dials a
/// fresh connection (so a hung previous attempt cannot poison this one),
/// bounded by `options.deadline` and retried per `options.retries` with
/// exponential, jittered backoff.
pub fn call_with_options(
    addr: &str,
    routine: &str,
    args: &[Value],
    options: CallOptions,
) -> ProtocolResult<Vec<Value>> {
    call_with_options_traced(addr, routine, args, options, None, "client")
}

/// [`call_with_options`] with an explicit trace position: each attempt's
/// spans parent under `parent` (or start a fresh root trace) and carry the
/// `process` label — the hook a routing layer uses to keep its forwarded
/// legs inside the caller's trace.
pub fn call_with_options_traced(
    addr: &str,
    routine: &str,
    args: &[Value],
    options: CallOptions,
    parent: Option<TraceContext>,
    process: &str,
) -> ProtocolResult<Vec<Value>> {
    let mut attempt = 0u32;
    loop {
        // One span per attempt: the leg's interface/marshal/rpc spans
        // parent under this "call" span, which in turn parents under the
        // routing layer's position (or roots a fresh trace).
        let ctx = recorder::global().enabled().then(|| match parent {
            Some(p) => p.child(),
            None => TraceContext::root(),
        });
        let start_us = ctx.map(|_| ninf_obs::now_us());
        let outcome = NinfClient::connect_with(
            addr,
            CallOptions {
                retries: 0,
                ..options
            },
        )
        .and_then(|mut client| {
            client.trace_parent = parent;
            client.trace_process = process.to_string();
            client.call_ctx = ctx;
            client.ninf_call_once(routine, args)
        });
        if let (Some(ctx), Some(start)) = (ctx, start_us) {
            recorder::global().record(Span::at(ctx, "call", process, start).with_detail(format!(
                "routine={routine} attempt={attempt} ok={}",
                outcome.is_ok()
            )));
        }
        match outcome {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < options.retries => {
                std::thread::sleep(options.backoff_delay(attempt, addr_salt(addr)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`call_with_options_traced`] over a shared [`MuxPool`]: every attempt
/// *checks out* a multiplexed stream from `pool` instead of dialing fresh,
/// so concurrent calls to one server share connections. A stream failure
/// poisons only that stream and fails exactly the calls in flight on it as
/// retryable; the retry re-checks-out onto a live or freshly dialed stream.
pub fn call_pooled_traced(
    pool: &Arc<MuxPool>,
    addr: &str,
    routine: &str,
    args: &[Value],
    options: CallOptions,
    parent: Option<TraceContext>,
    process: &str,
) -> ProtocolResult<Vec<Value>> {
    let mut attempt = 0u32;
    loop {
        let ctx = recorder::global().enabled().then(|| match parent {
            Some(p) => p.child(),
            None => TraceContext::root(),
        });
        let start_us = ctx.map(|_| ninf_obs::now_us());
        let outcome = NinfClient::connect_pooled(
            addr,
            CallOptions {
                retries: 0,
                ..options
            },
            pool.clone(),
        )
        .and_then(|mut client| {
            client.trace_parent = parent;
            client.trace_process = process.to_string();
            client.call_ctx = ctx;
            client.ninf_call_once(routine, args)
        });
        if let (Some(ctx), Some(start)) = (ctx, start_us) {
            recorder::global().record(Span::at(ctx, "call", process, start).with_detail(format!(
                "routine={routine} attempt={attempt} ok={}",
                outcome.is_ok()
            )));
        }
        match outcome {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < options.retries => {
                std::thread::sleep(options.backoff_delay(attempt, addr_salt(addr)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`call_async_traced`] over a shared pool: the worker thread checks its
/// stream out of `pool` (see [`call_pooled_traced`]) — how the metaserver
/// fans a transaction out without one dial per call.
pub fn call_async_pooled(
    pool: Arc<MuxPool>,
    addr: String,
    routine: String,
    args: Vec<Value>,
    options: CallOptions,
    parent: Option<TraceContext>,
    process: &str,
) -> AsyncCall {
    let process = process.to_string();
    let handle = std::thread::spawn(move || {
        call_pooled_traced(&pool, &addr, &routine, &args, options, parent, &process)
    });
    AsyncCall { handle }
}

/// `Ninf_call_async`: run one call on its own connection and thread.
///
/// Each async call opens a fresh connection so multiple outstanding calls
/// do not serialize on one socket — exactly how the metaserver fans
/// transaction calls out to servers.
pub fn call_async(addr: String, routine: String, args: Vec<Value>) -> AsyncCall {
    call_async_with(addr, routine, args, CallOptions::default())
}

/// [`call_async`] under a reliability policy; the deadline and retries
/// apply inside the worker thread, so `wait` returns a typed
/// [`ProtocolError::Timeout`] instead of blocking on a silent server.
pub fn call_async_with(
    addr: String,
    routine: String,
    args: Vec<Value>,
    options: CallOptions,
) -> AsyncCall {
    call_async_traced(addr, routine, args, options, None, "client")
}

/// [`call_async_with`] with an explicit trace position (see
/// [`call_with_options_traced`]).
pub fn call_async_traced(
    addr: String,
    routine: String,
    args: Vec<Value>,
    options: CallOptions,
    parent: Option<TraceContext>,
    process: &str,
) -> AsyncCall {
    let process = process.to_string();
    let handle = std::thread::spawn(move || {
        call_with_options_traced(&addr, &routine, &args, options, parent, &process)
    });
    AsyncCall { handle }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted transport for unit-testing the client state machine
    /// without a server.
    struct Scripted {
        replies: std::vec::IntoIter<Message>,
        sent: Vec<Message>,
    }

    impl Scripted {
        fn new(replies: Vec<Message>) -> Self {
            Self {
                replies: replies.into_iter(),
                sent: Vec::new(),
            }
        }
    }

    impl Transport for Scripted {
        fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
            self.sent.push(msg.clone());
            Ok(())
        }
        fn recv(&mut self) -> ProtocolResult<Message> {
            self.replies.next().ok_or(ProtocolError::Disconnected)
        }
    }

    fn dmmul_iface() -> CompiledInterface {
        ninf_idl::stdlib_interfaces().remove(0)
    }

    #[test]
    fn two_stage_call_sequence() {
        let n = 2usize;
        let reply_c = Value::DoubleArray(vec![5.0; n * n]);
        let t = Scripted::new(vec![
            Message::InterfaceReply {
                interface: dmmul_iface(),
            },
            Message::ResultData {
                results: vec![reply_c.clone()],
            },
        ]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let out = client
            .ninf_call(
                "dmmul",
                &[
                    Value::Int(n as i32),
                    Value::DoubleArray(vec![1.0; n * n]),
                    Value::DoubleArray(vec![2.0; n * n]),
                ],
            )
            .unwrap();
        assert_eq!(out, vec![reply_c]);
        assert_eq!(client.bytes_sent(), 2 * 8 * n * n);
        assert_eq!(client.bytes_received(), 8 * n * n);
    }

    #[test]
    fn interface_is_cached_after_first_call() {
        let n = 1usize;
        let t = Scripted::new(vec![
            Message::InterfaceReply {
                interface: dmmul_iface(),
            },
            Message::ResultData {
                results: vec![Value::DoubleArray(vec![0.0])],
            },
            // NOTE: no second InterfaceReply — the cache must serve stage 1.
            Message::ResultData {
                results: vec![Value::DoubleArray(vec![0.0])],
            },
        ]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let args = vec![
            Value::Int(n as i32),
            Value::DoubleArray(vec![1.0]),
            Value::DoubleArray(vec![2.0]),
        ];
        client.ninf_call("dmmul", &args).unwrap();
        client.ninf_call("dmmul", &args).unwrap();
    }

    #[test]
    fn client_rejects_malformed_args_before_sending() {
        let t = Scripted::new(vec![Message::InterfaceReply {
            interface: dmmul_iface(),
        }]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let err = client
            .ninf_call(
                "dmmul",
                &[
                    Value::Int(3),
                    Value::DoubleArray(vec![1.0; 9]),
                    Value::DoubleArray(vec![2.0; 8]), // wrong extent
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Remote(_)));
    }

    #[test]
    fn client_rejects_malformed_results() {
        let n = 2usize;
        let t = Scripted::new(vec![
            Message::InterfaceReply {
                interface: dmmul_iface(),
            },
            Message::ResultData {
                results: vec![Value::DoubleArray(vec![0.0; 3])],
            }, // wrong size
        ]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let err = client
            .ninf_call(
                "dmmul",
                &[
                    Value::Int(n as i32),
                    Value::DoubleArray(vec![1.0; 4]),
                    Value::DoubleArray(vec![2.0; 4]),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Remote(_)));
    }

    #[test]
    fn remote_error_is_propagated() {
        let t = Scripted::new(vec![Message::Error {
            reason: "unknown routine `fft`".into(),
        }]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let err = client.ninf_call("fft", &[]).unwrap_err();
        match err {
            ProtocolError::Remote(r) => assert!(r.contains("fft")),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn ninf_urls_parse() {
        assert_eq!(
            parse_ninf_url("ninf://etl.go.jp:5656/dmmul").unwrap(),
            ("etl.go.jp:5656".into(), "dmmul".into())
        );
        assert_eq!(
            parse_ninf_url("http://phase.etl.go.jp:80/ninf/lib/dmmul").unwrap(),
            ("phase.etl.go.jp:80".into(), "dmmul".into())
        );
        assert_eq!(
            parse_ninf_url("127.0.0.1:9000/linpack").unwrap(),
            ("127.0.0.1:9000".into(), "linpack".into())
        );
        assert!(parse_ninf_url("no-path").is_err());
        assert!(parse_ninf_url("ninf:///dmmul").is_err());
        assert!(parse_ninf_url("host:1/").is_err());
    }

    #[test]
    fn unexpected_message_is_protocol_violation() {
        let t = Scripted::new(vec![Message::QueryLoad]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let err = client.query_interface("dmmul").unwrap_err();
        assert!(matches!(err, ProtocolError::UnexpectedMessage { .. }));
    }

    #[test]
    fn call_timing_is_recorded_per_call() {
        let n = 2usize;
        let t = Scripted::new(vec![
            Message::InterfaceReply {
                interface: dmmul_iface(),
            },
            Message::ResultData {
                results: vec![Value::DoubleArray(vec![5.0; n * n])],
            },
            Message::ResultData {
                results: vec![Value::DoubleArray(vec![5.0; n * n])],
            },
        ]);
        let mut client = NinfClient::from_transport(Box::new(t));
        assert_eq!(client.last_timing(), None);
        let args = vec![
            Value::Int(n as i32),
            Value::DoubleArray(vec![1.0; n * n]),
            Value::DoubleArray(vec![2.0; n * n]),
        ];
        client.ninf_call("dmmul", &args).unwrap();
        let first = client.last_timing().unwrap();
        assert_eq!(first.attempts, 1);
        assert_eq!(first.request_bytes, 2 * 8 * n * n);
        assert_eq!(first.reply_bytes, 8 * n * n);
        assert!(first.total >= first.roundtrip);
        assert!(first.connect == 0.0); // no redial on a wrapped transport
        assert!(first.marshal >= 0.0 && first.interface >= 0.0);

        // Second call hits the interface cache: the stage-1 segment is zero,
        // and the timing is a fresh record, not an accumulation.
        client.ninf_call("dmmul", &args).unwrap();
        let second = client.last_timing().unwrap();
        assert_eq!(second.attempts, 1);
        assert_eq!(second.interface, 0.0);
    }

    #[test]
    fn failed_call_still_records_timing() {
        let t = Scripted::new(vec![Message::Error {
            reason: "unknown routine `fft`".into(),
        }]);
        let mut client = NinfClient::from_transport(Box::new(t));
        assert!(client.ninf_call("fft", &[]).is_err());
        let timing = client.last_timing().unwrap();
        assert_eq!(timing.attempts, 1);
        assert_eq!(timing.reply_bytes, 0);
        assert!(timing.total >= 0.0);
    }

    #[test]
    fn query_stats_parses_reply() {
        use ninf_protocol::CallStat;
        let rec = CallStat {
            routine: "ep".into(),
            n: Some(20),
            request_bytes: 0,
            reply_bytes: 16,
            t_submit: 0.5,
            t_enqueue: 0.5,
            t_dequeue: 0.6,
            t_complete: 0.9,
        };
        let t = Scripted::new(vec![Message::StatsReply {
            now: 1.25,
            total: 3,
            records: vec![rec.clone()],
        }]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let (now, total, records) = client.query_stats(2).unwrap();
        assert_eq!(now, 1.25);
        assert_eq!(total, 3);
        assert_eq!(records, vec![rec]);
    }

    #[test]
    fn query_metrics_parses_reply() {
        use ninf_protocol::{MetricFrame, MetricKind, MetricSample};
        let frame = MetricFrame {
            window: 4,
            t: 1.0,
            samples: vec![MetricSample {
                name: "ninf_server_calls_total".into(),
                kind: MetricKind::Counter,
                value: 2.0,
                count: 2,
            }],
        };
        let t = Scripted::new(vec![Message::MetricsReply {
            process: "server".into(),
            now: 1.25,
            interval: 0.25,
            total: 5,
            dropped: 1,
            frames: vec![frame.clone()],
        }]);
        let mut client = NinfClient::from_transport(Box::new(t));
        let (process, snap) = client.query_metrics(4).unwrap();
        assert_eq!(process, "server");
        assert_eq!(snap.now, 1.25);
        assert_eq!(snap.interval, 0.25);
        assert_eq!(snap.total, 5);
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.frames, vec![frame]);
    }

    #[test]
    fn default_options_preserve_legacy_behavior() {
        let opts = CallOptions::default();
        assert_eq!(opts.deadline, None);
        assert_eq!(opts.retries, 0);
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let opts = CallOptions {
            backoff: Duration::from_millis(100),
            ..CallOptions::default()
        };
        for attempt in 0..4u32 {
            let d = opts.backoff_delay(attempt, 99);
            let nominal = Duration::from_millis(100 * (1 << attempt));
            assert!(
                d >= nominal / 2,
                "attempt {attempt}: {d:?} < half of {nominal:?}"
            );
            assert!(d <= nominal, "attempt {attempt}: {d:?} > {nominal:?}");
        }
        // Deterministic: same (attempt, salt) always yields the same delay.
        assert_eq!(opts.backoff_delay(1, 7), opts.backoff_delay(1, 7));
        // Different salts de-synchronize concurrent retriers.
        assert_ne!(opts.backoff_delay(1, 7), opts.backoff_delay(1, 8));
    }

    #[test]
    fn backoff_exponent_saturates_instead_of_overflowing() {
        let opts = CallOptions {
            backoff: Duration::from_secs(10),
            ..CallOptions::default()
        };
        let _ = opts.backoff_delay(u32::MAX, 1); // must not panic
    }

    #[test]
    fn transport_wrapped_client_fails_fast_without_reconnect() {
        // No dial address: a retryable error must surface immediately even
        // with retries configured, rather than spinning on a dead transport.
        let t = Scripted::new(vec![]); // recv -> Disconnected
        let mut client = NinfClient::from_transport(Box::new(t));
        client
            .set_options(CallOptions {
                retries: 3,
                ..CallOptions::default()
            })
            .unwrap();
        let start = std::time::Instant::now();
        let err = client.ninf_call("ep", &[]).unwrap_err();
        assert!(matches!(err, ProtocolError::Disconnected));
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    /// dmmul arguments big enough to clear the cacheable threshold
    /// (8·16·16 = 2048 bytes per matrix).
    fn big_dmmul_args(n: usize) -> Vec<Value> {
        vec![
            Value::Int(n as i32),
            Value::DoubleArray(vec![1.0; n * n]),
            Value::DoubleArray(vec![2.0; n * n]),
        ]
    }

    fn dmmul_reply(n: usize) -> Message {
        Message::ResultData {
            results: vec![Value::DoubleArray(vec![5.0; n * n])],
        }
    }

    /// A scripted transport that shares its sent-message log.
    struct SharedScripted {
        replies: std::vec::IntoIter<Message>,
        sent: std::sync::Arc<std::sync::Mutex<Vec<Message>>>,
    }

    impl Transport for SharedScripted {
        fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
            self.sent.lock().unwrap().push(msg.clone());
            Ok(())
        }
        fn recv(&mut self) -> ProtocolResult<Message> {
            self.replies.next().ok_or(ProtocolError::Disconnected)
        }
    }

    fn shared_scripted(
        replies: Vec<Message>,
    ) -> (
        SharedScripted,
        std::sync::Arc<std::sync::Mutex<Vec<Message>>>,
    ) {
        let sent = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        (
            SharedScripted {
                replies: replies.into_iter(),
                sent: sent.clone(),
            },
            sent,
        )
    }

    fn invoke_args(msg: &Message) -> &[Arg] {
        match msg {
            Message::Invoke { args, .. } => args,
            other => panic!("expected Invoke, got {other:?}"),
        }
    }

    #[test]
    fn warm_repeat_ships_refs_instead_of_payload() {
        let key = "argcache-unit-warm";
        crate::argmem::forget_destination(key);
        let n = 16usize;
        let (t, sent) = shared_scripted(vec![
            Message::InterfaceReply {
                interface: dmmul_iface(),
            },
            dmmul_reply(n),
            dmmul_reply(n),
        ]);
        let mut client = NinfClient::from_transport(Box::new(t));
        client.set_cache_key(Some(key.to_owned()));
        let args = big_dmmul_args(n);

        client.ninf_call("dmmul", &args).unwrap();
        let cold = client.last_timing().unwrap();
        assert_eq!(cold.args_refd, 0);
        assert_eq!(cold.request_bytes, 2 * 8 * n * n);

        client.ninf_call("dmmul", &args).unwrap();
        let warm = client.last_timing().unwrap();
        assert_eq!(warm.args_refd, 2);
        assert_eq!(warm.args_refilled, 0);
        assert_eq!(warm.request_bytes, 0, "both matrices refd: zero payload");
        assert_eq!(client.bytes_sent(), 2 * 8 * n * n);

        let log = sent.lock().unwrap();
        let warm_args = invoke_args(&log[2]);
        assert!(matches!(warm_args[0], Arg::Data(Value::Int(_))));
        assert!(matches!(warm_args[1], Arg::Ref(_)));
        assert!(matches!(warm_args[2], Arg::Ref(_)));
    }

    #[test]
    fn need_arg_reply_triggers_one_inline_refill() {
        let key = "argcache-unit-refill";
        crate::argmem::forget_destination(key);
        let n = 16usize;
        let args = big_dmmul_args(n);
        let d1 = ninf_protocol::digest_value(&args[1]);
        let d2 = ninf_protocol::digest_value(&args[2]);
        crate::argmem::remember(key, d1);
        crate::argmem::remember(key, d2);
        let (t, sent) = shared_scripted(vec![
            Message::InterfaceReply {
                interface: dmmul_iface(),
            },
            // Server evicted d2 between the client's ref decision and the
            // invoke: it asks for a refill without executing.
            Message::NeedArg { digests: vec![d2] },
            dmmul_reply(n),
        ]);
        let mut client = NinfClient::from_transport(Box::new(t));
        client.set_cache_key(Some(key.to_owned()));
        client.ninf_call("dmmul", &args).unwrap();

        let timing = client.last_timing().unwrap();
        assert_eq!(timing.attempts, 1, "a refill is not a retry");
        assert_eq!(timing.args_refd, 2);
        assert_eq!(timing.args_refilled, 1);
        // Refd request shipped nothing; the refill shipped the full payload.
        assert_eq!(timing.request_bytes, 2 * 8 * n * n);

        let log = sent.lock().unwrap();
        let first = invoke_args(&log[1]);
        assert!(matches!(first[1], Arg::Ref(_)));
        let refill = invoke_args(&log[2]);
        assert!(refill.iter().all(|a| matches!(a, Arg::Data(_))));
        drop(log);
        // The refill re-primed the destination: both digests are known again.
        assert!(crate::argmem::knows(key, &d1));
        assert!(crate::argmem::knows(key, &d2));
    }

    #[test]
    fn arg_cache_off_always_ships_inline() {
        let key = "argcache-unit-off";
        crate::argmem::forget_destination(key);
        let n = 16usize;
        let (t, sent) = shared_scripted(vec![
            Message::InterfaceReply {
                interface: dmmul_iface(),
            },
            dmmul_reply(n),
            dmmul_reply(n),
        ]);
        let mut client = NinfClient::from_transport(Box::new(t));
        client.set_cache_key(Some(key.to_owned()));
        client
            .set_options(CallOptions {
                arg_cache: false,
                ..CallOptions::default()
            })
            .unwrap();
        let args = big_dmmul_args(n);
        client.ninf_call("dmmul", &args).unwrap();
        client.ninf_call("dmmul", &args).unwrap();
        assert_eq!(client.last_timing().unwrap().args_refd, 0);
        assert_eq!(client.bytes_sent(), 2 * 2 * 8 * n * n);
        let log = sent.lock().unwrap();
        for msg in log.iter().skip(1) {
            assert!(invoke_args(msg).iter().all(|a| matches!(a, Arg::Data(_))));
        }
    }

    #[test]
    fn remote_errors_are_not_retryable() {
        assert!(!ProtocolError::Remote("singular".into()).is_retryable());
        assert!(ProtocolError::Disconnected.is_retryable());
        assert!(ProtocolError::Timeout {
            operation: "read",
            after: Duration::from_secs(1)
        }
        .is_retryable());
    }
}
