//! Ninf transactions: `Ninf_transaction_begin` / `Ninf_transaction_end`.
//!
//! "The block of code surrounded by Ninf_transaction_begin and
//! Ninf_transaction_end are not executed immediately; rather,
//! data-dependency graph of the Ninf_call arguments are dynamically created,
//! and at the end of the code block, the metaserver schedules the computation
//! to multiple computational servers accordingly" (paper §2.4).
//!
//! A [`Transaction`] records planned calls whose arguments may be literal
//! values or references to *slots* written by earlier calls. Dependencies:
//!
//! * read-after-write: a call reading a slot depends on its latest writer;
//! * write-after-write / write-after-read: rewriting a slot depends on the
//!   previous writer and all readers since.
//!
//! [`Transaction::dependency_levels`] layers the DAG; calls within one level
//! have no mutual dependencies and run task-parallel (how the EP benchmark of
//! §4.3.1 fans out across the 32-node Alpha cluster).

use ninf_protocol::Value;

/// A placeholder for a value produced by one call and consumed by another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub usize);

/// One argument of a planned call.
#[derive(Debug, Clone, PartialEq)]
pub enum TxArg {
    /// A literal value known at planning time.
    Value(Value),
    /// The content of a slot (must be written by an earlier call).
    Ref(SlotId),
}

/// One recorded `Ninf_call`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedCall {
    /// Routine name.
    pub routine: String,
    /// Input arguments (declaration order of the `mode_in`/`mode_inout`
    /// parameters).
    pub args: Vec<TxArg>,
    /// Slots receiving the call's outputs, in result order. `None` entries
    /// discard that output.
    pub outputs: Vec<Option<SlotId>>,
}

/// A recorded transaction.
#[derive(Debug, Default, Clone)]
pub struct Transaction {
    calls: Vec<PlannedCall>,
    n_slots: usize,
}

impl Transaction {
    /// `Ninf_transaction_begin`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh slot.
    pub fn slot(&mut self) -> SlotId {
        self.n_slots += 1;
        SlotId(self.n_slots - 1)
    }

    /// Record a call; returns its index.
    pub fn call(
        &mut self,
        routine: impl Into<String>,
        args: Vec<TxArg>,
        outputs: Vec<Option<SlotId>>,
    ) -> usize {
        self.calls.push(PlannedCall {
            routine: routine.into(),
            args,
            outputs,
        });
        self.calls.len() - 1
    }

    /// Recorded calls.
    pub fn calls(&self) -> &[PlannedCall] {
        &self.calls
    }

    /// Number of slots allocated.
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// Per-call dependency lists (indices of earlier calls this call must
    /// wait for), from slot dataflow.
    ///
    /// # Errors
    /// Returns the offending call index if it reads a slot no earlier call
    /// wrote.
    pub fn dependencies(&self) -> Result<Vec<Vec<usize>>, usize> {
        let mut writer: Vec<Option<usize>> = vec![None; self.n_slots];
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); self.n_slots];
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(self.calls.len());

        for (i, call) in self.calls.iter().enumerate() {
            let mut d: Vec<usize> = Vec::new();
            for arg in &call.args {
                if let TxArg::Ref(slot) = arg {
                    match writer.get(slot.0).copied().flatten() {
                        Some(w) => d.push(w),
                        None => return Err(i),
                    }
                }
            }
            for out in call.outputs.iter().flatten() {
                // WAW: depend on the previous writer; WAR: on all readers.
                if let Some(w) = writer[out.0] {
                    d.push(w);
                }
                d.extend(readers[out.0].iter().copied());
            }
            // Register this call's reads/writes.
            for arg in &call.args {
                if let TxArg::Ref(slot) = arg {
                    readers[slot.0].push(i);
                }
            }
            for out in call.outputs.iter().flatten() {
                writer[out.0] = Some(i);
                readers[out.0].clear();
            }
            d.sort_unstable();
            d.dedup();
            deps.push(d);
        }
        Ok(deps)
    }

    /// Layer the DAG into parallel batches: level k contains calls all of
    /// whose dependencies are in levels < k.
    pub fn dependency_levels(&self) -> Result<Vec<Vec<usize>>, usize> {
        let deps = self.dependencies()?;
        let mut level = vec![0usize; deps.len()];
        for i in 0..deps.len() {
            // deps[i] only contains indices < i, so one forward pass layers
            // the whole DAG.
            level[i] = deps[i].iter().map(|&d| level[d] + 1).max().unwrap_or(0);
        }
        let max_level = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut out = vec![Vec::new(); max_level];
        for (i, &l) in level.iter().enumerate() {
            out[l].push(i);
        }
        Ok(out)
    }
}

/// Execute a transaction *sequentially* against one connected client — the
/// no-metaserver fallback (a single server executes the DAG in topological
/// order; parallel fan-out needs `ninf_metaserver::Metaserver`).
pub fn execute_locally(
    client: &mut crate::client::NinfClient,
    tx: &Transaction,
) -> Result<Vec<Option<Value>>, crate::client::LocalTxError> {
    use crate::client::LocalTxError;
    let levels = tx
        .dependency_levels()
        .map_err(LocalTxError::UnwrittenSlot)?;
    let mut slots: Vec<Option<Value>> = vec![None; tx.slot_count()];
    for level in levels {
        for call_idx in level {
            let call = &tx.calls()[call_idx];
            let args: Vec<Value> = call
                .args
                .iter()
                .map(|a| match a {
                    TxArg::Value(v) => Ok(v.clone()),
                    TxArg::Ref(slot) => slots[slot.0]
                        .clone()
                        .ok_or(LocalTxError::UnwrittenSlot(call_idx)),
                })
                .collect::<Result<_, _>>()?;
            let results =
                client
                    .ninf_call(&call.routine, &args)
                    .map_err(|e| LocalTxError::Call {
                        call: call_idx,
                        error: e,
                    })?;
            for (out, value) in call.outputs.iter().zip(results) {
                if let Some(slot) = out {
                    slots[slot.0] = Some(value);
                }
            }
        }
    }
    Ok(slots)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> TxArg {
        TxArg::Value(Value::Int(v))
    }

    /// The paper's task-parallel EP loop: independent calls form one level.
    #[test]
    fn independent_calls_are_one_level() {
        let mut tx = Transaction::new();
        for _ in 0..8 {
            let out = tx.slot();
            tx.call("ep", vec![lit(24)], vec![Some(out)]);
        }
        let levels = tx.dependency_levels().unwrap();
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].len(), 8);
    }

    /// dgefa → dgesl chains: the solve depends on the factorization.
    #[test]
    fn read_after_write_chains() {
        let mut tx = Transaction::new();
        let lu = tx.slot();
        let piv = tx.slot();
        let fact = tx.call("dgefa", vec![lit(4)], vec![Some(lu), Some(piv), None]);
        let x = tx.slot();
        let solve = tx.call(
            "dgesl",
            vec![lit(4), TxArg::Ref(lu), TxArg::Ref(piv)],
            vec![Some(x)],
        );
        let deps = tx.dependencies().unwrap();
        assert!(deps[fact].is_empty());
        assert_eq!(deps[solve], vec![fact]);
        let levels = tx.dependency_levels().unwrap();
        assert_eq!(levels, vec![vec![fact], vec![solve]]);
    }

    #[test]
    fn diamond_dependencies() {
        let mut tx = Transaction::new();
        let a = tx.slot();
        let c0 = tx.call("f", vec![lit(1)], vec![Some(a)]);
        let b = tx.slot();
        let c = tx.slot();
        let c1 = tx.call("g", vec![TxArg::Ref(a)], vec![Some(b)]);
        let c2 = tx.call("g", vec![TxArg::Ref(a)], vec![Some(c)]);
        let d = tx.slot();
        let c3 = tx.call("h", vec![TxArg::Ref(b), TxArg::Ref(c)], vec![Some(d)]);
        let levels = tx.dependency_levels().unwrap();
        assert_eq!(levels, vec![vec![c0], vec![c1, c2], vec![c3]]);
    }

    #[test]
    fn write_after_write_orders() {
        let mut tx = Transaction::new();
        let s = tx.slot();
        let first = tx.call("f", vec![lit(1)], vec![Some(s)]);
        let second = tx.call("f", vec![lit(2)], vec![Some(s)]);
        let deps = tx.dependencies().unwrap();
        assert_eq!(deps[second], vec![first]);
    }

    #[test]
    fn write_after_read_orders() {
        let mut tx = Transaction::new();
        let s = tx.slot();
        let w = tx.call("f", vec![lit(1)], vec![Some(s)]);
        let r = tx.call("g", vec![TxArg::Ref(s)], vec![None]);
        let rw = tx.call("f", vec![lit(2)], vec![Some(s)]);
        let deps = tx.dependencies().unwrap();
        assert_eq!(deps[r], vec![w]);
        // The rewrite must wait for the reader (and transitively the writer).
        assert!(deps[rw].contains(&r));
    }

    #[test]
    fn reading_unwritten_slot_is_error() {
        let mut tx = Transaction::new();
        let s = tx.slot();
        let bad = tx.call("g", vec![TxArg::Ref(s)], vec![None]);
        assert_eq!(tx.dependencies(), Err(bad));
        assert_eq!(tx.dependency_levels(), Err(bad));
    }

    #[test]
    fn empty_transaction_has_no_levels() {
        let tx = Transaction::new();
        assert_eq!(tx.dependency_levels().unwrap(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn discarded_outputs_do_not_create_slots_deps() {
        let mut tx = Transaction::new();
        let a = tx.call("ep", vec![lit(20)], vec![None, None]);
        let b = tx.call("ep", vec![lit(20)], vec![None, None]);
        let deps = tx.dependencies().unwrap();
        assert!(deps[a].is_empty());
        assert!(deps[b].is_empty());
    }
}
