//! Per-destination memory of argument digests already shipped inline.
//!
//! The client half of the argument cache: once a cacheable value has been
//! sent inline to a destination, later calls to the same destination name
//! it by [`Digest`] ([`ninf_protocol::Arg::Ref`]) instead of re-shipping
//! the bytes. The memory is optimistic — the server may have evicted the
//! entry — so a [`ninf_protocol::Message::NeedArg`] reply forgets the named
//! digests and the call refills inline.
//!
//! Keys are dial addresses (one server cache per address; a metaserver
//! counts as one destination because it routes refs without translating
//! them). The memory is process-global so transient per-call clients — the
//! pooled path and the metaserver fan-out both construct one `NinfClient`
//! per attempt — still accumulate digest knowledge across calls.

use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

use ninf_obs::{process_metrics, Counter};
use ninf_protocol::Digest;

fn memory() -> &'static Mutex<HashMap<String, HashSet<Digest>>> {
    static MEMORY: OnceLock<Mutex<HashMap<String, HashSet<Digest>>>> = OnceLock::new();
    MEMORY.get_or_init(Mutex::default)
}

/// Counter of argument positions shipped as refs instead of payload.
pub fn argref_sent() -> Counter {
    process_metrics().counter(
        "ninf_client_argref_sent_total",
        "argument positions shipped as content refs instead of payload",
    )
}

/// Counter of arguments re-shipped inline after a server-side cache miss.
pub fn argref_refilled() -> Counter {
    process_metrics().counter(
        "ninf_client_argref_refilled_total",
        "arguments re-shipped inline after a NeedArg cache miss",
    )
}

/// Whether `digest` is believed resident at `key`.
pub(crate) fn knows(key: &str, digest: &Digest) -> bool {
    memory()
        .lock()
        .unwrap()
        .get(key)
        .is_some_and(|set| set.contains(digest))
}

/// Record that `digest` was shipped inline to `key`.
pub(crate) fn remember(key: &str, digest: Digest) {
    memory()
        .lock()
        .unwrap()
        .entry(key.to_owned())
        .or_default()
        .insert(digest);
}

/// Drop digests the destination reported missing.
pub(crate) fn forget(key: &str, digests: &[Digest]) {
    let mut mem = memory().lock().unwrap();
    if let Some(set) = mem.get_mut(key) {
        for d in digests {
            set.remove(d);
        }
    }
}

/// Drop everything remembered about `key` (tests and address reuse).
pub fn forget_destination(key: &str) {
    memory().lock().unwrap().remove(key);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remember_then_forget_roundtrips() {
        let key = "argmem-test-127.0.0.1:1";
        let d = Digest { hi: 1, lo: 2 };
        assert!(!knows(key, &d));
        remember(key, d);
        assert!(knows(key, &d));
        forget(key, &[d]);
        assert!(!knows(key, &d));
    }

    #[test]
    fn destinations_are_independent() {
        let a = "argmem-test-127.0.0.1:2";
        let b = "argmem-test-127.0.0.1:3";
        let d = Digest { hi: 9, lo: 9 };
        remember(a, d);
        assert!(knows(a, &d));
        assert!(!knows(b, &d));
        forget_destination(a);
        assert!(!knows(a, &d));
    }
}
