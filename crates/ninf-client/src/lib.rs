//! The Ninf client API.
//!
//! "Ninf_call is a representative API used for invoking a named remote
//! library on the server as if it were on a local machine via Ninf RPC"
//! (paper §2.2). The Rust rendering:
//!
//! ```no_run
//! use ninf_client::NinfClient;
//! use ninf_protocol::Value;
//!
//! let mut client = NinfClient::connect("127.0.0.1:5656")?;
//! let n = 4usize;
//! let results = client.ninf_call(
//!     "dmmul",
//!     &[
//!         Value::Int(n as i32),
//!         Value::DoubleArray(vec![1.0; n * n]), // A
//!         Value::DoubleArray(vec![2.0; n * n]), // B
//!     ],
//! )?;
//! let c = &results[0]; // C = A × B
//! # let _ = c;
//! # Ok::<(), ninf_protocol::ProtocolError>(())
//! ```
//!
//! There is no client-side stub, header, or IDL file: the first stage of the
//! call fetches the compiled interface from the server and interprets it to
//! size and marshal every argument (§2.3). Also provided:
//!
//! * [`call_async`] — `Ninf_call_async`: fire a call on its own connection
//!   and join it later;
//! * [`transaction`] — `Ninf_transaction_begin/end`: record a block of calls,
//!   derive the data-dependency DAG, and hand it to a scheduler (the
//!   metaserver executes independent calls task-parallel, §2.4 / §4.3.1).

pub mod argmem;
pub mod bulk;
pub mod client;
pub mod transaction;

pub use bulk::{parallel_put, UploadReport, DEFAULT_LANE_DEADLINE, MAX_CHUNK_ATTEMPTS};
pub use client::{
    call_async, call_async_pooled, call_async_traced, call_async_with, call_pooled_traced,
    call_two_phase, call_with_options, call_with_options_traced, ninf_call_url, parse_ninf_url,
    AsyncCall, CallOptions, CallTiming, LocalTxError, NinfClient,
};
pub use transaction::{execute_locally, PlannedCall, SlotId, Transaction, TxArg};
