//! Parallel-stream chunked bulk transfer — the client half of the
//! GridFTP-style WAN path.
//!
//! A large argument's XDR image is split into CRC-tagged chunks
//! ([`ninf_protocol::chunk`]) and fanned out over `N` dedicated
//! multiplexed streams to the server, which reassembles and lands the
//! value in its argument store; the call itself then names the value by
//! content ref. On a long-fat link, `N` concurrent stop-and-wait lanes
//! pipeline through each other's propagation gaps, so goodput rises with
//! `N` until the link saturates — the parallel-TCP shape WAN data movers
//! exploit.
//!
//! Lane `w` owns chunks `w, w+N, w+2N, …`: ownership is static, so a
//! failed lane fails *only its own chunks* and the upload as a whole
//! (the caller falls back to shipping the value inline), never a
//! half-written image — the server's reassembly holds partial state
//! until every chunk lands and the digest verifies.
//!
//! Loss recovery is per chunk: a lane whose ack does not arrive within
//! the deadline retransmits the same chunk (bounded by
//! [`MAX_CHUNK_ATTEMPTS`]); the server re-acks duplicates idempotently,
//! so a lost ack is indistinguishable from a lost chunk and both heal
//! the same way. A dead connection is redialed once per lane.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use ninf_protocol::{
    link_for, split_chunks, Digest, LinkShape, Message, ProtocolError, ProtocolResult,
    ShapedTransport, Transport,
};
use ninf_reactor::MuxStream;

/// Send-plus-ack attempts per chunk before a lane gives up.
pub const MAX_CHUNK_ATTEMPTS: u32 = 4;

/// Per-operation deadline a bulk lane uses when the caller set none —
/// without one, a lost chunk on a lossy link would hang the lane forever
/// instead of triggering a retransmit.
pub const DEFAULT_LANE_DEADLINE: Duration = Duration::from_secs(2);

/// What one parallel upload did, for timing/throughput accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UploadReport {
    /// Chunks the image split into.
    pub chunks: u32,
    /// Lanes actually used (≤ requested: never more than one per chunk).
    pub streams: u32,
    /// Image bytes shipped (chunk payloads, excluding retransmits).
    pub bytes: u64,
    /// Chunk retransmits after a lost chunk or ack.
    pub retransmits: u32,
    /// Lanes that tore down a dead connection and redialed.
    pub redials: u32,
}

/// One lane's connection: the mux stream must outlive its handle (dropping
/// a [`MuxStream`] shuts the socket down), and the handle may be wrapped
/// in client-side WAN shaping.
struct Lane {
    _stream: MuxStream,
    transport: Box<dyn Transport>,
}

/// Dial one bulk lane. Shaped lanes contend for the destination's shared
/// link with deterministic, decorrelated per-lane loss schedules
/// (lane id 0 is reserved for the call connection itself).
fn dial_lane(
    addr: &str,
    deadline: Duration,
    wan: Option<LinkShape>,
    lane_id: u32,
) -> ProtocolResult<Lane> {
    let stream = MuxStream::connect(addr, Some(deadline), 1)?;
    let mut handle = stream.handle();
    handle.set_deadline(Some(deadline))?;
    let transport: Box<dyn Transport> = match wan {
        Some(shape) => Box::new(ShapedTransport::new(handle, link_for(addr, shape), lane_id)),
        None => Box::new(handle),
    };
    Ok(Lane {
        _stream: stream,
        transport,
    })
}

/// Counters the lanes share while an upload is in flight.
#[derive(Default)]
struct LaneCounters {
    retransmits: AtomicU32,
    redials: AtomicU32,
}

/// Run one lane: ship every chunk it owns, stop-and-wait, with bounded
/// retransmission and one redial.
#[allow(clippy::too_many_arguments)]
fn run_lane(
    addr: &str,
    chunks: &[Message],
    lane: u32,
    streams: u32,
    deadline: Duration,
    wan: Option<LinkShape>,
    counters: &LaneCounters,
) -> ProtocolResult<()> {
    let mut conn = dial_lane(addr, deadline, wan, lane + 1)?;
    let mut redialed = false;
    let mut idx = lane as usize;
    while idx < chunks.len() {
        let msg = &chunks[idx];
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let outcome = conn
                .transport
                .send(msg)
                .and_then(|()| conn.transport.recv());
            match outcome {
                Ok(Message::ChunkOk { seq, .. }) if seq == idx as u32 => break,
                Ok(Message::Error { reason }) => return Err(ProtocolError::Remote(reason)),
                Ok(other) => {
                    return Err(ProtocolError::UnexpectedMessage {
                        expected: "ChunkOk",
                        got: other.kind().to_owned(),
                    })
                }
                Err(ProtocolError::Timeout { .. }) if attempts < MAX_CHUNK_ATTEMPTS => {
                    // Chunk or ack lost in flight: same frame, same lane.
                    counters.retransmits.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.is_retryable() && !redialed => {
                    // The connection died mid-fan-out; one fresh dial, then
                    // resume from the chunk in hand. The server re-acks
                    // anything the dead lane already landed.
                    redialed = true;
                    counters.redials.fetch_add(1, Ordering::Relaxed);
                    conn = dial_lane(addr, deadline, wan, lane + 1)?;
                }
                Err(e) => return Err(e),
            }
        }
        idx += streams as usize;
    }
    Ok(())
}

/// Ship one value image to `addr` as chunks fanned out over `streams`
/// parallel lanes, blocking until the server has reassembled, verified,
/// and stored it under `digest` — or until any lane exhausts its
/// retries, which fails the whole upload (the caller then ships the
/// value inline; nothing partial ever escapes).
pub fn parallel_put(
    addr: &str,
    digest: Digest,
    image: &[u8],
    streams: u32,
    chunk_bytes: u32,
    deadline: Option<Duration>,
    wan: Option<LinkShape>,
) -> ProtocolResult<UploadReport> {
    let chunks = split_chunks(digest, image, chunk_bytes.max(1));
    let total = chunks.len() as u32;
    let streams = streams.clamp(1, total);
    let deadline = deadline.unwrap_or(DEFAULT_LANE_DEADLINE);
    let counters = LaneCounters::default();
    let outcome: ProtocolResult<()> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..streams)
            .map(|w| {
                let chunks = &chunks;
                let counters = &counters;
                s.spawn(move || run_lane(addr, chunks, w, streams, deadline, wan, counters))
            })
            .collect();
        let mut first_err = None;
        for w in workers {
            let lane_result = w
                .join()
                .unwrap_or_else(|_| Err(ProtocolError::Remote("bulk lane panicked".into())));
            if let Err(e) = lane_result {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    });
    outcome.map(|()| UploadReport {
        chunks: total,
        streams,
        bytes: image.len() as u64,
        retransmits: counters.retransmits.load(Ordering::Relaxed),
        redials: counters.redials.load(Ordering::Relaxed),
    })
}
