//! Property-based roundtrip tests for the XDR codec.

use ninf_xdr::{opaque_wire_len, XdrDecoder, XdrEncoder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn u32_roundtrip(v in any::<u32>()) {
        let mut enc = XdrEncoder::new();
        enc.put_u32(v);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_u32().unwrap(), v);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn i64_roundtrip(v in any::<i64>()) {
        let mut enc = XdrEncoder::new();
        enc.put_i64(v);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_i64().unwrap(), v);
    }

    #[test]
    fn f64_bitwise_roundtrip(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let mut enc = XdrEncoder::new();
        enc.put_f64(v);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_f64().unwrap().to_bits(), bits);
    }

    #[test]
    fn opaque_roundtrip_and_wire_len(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&data);
        let wire = enc.finish();
        prop_assert_eq!(wire.len(), opaque_wire_len(data.len()));
        prop_assert_eq!(wire.len() % 4, 0);
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_opaque().unwrap(), &data[..]);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn string_roundtrip(s in "\\PC{0,64}") {
        let mut enc = XdrEncoder::new();
        enc.put_string(&s);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_string().unwrap(), s);
    }

    #[test]
    fn f64_array_roundtrip(data in proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..256)) {
        let mut enc = XdrEncoder::new();
        enc.put_f64_array(&data);
        let wire = enc.finish();
        prop_assert_eq!(wire.len(), 4 + 8 * data.len());
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_f64_array().unwrap(), data);
    }

    #[test]
    fn i32_array_roundtrip(data in proptest::collection::vec(any::<i32>(), 0..256)) {
        let mut enc = XdrEncoder::new();
        enc.put_i32_array(&data);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_i32_array().unwrap(), data);
    }

    #[test]
    fn f32_array_roundtrip(data in proptest::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 0..256)) {
        let mut enc = XdrEncoder::new();
        enc.put_f32_array(&data);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_f32_array().unwrap(), data);
    }

    /// Decoding arbitrary garbage must never panic — it either yields a value
    /// or a structured error.
    #[test]
    fn decode_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut dec = XdrDecoder::new(&data);
        let _ = dec.get_u32();
        let mut dec = XdrDecoder::new(&data);
        let _ = dec.get_string();
        let mut dec = XdrDecoder::new(&data);
        let _ = dec.get_f64_array();
        let mut dec = XdrDecoder::new(&data);
        let _ = dec.get_opaque();
        let mut dec = XdrDecoder::new(&data);
        let _ = dec.get_bool();
    }

    /// A heterogeneous message roundtrips field-by-field in order.
    #[test]
    fn mixed_message_roundtrip(
        tag in any::<u32>(),
        name in "[a-z]{1,16}",
        n in 0usize..64,
        flag in any::<bool>(),
    ) {
        let matrix: Vec<f64> = (0..n * n).map(|i| i as f64 * 0.5).collect();
        let mut enc = XdrEncoder::new();
        enc.put_u32(tag);
        enc.put_string(&name);
        enc.put_bool(flag);
        enc.put_f64_array(&matrix);
        let wire = enc.finish();

        let mut dec = XdrDecoder::new(&wire);
        prop_assert_eq!(dec.get_u32().unwrap(), tag);
        prop_assert_eq!(dec.get_string().unwrap(), name);
        prop_assert_eq!(dec.get_bool().unwrap(), flag);
        prop_assert_eq!(dec.get_f64_array().unwrap(), matrix);
        prop_assert!(dec.is_empty());
    }
}
