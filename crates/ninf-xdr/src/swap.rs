//! Bulk big-endian conversion kernels for the array fast paths.
//!
//! XDR arrays of 64-bit items (doubles, hypers) are a straight byte swap
//! per word on little-endian hosts and a copy on big-endian ones. The
//! scalar path below compiles to word-at-a-time `bswap`; on x86-64 an
//! AVX2 path (runtime-detected, same pattern as the CRC-32C hardware
//! path) swaps 32 bytes per `vpshufb`, which is what keeps the matrix
//! codec at memory bandwidth instead of ~9 GiB/s.

/// Convert `len` bytes (a whole number of 64-bit words) between native
/// and big-endian order, reading from `src` and writing to `dst`.
///
/// The transform is its own inverse, so the same kernel serves encode
/// (native floats → wire) and decode (wire → native floats). Both
/// pointers may be unaligned; the regions must not overlap.
///
/// # Safety
///
/// `src` must be valid for `len` bytes of reads, `dst` for `len` bytes
/// of writes, `len` must be a multiple of 8, and the regions must not
/// overlap. `dst` may be uninitialized memory (e.g. a `Vec`'s spare
/// capacity); every byte of it is written.
pub(crate) unsafe fn be_words64(src: *const u8, dst: *mut u8, len: usize) {
    debug_assert_eq!(len % 8, 0, "be_words64 operates on whole 64-bit words");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 was detected at runtime; pointer contract is
            // the caller's.
            unsafe { be_words64_avx2(src, dst, len) };
            return;
        }
    }
    // SAFETY: pointer contract is the caller's.
    unsafe { be_words64_scalar(src, dst, len) };
}

/// Portable word-at-a-time kernel: unaligned 64-bit load, `to_be`
/// (a `bswap` on little-endian hosts, a no-op on big-endian ones),
/// unaligned store.
unsafe fn be_words64_scalar(src: *const u8, dst: *mut u8, len: usize) {
    for off in (0..len).step_by(8) {
        // SAFETY: off + 8 <= len and both regions are valid for len bytes.
        unsafe {
            let v = src.add(off).cast::<u64>().read_unaligned();
            dst.add(off).cast::<u64>().write_unaligned(v.to_be());
        }
    }
}

/// AVX2 kernel: one `vpshufb` reverses the bytes of four 64-bit words
/// per 32-byte vector.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn be_words64_avx2(src: *const u8, dst: *mut u8, len: usize) {
    use std::arch::x86_64::{
        __m256i, _mm256_loadu_si256, _mm256_setr_epi8, _mm256_shuffle_epi8, _mm256_storeu_si256,
    };
    // `vpshufb` permutes within each 128-bit lane, so the mask reverses
    // bytes 0..8 and 8..16 of each lane independently — exactly two
    // u64 byte swaps per lane.
    let mask = _mm256_setr_epi8(
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8, //
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
    );
    let mut off = 0;
    while off + 32 <= len {
        // SAFETY: off + 32 <= len; loads/stores are the unaligned variants.
        unsafe {
            let v = _mm256_loadu_si256(src.add(off).cast::<__m256i>());
            _mm256_storeu_si256(dst.add(off).cast::<__m256i>(), _mm256_shuffle_epi8(v, mask));
        }
        off += 32;
    }
    while off < len {
        // SAFETY: off + 8 <= len (len is a multiple of 8).
        unsafe {
            let v = src.add(off).cast::<u64>().read_unaligned();
            dst.add(off).cast::<u64>().write_unaligned(v.to_be());
        }
        off += 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swap_vec(src: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; src.len()];
        // SAFETY: equal-length non-overlapping buffers, len checked by caller.
        unsafe { be_words64(src.as_ptr(), out.as_mut_ptr(), src.len()) };
        out
    }

    #[test]
    fn swaps_each_word_independently() {
        let src: Vec<u8> = (0u8..48).collect();
        let out = swap_vec(&src);
        for (w_in, w_out) in src.chunks_exact(8).zip(out.chunks_exact(8)) {
            let expect: Vec<u8> = if cfg!(target_endian = "little") {
                w_in.iter().rev().copied().collect()
            } else {
                w_in.to_vec()
            };
            assert_eq!(w_out, expect.as_slice());
        }
    }

    #[test]
    fn involutive() {
        let src: Vec<u8> = (0..256).map(|i| (i * 37 % 251) as u8).collect();
        assert_eq!(swap_vec(&swap_vec(&src)), src);
    }

    #[test]
    fn scalar_and_dispatch_agree_on_all_tail_lengths() {
        // Exercise every vector/tail split the AVX2 path can see.
        for words in 0..16usize {
            let src: Vec<u8> = (0..words * 8).map(|i| (i * 131 % 255) as u8).collect();
            let mut scalar = vec![0u8; src.len()];
            // SAFETY: equal-length non-overlapping buffers.
            unsafe { be_words64_scalar(src.as_ptr(), scalar.as_mut_ptr(), src.len()) };
            assert_eq!(swap_vec(&src), scalar, "words = {words}");
        }
    }

    #[test]
    fn matches_to_be_bytes() {
        let vals = [1.5f64, -2.25, f64::MIN_POSITIVE, 1e300];
        let raw: Vec<u8> = vals
            .iter()
            .flat_map(|v| v.to_bits().to_ne_bytes())
            .collect();
        let out = swap_vec(&raw);
        let expect: Vec<u8> = vals.iter().flat_map(|v| v.to_be_bytes()).collect();
        assert_eq!(out, expect);
    }
}
