//! XDR decoding: strict big-endian reader over a borrowed byte slice.

use crate::error::{XdrError, XdrResult};
use crate::pad_len;

/// Strict XDR decoder over a borrowed buffer.
///
/// The decoder never copies payload bytes until a typed `get_*` call asks for
/// them, and validates alignment, padding, and length prefixes as it goes.
#[derive(Debug, Clone)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Create a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    #[inline]
    fn take(&mut self, n: usize) -> XdrResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(XdrError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    #[inline]
    fn skip_padding(&mut self, data_len: usize) -> XdrResult<()> {
        let pad = self.take(pad_len(data_len))?;
        if pad.iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(())
    }

    /// Read an unsigned 32-bit integer.
    #[inline]
    pub fn get_u32(&mut self) -> XdrResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a signed 32-bit integer.
    #[inline]
    pub fn get_i32(&mut self) -> XdrResult<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Read an unsigned 64-bit integer.
    #[inline]
    pub fn get_u64(&mut self) -> XdrResult<u64> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    /// Read a signed 64-bit integer.
    #[inline]
    pub fn get_i64(&mut self) -> XdrResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a single-precision float.
    #[inline]
    pub fn get_f32(&mut self) -> XdrResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read a double-precision float.
    #[inline]
    pub fn get_f64(&mut self) -> XdrResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a boolean (must be word 0 or 1).
    #[inline]
    pub fn get_bool(&mut self) -> XdrResult<bool> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::InvalidBool(v)),
        }
    }

    /// Read `len` bytes of fixed-length opaque data, consuming padding.
    pub fn get_opaque_fixed(&mut self, len: usize) -> XdrResult<&'a [u8]> {
        let data = self.take(len)?;
        self.skip_padding(len)?;
        Ok(data)
    }

    /// Read variable-length opaque data (length word, data, padding).
    pub fn get_opaque(&mut self) -> XdrResult<&'a [u8]> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(XdrError::LengthOverflow {
                requested: len,
                remaining: self.remaining(),
            });
        }
        self.get_opaque_fixed(len)
    }

    /// Read a counted UTF-8 string.
    pub fn get_string(&mut self) -> XdrResult<String> {
        let bytes = self.get_opaque()?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| XdrError::InvalidUtf8)
    }

    /// Read a variable-length array of doubles.
    pub fn get_f64_array(&mut self) -> XdrResult<Vec<f64>> {
        let n = self.get_u32()? as usize;
        if n.checked_mul(8)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(XdrError::LengthOverflow {
                requested: n,
                remaining: self.remaining(),
            });
        }
        self.get_f64_slice(n)
    }

    /// Read `n` doubles back-to-back (fixed array, no length word).
    ///
    /// The byte swap runs through the bulk kernel straight from the wire
    /// slice into the result `Vec`'s spare capacity, so elements land in
    /// their final buffer with no per-element bounds checks and no
    /// intermediate copy.
    pub fn get_f64_slice(&mut self, n: usize) -> XdrResult<Vec<f64>> {
        let bytes = self.take(n.checked_mul(8).ok_or(XdrError::LengthOverflow {
            requested: n,
            remaining: self.remaining(),
        })?)?;
        let mut out = Vec::<f64>::with_capacity(n);
        // SAFETY: `bytes` holds exactly n * 8 readable bytes, `out` owns
        // n * 8 writable bytes of spare capacity (fully written by the
        // kernel), and the buffers are disjoint.
        unsafe {
            crate::swap::be_words64(bytes.as_ptr(), out.as_mut_ptr().cast(), n * 8);
            out.set_len(n);
        }
        Ok(out)
    }

    /// Read a variable-length array of 32-bit signed integers.
    pub fn get_i32_array(&mut self) -> XdrResult<Vec<i32>> {
        let n = self.get_u32()? as usize;
        if n.checked_mul(4)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(XdrError::LengthOverflow {
                requested: n,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(n * 4)?;
        let mut out = Vec::with_capacity(n);
        out.extend(bytes.chunks_exact(4).map(|c| {
            let mut arr = [0u8; 4];
            arr.copy_from_slice(c);
            i32::from_be_bytes(arr)
        }));
        Ok(out)
    }

    /// Read a variable-length array of 64-bit signed integers.
    pub fn get_i64_array(&mut self) -> XdrResult<Vec<i64>> {
        let n = self.get_u32()? as usize;
        if n.checked_mul(8)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(XdrError::LengthOverflow {
                requested: n,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(n * 8)?;
        let mut out = Vec::<i64>::with_capacity(n);
        // SAFETY: same contract as `get_f64_slice` — n * 8 readable bytes
        // in, n * 8 bytes of disjoint spare capacity out, fully written.
        unsafe {
            crate::swap::be_words64(bytes.as_ptr(), out.as_mut_ptr().cast(), n * 8);
            out.set_len(n);
        }
        Ok(out)
    }

    /// Read a variable-length array of single-precision floats.
    pub fn get_f32_array(&mut self) -> XdrResult<Vec<f32>> {
        let n = self.get_u32()? as usize;
        if n.checked_mul(4)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(XdrError::LengthOverflow {
                requested: n,
                remaining: self.remaining(),
            });
        }
        let bytes = self.take(n * 4)?;
        let mut out = Vec::with_capacity(n);
        out.extend(bytes.chunks_exact(4).map(|c| {
            let mut arr = [0u8; 4];
            arr.copy_from_slice(c);
            f32::from_be_bytes(arr)
        }));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XdrEncoder;

    #[test]
    fn roundtrip_all_primitives() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(7);
        enc.put_i32(-7);
        enc.put_u64(1 << 40);
        enc.put_i64(-(1 << 40));
        enc.put_f32(2.5);
        enc.put_f64(-1e300);
        enc.put_bool(true);
        let wire = enc.finish();

        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.get_u32().unwrap(), 7);
        assert_eq!(dec.get_i32().unwrap(), -7);
        assert_eq!(dec.get_u64().unwrap(), 1 << 40);
        assert_eq!(dec.get_i64().unwrap(), -(1 << 40));
        assert_eq!(dec.get_f32().unwrap(), 2.5);
        assert_eq!(dec.get_f64().unwrap(), -1e300);
        assert!(dec.get_bool().unwrap());
        assert!(dec.is_empty());
    }

    #[test]
    fn eof_detected() {
        let wire = [0u8, 0, 0];
        let mut dec = XdrDecoder::new(&wire);
        assert!(matches!(
            dec.get_u32(),
            Err(XdrError::UnexpectedEof {
                needed: 4,
                remaining: 3
            })
        ));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(2);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.get_bool(), Err(XdrError::InvalidBool(2)));
    }

    #[test]
    fn nonzero_padding_rejected() {
        // opaque of length 1 with a non-zero pad byte
        let wire = [0u8, 0, 0, 1, 0xaa, 1, 0, 0];
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.get_opaque(), Err(XdrError::NonZeroPadding));
    }

    #[test]
    fn hostile_opaque_length_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(1_000_000);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert!(matches!(
            dec.get_opaque(),
            Err(XdrError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn hostile_f64_array_length_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(u32::MAX);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert!(matches!(
            dec.get_f64_array(),
            Err(XdrError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&[0xff, 0xfe]);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.get_string(), Err(XdrError::InvalidUtf8));
    }

    #[test]
    fn nan_payload_preserved() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut enc = XdrEncoder::new();
        enc.put_f64(nan);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.get_f64().unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn fixed_opaque_roundtrip() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque_fixed(&[1, 2, 3, 4, 5]);
        let wire = enc.finish();
        assert_eq!(wire.len(), 8);
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.get_opaque_fixed(5).unwrap(), &[1, 2, 3, 4, 5]);
        assert!(dec.is_empty());
    }

    #[test]
    fn large_array_roundtrips_across_chunk_boundaries() {
        // Sizes straddling the encoder's byteswap chunk (256 elements).
        for n in [0usize, 1, 255, 256, 257, 1024, 1000] {
            let data: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 7.0).collect();
            let mut enc = XdrEncoder::new();
            enc.put_f64_array(&data);
            let wire = enc.finish();
            let mut dec = XdrDecoder::new(&wire);
            assert_eq!(dec.get_f64_array().unwrap(), data);
            assert!(dec.is_empty());
        }
    }

    #[test]
    fn i64_array_roundtrips_and_rejects_hostile_length() {
        let data: Vec<i64> = (0..300).map(|i| (i as i64 - 150) << 32).collect();
        let mut enc = XdrEncoder::new();
        enc.put_i64_array(&data);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.get_i64_array().unwrap(), data);
        assert!(dec.is_empty());

        let mut enc = XdrEncoder::new();
        enc.put_u32(u32::MAX);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert!(matches!(
            dec.get_i64_array(),
            Err(XdrError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn position_tracks_consumption() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(1);
        enc.put_u64(2);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(dec.position(), 0);
        dec.get_u32().unwrap();
        assert_eq!(dec.position(), 4);
        dec.get_u64().unwrap();
        assert_eq!(dec.position(), 12);
    }
}
