//! Error type for XDR decoding.

use std::fmt;

/// Errors produced while decoding XDR data.
///
/// Encoding is infallible (it only appends to a growable buffer), so only the
/// decoding path carries an error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The buffer ended before a complete item could be read.
    UnexpectedEof {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A length prefix claims more data than the buffer can possibly hold.
    LengthOverflow {
        /// Number of elements/bytes claimed.
        requested: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A boolean discriminant was neither 0 nor 1.
    InvalidBool(u32),
    /// Padding bytes were non-zero (RFC 1014 requires zero padding).
    NonZeroPadding,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant was out of range for the target type.
    InvalidEnum {
        /// The discriminant read off the wire.
        discriminant: u32,
        /// Human-readable name of the enum being decoded.
        type_name: &'static str,
    },
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of XDR data: needed {needed} bytes, {remaining} remain"
                )
            }
            XdrError::LengthOverflow {
                requested,
                remaining,
            } => {
                write!(
                    f,
                    "XDR length prefix {requested} exceeds remaining buffer ({remaining} bytes)"
                )
            }
            XdrError::InvalidBool(v) => write!(f, "invalid XDR boolean discriminant {v}"),
            XdrError::NonZeroPadding => write!(f, "non-zero XDR padding bytes"),
            XdrError::InvalidUtf8 => write!(f, "XDR string is not valid UTF-8"),
            XdrError::InvalidEnum {
                discriminant,
                type_name,
            } => {
                write!(
                    f,
                    "invalid discriminant {discriminant} for enum {type_name}"
                )
            }
        }
    }
}

impl std::error::Error for XdrError {}

/// Convenience alias for decode results.
pub type XdrResult<T> = Result<T, XdrError>;
