//! XDR encoding: append-only big-endian writer with 4-byte alignment.

use bytes::{BufMut, Bytes, BytesMut};

use crate::pad_len;
use crate::swap::be_words64;

/// Elements converted per stack-buffer flush in the array fast paths.
///
/// 256 × 8 B = 2 KiB: comfortably inside L1 and small enough to live on the
/// stack of deeply nested encode calls.
const SWAP_CHUNK: usize = 256;

/// Append-only XDR encoder.
///
/// All `put_*` methods keep the buffer 4-byte aligned; [`XdrEncoder::finish`]
/// returns the completed wire image.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: BytesMut,
}

impl XdrEncoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::new(),
        }
    }

    /// Create an encoder with `cap` bytes preallocated.
    ///
    /// Ninf calls ship whole matrices, so the caller usually knows the final
    /// size from the IDL layout and can avoid reallocation.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder and return the wire bytes.
    pub fn finish(self) -> Bytes {
        debug_assert_eq!(self.buf.len() % 4, 0, "XDR stream must be 4-byte aligned");
        self.buf.freeze()
    }

    /// Write an unsigned 32-bit integer.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Write a signed 32-bit integer.
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.buf.put_i32(v);
    }

    /// Write an unsigned 64-bit ("unsigned hyper") integer.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Write a signed 64-bit ("hyper") integer.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Write an IEEE-754 single-precision float.
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_f32(v);
    }

    /// Write an IEEE-754 double-precision float.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64(v);
    }

    /// Write a boolean as a 32-bit 0/1 word.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u32(v as u32);
    }

    /// Write fixed-length opaque data (no length prefix), zero-padded to a
    /// 4-byte boundary.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.put_slice(data);
        self.put_padding(data.len());
    }

    /// Write variable-length opaque data: length word, data, zero padding.
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.buf.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Write a counted string (XDR `string<>`).
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Write a variable-length array of doubles: length word then elements.
    ///
    /// This is the hot path for Ninf matrix arguments; matrices are shipped
    /// column-major as one flat array.
    pub fn put_f64_array(&mut self, data: &[f64]) {
        self.buf.put_u32(data.len() as u32);
        self.put_f64_slice(data);
    }

    /// Write doubles back-to-back without a length prefix (fixed array).
    ///
    /// Big-endian conversion runs through the bulk byte-swap kernel over a
    /// stack-resident chunk and lands in the output buffer one `memcpy` per
    /// chunk, instead of one 8-byte append (with its capacity check) per
    /// element.
    pub fn put_f64_slice(&mut self, data: &[f64]) {
        self.buf.reserve(data.len() * 8);
        let mut tmp = [0u8; SWAP_CHUNK * 8];
        for chunk in data.chunks(SWAP_CHUNK) {
            let nbytes = chunk.len() * 8;
            // SAFETY: `chunk` is valid for nbytes reads, `tmp` holds
            // SWAP_CHUNK * 8 >= nbytes bytes, and the buffers are disjoint.
            unsafe { be_words64(chunk.as_ptr().cast(), tmp.as_mut_ptr(), nbytes) };
            self.buf.put_slice(&tmp[..nbytes]);
        }
    }

    /// Write a variable-length array of 32-bit signed integers.
    pub fn put_i32_array(&mut self, data: &[i32]) {
        self.buf.put_u32(data.len() as u32);
        self.buf.reserve(data.len() * 4);
        let mut tmp = [0u8; SWAP_CHUNK * 4];
        for chunk in data.chunks(SWAP_CHUNK) {
            for (slot, &x) in tmp.chunks_exact_mut(4).zip(chunk) {
                slot.copy_from_slice(&x.to_be_bytes());
            }
            self.buf.put_slice(&tmp[..chunk.len() * 4]);
        }
    }

    /// Write a variable-length array of 64-bit signed integers.
    pub fn put_i64_array(&mut self, data: &[i64]) {
        self.buf.put_u32(data.len() as u32);
        self.buf.reserve(data.len() * 8);
        let mut tmp = [0u8; SWAP_CHUNK * 8];
        for chunk in data.chunks(SWAP_CHUNK) {
            let nbytes = chunk.len() * 8;
            // SAFETY: `chunk` is valid for nbytes reads, `tmp` holds
            // SWAP_CHUNK * 8 >= nbytes bytes, and the buffers are disjoint.
            unsafe { be_words64(chunk.as_ptr().cast(), tmp.as_mut_ptr(), nbytes) };
            self.buf.put_slice(&tmp[..nbytes]);
        }
    }

    /// Write a variable-length array of single-precision floats.
    pub fn put_f32_array(&mut self, data: &[f32]) {
        self.buf.put_u32(data.len() as u32);
        self.buf.reserve(data.len() * 4);
        let mut tmp = [0u8; SWAP_CHUNK * 4];
        for chunk in data.chunks(SWAP_CHUNK) {
            for (slot, &x) in tmp.chunks_exact_mut(4).zip(chunk) {
                slot.copy_from_slice(&x.to_be_bytes());
            }
            self.buf.put_slice(&tmp[..chunk.len() * 4]);
        }
    }

    #[inline]
    fn put_padding(&mut self, data_len: usize) {
        for _ in 0..pad_len(data_len) {
            self.buf.put_u8(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(0x0102_0304);
        enc.put_i32(-1);
        let wire = enc.finish();
        assert_eq!(&wire[..4], &[1, 2, 3, 4]);
        assert_eq!(&wire[4..8], &[0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn hyper_is_eight_bytes() {
        let mut enc = XdrEncoder::new();
        enc.put_u64(0x0102_0304_0506_0708);
        let wire = enc.finish();
        assert_eq!(&wire[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn opaque_padding_is_zero_and_aligned() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&[0xaa, 0xbb, 0xcc]);
        let wire = enc.finish();
        // 4 length + 3 data + 1 pad
        assert_eq!(wire.len(), 8);
        assert_eq!(&wire[..4], &[0, 0, 0, 3]);
        assert_eq!(&wire[4..7], &[0xaa, 0xbb, 0xcc]);
        assert_eq!(wire[7], 0);
    }

    #[test]
    fn string_encoding_matches_opaque() {
        let mut a = XdrEncoder::new();
        a.put_string("hi");
        let mut b = XdrEncoder::new();
        b.put_opaque(b"hi");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn f64_array_layout() {
        let mut enc = XdrEncoder::new();
        enc.put_f64_array(&[1.0]);
        let wire = enc.finish();
        assert_eq!(wire.len(), 12);
        assert_eq!(&wire[..4], &[0, 0, 0, 1]);
        assert_eq!(&wire[4..12], 1.0f64.to_be_bytes());
    }

    #[test]
    fn bool_is_word() {
        let mut enc = XdrEncoder::new();
        enc.put_bool(true);
        enc.put_bool(false);
        let wire = enc.finish();
        assert_eq!(&wire[..], &[0, 0, 0, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn with_capacity_does_not_change_output() {
        let mut a = XdrEncoder::with_capacity(1024);
        a.put_string("dgefa");
        a.put_f64_array(&[3.5; 7]);
        let mut b = XdrEncoder::new();
        b.put_string("dgefa");
        b.put_f64_array(&[3.5; 7]);
        assert_eq!(a.finish(), b.finish());
    }
}
