//! Sun XDR (External Data Representation, RFC 1014) codec.
//!
//! Ninf RPC ships all arguments and results as XDR on TCP/IP ("The underlying
//! transfer protocol is Sun XDR on TCP/IP" — Takefusa et al., SC'97, §2.1).
//! This crate implements the subset of XDR the Ninf protocol needs:
//!
//! * 32-bit signed/unsigned integers, booleans, enums (big-endian)
//! * 64-bit hyper integers
//! * IEEE-754 single and double precision floats
//! * fixed and variable-length opaque data (padded to 4-byte boundaries)
//! * counted strings (ASCII/UTF-8, padded)
//! * fixed and variable-length arrays of any encodable item
//!
//! Everything on the wire is a multiple of four bytes; decoding is strict and
//! rejects non-zero padding, short buffers, and out-of-range discriminants.
//!
//! # Example
//!
//! ```
//! use ninf_xdr::{XdrEncoder, XdrDecoder};
//!
//! let mut enc = XdrEncoder::new();
//! enc.put_u32(42);
//! enc.put_string("dmmul");
//! enc.put_f64_array(&[1.0, 2.0, 3.0]);
//! let wire = enc.finish();
//! assert_eq!(wire.len() % 4, 0);
//!
//! let mut dec = XdrDecoder::new(&wire);
//! assert_eq!(dec.get_u32().unwrap(), 42);
//! assert_eq!(dec.get_string().unwrap(), "dmmul");
//! assert_eq!(dec.get_f64_array().unwrap(), vec![1.0, 2.0, 3.0]);
//! assert!(dec.is_empty());
//! ```

mod decode;
mod encode;
mod error;
mod swap;

pub use bytes::Bytes;
pub use decode::XdrDecoder;
pub use encode::XdrEncoder;
pub use error::{XdrError, XdrResult};

/// Number of padding bytes needed to round `len` up to a 4-byte boundary.
#[inline]
pub fn pad_len(len: usize) -> usize {
    (4 - (len % 4)) % 4
}

/// Total on-wire size of a variable-length opaque/string of `len` bytes
/// (length word + data + padding).
#[inline]
pub fn opaque_wire_len(len: usize) -> usize {
    4 + len + pad_len(len)
}

/// A type that can be encoded to and decoded from XDR.
///
/// Implemented for the primitive types the Ninf protocol uses; protocol
/// messages compose these.
pub trait Xdr: Sized {
    /// Append `self` to the encoder.
    fn encode(&self, enc: &mut XdrEncoder);
    /// Read a value of this type from the decoder.
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self>;
}

macro_rules! impl_xdr_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Xdr for $ty {
            #[inline]
            fn encode(&self, enc: &mut XdrEncoder) {
                enc.$put(*self);
            }
            #[inline]
            fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
                dec.$get()
            }
        }
    };
}

impl_xdr_prim!(u32, put_u32, get_u32);
impl_xdr_prim!(i32, put_i32, get_i32);
impl_xdr_prim!(u64, put_u64, get_u64);
impl_xdr_prim!(i64, put_i64, get_i64);
impl_xdr_prim!(f32, put_f32, get_f32);
impl_xdr_prim!(f64, put_f64, get_f64);
impl_xdr_prim!(bool, put_bool, get_bool);

impl Xdr for String {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_string(self);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        dec.get_string()
    }
}

impl<T: Xdr> Xdr for Vec<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        let n = dec.get_u32()? as usize;
        // Guard against hostile lengths: each element occupies at least 4
        // wire bytes, so more than remaining/4 elements cannot fit. (The
        // bound was previously off by one, admitting a single phantom
        // element whose decode then over-allocated before erroring.)
        if n > dec.remaining() / 4 {
            return Err(XdrError::LengthOverflow {
                requested: n,
                remaining: dec.remaining(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Xdr> Xdr for Option<T> {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
            None => enc.put_bool(false),
        }
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> XdrResult<Self> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_len_cycles_mod_4() {
        assert_eq!(pad_len(0), 0);
        assert_eq!(pad_len(1), 3);
        assert_eq!(pad_len(2), 2);
        assert_eq!(pad_len(3), 1);
        assert_eq!(pad_len(4), 0);
        assert_eq!(pad_len(5), 3);
    }

    #[test]
    fn opaque_wire_len_includes_header_and_padding() {
        assert_eq!(opaque_wire_len(0), 4);
        assert_eq!(opaque_wire_len(1), 8);
        assert_eq!(opaque_wire_len(4), 8);
        assert_eq!(opaque_wire_len(5), 12);
    }

    #[test]
    fn trait_roundtrip_vec_of_f64() {
        let v: Vec<f64> = vec![1.5, -2.25, 0.0];
        let mut enc = XdrEncoder::new();
        v.encode(&mut enc);
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        let back = Vec::<f64>::decode(&mut dec).unwrap();
        assert_eq!(back, v);
        assert!(dec.is_empty());
    }

    #[test]
    fn trait_roundtrip_option() {
        for v in [Some(7u32), None] {
            let mut enc = XdrEncoder::new();
            v.encode(&mut enc);
            let wire = enc.finish();
            let mut dec = XdrDecoder::new(&wire);
            assert_eq!(Option::<u32>::decode(&mut dec).unwrap(), v);
        }
    }

    #[test]
    fn hostile_vec_length_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(u32::MAX); // claims 4 billion elements
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert!(matches!(
            Vec::<u32>::decode(&mut dec),
            Err(XdrError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn vec_length_one_past_remaining_rejected() {
        // Regression: the guard used to be `n > remaining/4 + 1`, which let
        // a count of exactly remaining/4 + 1 through — one phantom element
        // past what the payload can hold. It must be a LengthOverflow, not
        // a late decode failure.
        let mut enc = XdrEncoder::new();
        enc.put_u32(2); // claims two elements...
        enc.put_u32(9); // ...but only one fits
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert!(matches!(
            Vec::<u32>::decode(&mut dec),
            Err(XdrError::LengthOverflow {
                requested: 2,
                remaining: 4
            })
        ));
    }

    #[test]
    fn vec_length_exactly_filling_remaining_accepted() {
        // The tightened guard must not reject a count that exactly fills
        // the remaining bytes.
        let mut enc = XdrEncoder::new();
        enc.put_u32(3);
        for x in [1u32, 2, 3] {
            enc.put_u32(x);
        }
        let wire = enc.finish();
        let mut dec = XdrDecoder::new(&wire);
        assert_eq!(Vec::<u32>::decode(&mut dec).unwrap(), vec![1, 2, 3]);
        assert!(dec.is_empty());
    }
}
