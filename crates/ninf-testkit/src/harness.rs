//! The chaos harness: spawn a real fleet over loopback TCP, drive a
//! [`ChaosSpec`] through fault-injecting clients, and evaluate every
//! invariant, emitting a bit-deterministic transcript.
//!
//! Determinism contract: the transcript contains only facts that are pure
//! functions of `(spec, seed)` — the spec fingerprint, per-client planned
//! fault-schedule and arrival-schedule fingerprints, and the PASS/FAIL
//! verdicts. Wall-clock-dependent quantities (how many calls a drop turned
//! into timeouts vs transport errors) are deliberately excluded, so two
//! same-seed runs print byte-identical transcripts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ninf_client::{NinfClient, Transaction, TxArg};
use ninf_loadgen::{Outcome, Routine};
use ninf_metaserver::{Balancing, Directory, Metaserver, ServerEntry};
use ninf_obs::recorder;
use ninf_protocol::{
    fault_schedule, FaultKind, FaultyTransport, ProtocolError, ProtocolResult, Value,
};
use ninf_reactor::MuxStream;
use ninf_server::{
    builtin::register_stdlib, ExecMode, NinfServer, Registry, SchedPolicy, ServerConfig,
};

use crate::invariants::{
    bulk_isolation, conservation, corruption_rejected, exactly_once, monotone_cursors,
    quarantine_legal, traces_connected, tx_exactly_once, window_cursors, BulkRecord, CallRecord,
    Check, StatsPoll, WindowPoll,
};
use crate::spec::{fnv1a, ChaosSpec};

/// Nesting slack for trace validation: in-process clocks agree, but span
/// ends are stamped a scheduling quantum apart.
const NESTING_SLACK_US: u64 = 10_000;

/// Metric window interval the harness arms on every spawned server: short
/// enough that a run closes several windows for the cursor invariant to
/// chew on, long enough not to perturb the run.
const WINDOW_INTERVAL: Duration = Duration::from_millis(25);

/// Deliberate defects the harness can plant in its own accounting, used to
/// prove the invariant checkers actually bite (`ninf-chaos --violate-*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// No defect: measure the system as-is.
    None,
    /// Duplicate the first completion record, violating exactly-once.
    DuplicateCompletion,
}

/// One finished chaos run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Scenario name.
    pub scenario: String,
    /// Run seed.
    pub seed: u64,
    /// Spec fingerprint (seed-independent).
    pub fingerprint: u64,
    /// All invariant verdicts, in transcript order.
    pub checks: Vec<Check>,
    /// The deterministic transcript.
    pub transcript: String,
}

impl ChaosRun {
    /// Whether every invariant held.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The failed checks' transcript lines.
    pub fn violations(&self) -> Vec<String> {
        self.checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.line())
            .collect()
    }
}

/// Serializes harness runs within one process: the global flight recorder
/// is shared state, and concurrent fleets would corrupt each other's
/// trace snapshots (and wall-clock determinism).
static GATE: Mutex<()> = Mutex::new(());

fn spawn_server(pes: usize, arg_cache_bytes: usize) -> ProtocolResult<NinfServer> {
    let mut registry = Registry::new();
    register_stdlib(&mut registry, false);
    NinfServer::start(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            pes,
            mode: ExecMode::TaskParallel,
            policy: SchedPolicy::Fcfs,
            core: Default::default(),
            arg_cache_bytes,
            wan: None,
        },
    )
}

/// Call arguments for call `seq` of a routine. Linpack gets an identity
/// system so the solve is well-conditioned without hauling a matrix
/// generator in here; N-body regenerates its deterministic particle set, so
/// every call of a given size carries byte-identical arrays (the argument
/// cache's repeat-input case) while `seq` drives the probe step.
fn args_for(routine: Routine, seq: usize) -> Vec<Value> {
    match routine {
        Routine::Ep { m } => vec![Value::Int(m)],
        Routine::Linpack { n } => {
            let mut a = vec![0.0f64; n * n];
            for i in 0..n {
                a[i * n + i] = 1.0;
            }
            vec![
                Value::Int(n as i32),
                Value::DoubleArray(a),
                Value::DoubleArray(vec![1.0; n]),
            ]
        }
        Routine::Nbody { n } => {
            let (masses, pos) = ninf_exec::nbody_particles(n);
            vec![
                Value::Int(n as i32),
                Value::Int(seq as i32),
                Value::DoubleArray(masses),
                Value::DoubleArray(pos),
            ]
        }
    }
}

fn classify(err: &ProtocolError) -> Outcome {
    match err {
        ProtocolError::Remote(_) => Outcome::Remote,
        ProtocolError::Timeout { .. } => Outcome::Timeout,
        _ => Outcome::Transport,
    }
}

/// Arguments of call `seq` from `client`, salted under `unique_args` the
/// same way the load generator salts (`+= 1 + client·1_000_003 + seq` on
/// every array's last element) so no two calls ship the same digest and
/// every call re-runs the whole chunk fan-out.
fn salted_args(spec: &ChaosSpec, routine: Routine, client: usize, seq: usize) -> Vec<Value> {
    let mut args = args_for(routine, seq);
    if spec.workload.unique_args {
        let salt = 1.0 + (client as f64) * 1_000_003.0 + seq as f64;
        for v in &mut args {
            if let Value::DoubleArray(a) = v {
                if let Some(last) = a.last_mut() {
                    *last += salt;
                }
            }
        }
    }
    args
}

/// Whether a Linpack reply matches the solution predicted from the exact
/// bytes shipped. The harness solves `A x = b` with `A` an identity whose
/// last diagonal entry carries the same salt as `b`'s last element, so the
/// exact answer is all-ones *regardless of the salt* — but only when the
/// server factored precisely the salted matrix this call uploaded. A stale,
/// foreign, or partially-reassembled image yields `x[n-1] ≠ 1`.
fn solution_is_exact(out: &[Value]) -> bool {
    let Some(Value::DoubleArray(x)) = out.first() else {
        return false;
    };
    !x.is_empty() && x.iter().all(|v| (v - 1.0).abs() <= 1e-9)
}

/// One bulk-path client leg: a dialed, WAN-shaped client whose large
/// arguments pre-ship as chunks over parallel lanes. The link's seeded
/// loss schedule supplies the faults (bursts land mid-transfer on
/// individual lanes), so no [`FaultyTransport`] wraps this leg; alongside
/// the call ledger it records per-call [`BulkRecord`]s for the
/// [`bulk_isolation`] invariant.
fn drive_bulk_client(
    spec: &ChaosSpec,
    addr: &str,
    seed: u64,
    client: usize,
) -> (Vec<CallRecord>, Vec<u64>, Vec<BulkRecord>) {
    let planned = spec.workload.planned_calls(seed, client, spec.clients);
    let mut records = Vec::with_capacity(planned);
    let mut bulk = Vec::with_capacity(planned);
    let mut trace_ids = Vec::new();
    let mut options = spec.workload.options;
    options.wan = spec.link_shape(seed);
    let mut c = match NinfClient::connect_with(addr, options) {
        Ok(c) => c,
        Err(_) => {
            for seq in 0..planned {
                records.push(CallRecord {
                    client,
                    seq,
                    outcome: Outcome::Transport,
                    tainted: false,
                });
            }
            return (records, trace_ids, bulk);
        }
    };
    // Per-client digest memory, cleared so every run's fan-out starts cold.
    let cache_key = format!("{addr}#chaos-client{client}");
    ninf_client::argmem::forget_destination(&cache_key);
    c.set_cache_key(Some(cache_key));
    for seq in 0..planned {
        let routine = spec.workload.pick_routine(seed, client, seq);
        let args = salted_args(spec, routine, client, seq);
        let image_bytes: u64 = args
            .iter()
            .filter(|v| ninf_protocol::cacheable(v))
            .map(|v| ninf_protocol::value_image(v).len())
            .filter(|len| *len >= ninf_protocol::CHUNK_THRESHOLD)
            .map(|len| len as u64)
            .sum();
        let result = c.ninf_call(routine.name(), &args);
        let timing = c.last_timing().unwrap_or_default();
        let (outcome, result_exact) = match result {
            Ok(out) => {
                trace_ids.push(c.last_trace_id());
                (Outcome::Ok, solution_is_exact(&out))
            }
            Err(e) => (classify(&e), true),
        };
        records.push(CallRecord {
            client,
            seq,
            outcome,
            tainted: false,
        });
        bulk.push(BulkRecord {
            client,
            seq,
            image_bytes,
            bulk_bytes: timing.bulk_bytes as u64,
            retransmits: timing.bulk_retransmits,
            outcome,
            result_exact,
        });
    }
    (records, trace_ids, bulk)
}

/// One client leg: wrap a multiplexed stream's handle in the seeded fault
/// injector and issue every planned call, recording typed outcomes, the
/// trace ids of every successful call, and whether the stream had been
/// corrupted (truncate/garble) by the time each call returned. With
/// checksummed framing an `Ok` means the peer decoded genuine bytes, so
/// trace attribution is claimed unconditionally — and any `Ok` after a
/// corrupting fault is itself an invariant violation. Each client owns its
/// own [`MuxStream`], so a corrupting fault poisons exactly that client's
/// stream: a dropped send surfaces as a deadline timeout, and a truncated
/// or garbled frame makes the server kill the connection, failing the
/// calls in flight on it as retryable transport errors.
fn drive_client(
    spec: &ChaosSpec,
    addr: &str,
    seed: u64,
    client: usize,
) -> (Vec<CallRecord>, Vec<u64>, Vec<BulkRecord>) {
    // Bulk scenarios trade the fault injector for link shaping and keep a
    // per-call upload ledger on the side.
    if spec.bulk_leg() {
        return drive_bulk_client(spec, addr, seed, client);
    }
    let planned = spec.workload.planned_calls(seed, client, spec.clients);
    let mut records = Vec::with_capacity(planned);
    let mut trace_ids = Vec::new();
    let plan = spec.client_faults(seed, client);
    // The stream must outlive the client: dropping a MuxStream poisons it.
    let stream = match MuxStream::connect(addr, spec.workload.options.deadline, 64) {
        Ok(s) => s,
        Err(_) => {
            for seq in 0..planned {
                records.push(CallRecord {
                    client,
                    seq,
                    outcome: Outcome::Transport,
                    tainted: false,
                });
            }
            return (records, trace_ids, Vec::new());
        }
    };
    let faulty = FaultyTransport::new(stream.handle(), plan);
    let fault_log = faulty.history_handle();
    let mut c = NinfClient::from_transport(Box::new(faulty));
    // Arm the argument cache with a per-(server, client) digest memory,
    // cleared first so every run starts cold: the refill leg then follows
    // the seeded fault schedule, not what an earlier run left behind.
    let cache_key = format!("{addr}#chaos-client{client}");
    ninf_client::argmem::forget_destination(&cache_key);
    c.set_cache_key(Some(cache_key));
    if c.set_options(spec.workload.options).is_err() {
        for seq in 0..planned {
            records.push(CallRecord {
                client,
                seq,
                outcome: Outcome::Transport,
                tainted: false,
            });
        }
        return (records, trace_ids, Vec::new());
    }
    let mut tainted = false;
    for seq in 0..planned {
        let routine = spec.workload.pick_routine(seed, client, seq);
        let result = c.ninf_call(routine.name(), &args_for(routine, seq));
        // The fault log now covers every send this call performed, so the
        // taint flag reflects the stream state at the moment the outcome
        // was decided. Taint is sticky: the client never reconnects.
        tainted = tainted || fault_log.snapshot().iter().any(FaultKind::corrupts_stream);
        let outcome = match result {
            Ok(_) => {
                // The payload CRC means a decoded reply is a genuine
                // reply: claim trace attribution for every success, with
                // no corrupted-stream carve-out.
                trace_ids.push(c.last_trace_id());
                Outcome::Ok
            }
            Err(e) => classify(&e),
        };
        records.push(CallRecord {
            client,
            seq,
            outcome,
            tainted,
        });
    }
    (records, trace_ids, Vec::new())
}

/// Stats monitor for one server: poll `QueryStats` with a moving cursor
/// while the run is live, then drain until the cursor catches the
/// server's lifetime total (records are appended asynchronously around
/// reply time, so the drain is bounded, not one-shot).
fn monitor_stats(addr: &str, stop: &AtomicBool) -> ProtocolResult<Vec<StatsPoll>> {
    let mut c = NinfClient::connect_with(
        addr,
        ninf_client::CallOptions::with_deadline(Duration::from_secs(2)),
    )?;
    let mut polls = Vec::new();
    let mut cursor = 0u64;
    fn poll(
        c: &mut NinfClient,
        cursor: &mut u64,
        polls: &mut Vec<StatsPoll>,
    ) -> ProtocolResult<u64> {
        let (now, total, records) = c.query_stats(*cursor)?;
        *cursor += records.len() as u64;
        polls.push(StatsPoll {
            now,
            total,
            fetched: records.len(),
        });
        Ok(total)
    }
    while !stop.load(Ordering::Acquire) {
        poll(&mut c, &mut cursor, &mut polls)?;
        std::thread::sleep(Duration::from_millis(15));
    }
    // Bounded drain: totals are monotone and the run is over, so catch up.
    for _ in 0..200 {
        let total = poll(&mut c, &mut cursor, &mut polls)?;
        if cursor >= total {
            return Ok(polls);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Ok(polls)
}

/// Window monitor for one server: poll `QueryMetrics` with a moving cursor
/// while the run is live, recording exactly which window indices every
/// poll delivered — the raw material for the [`window_cursors`]
/// exactly-once invariant. One final poll after stop drains windows the
/// sampler closed while the last sleep was pending.
fn monitor_windows(addr: &str, stop: &AtomicBool) -> ProtocolResult<Vec<WindowPoll>> {
    let mut c = NinfClient::connect_with(
        addr,
        ninf_client::CallOptions::with_deadline(Duration::from_secs(2)),
    )?;
    let mut polls = Vec::new();
    let mut cursor = 0u64;
    let poll = |c: &mut NinfClient, cursor: &mut u64, polls: &mut Vec<WindowPoll>| {
        let (_process, snap) = c.query_metrics(*cursor)?;
        polls.push(WindowPoll {
            now: snap.now,
            total: snap.total,
            dropped: snap.dropped,
            windows: snap.frames.iter().map(|f| f.window).collect(),
        });
        *cursor = snap.total;
        ProtocolResult::Ok(())
    };
    while !stop.load(Ordering::Acquire) {
        poll(&mut c, &mut cursor, &mut polls)?;
        std::thread::sleep(Duration::from_millis(15));
    }
    poll(&mut c, &mut cursor, &mut polls)?;
    Ok(polls)
}

/// The metaserver transaction leg: `tx_calls` independent calls routed
/// fault-tolerantly over the live fleet plus `dead_servers` unreachable
/// directory entries, so retries and quarantine accounting are exercised.
/// Returns per-call completion counts and the health-event log.
fn drive_transaction(
    spec: &ChaosSpec,
    addrs: &[String],
) -> ProtocolResult<(Vec<u32>, Vec<ninf_metaserver::HealthEvent>, usize)> {
    let mut dir = Directory::new();
    // Dead entries first: round-robin hits them early and often enough to
    // cross the quarantine threshold within one transaction.
    for d in 0..spec.dead_servers {
        dir.register(ServerEntry {
            name: format!("dead{d}"),
            addr: "127.0.0.1:1".into(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
    }
    for (i, addr) in addrs.iter().enumerate() {
        dir.register(ServerEntry {
            name: format!("node{i}"),
            addr: addr.clone(),
            bandwidth_bytes_per_sec: 10e6,
            linpack_mflops: 100.0,
        });
    }
    let servers = dir.len();
    let meta = Metaserver::with_options(
        dir,
        Balancing::RoundRobin,
        spec.workload.options,
        Some(Duration::from_millis(500)),
    );
    let mut tx = Transaction::new();
    let mut slots = Vec::with_capacity(spec.tx_calls);
    for _ in 0..spec.tx_calls {
        let s = tx.slot();
        tx.call("ep", vec![TxArg::Value(Value::Int(8))], vec![Some(s), None]);
        slots.push(s);
    }
    let out = meta.execute_transaction_ft(&tx)?;
    let completions: Vec<u32> = slots
        .iter()
        .map(|s| u32::from(out.get(s.0).is_some_and(|v| v.is_some())))
        .collect();
    Ok((completions, meta.directory().health_events(), servers))
}

/// Run one chaos scenario under one seed and evaluate every invariant.
pub fn run_chaos(spec: &ChaosSpec, seed: u64, inject: Inject) -> ProtocolResult<ChaosRun> {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let rec = recorder::global();
    let was_enabled = rec.enabled();
    rec.set_enabled(true);
    rec.clear();

    let mut servers = Vec::with_capacity(spec.servers);
    for _ in 0..spec.servers {
        let s = spawn_server(spec.pes, spec.arg_cache_bytes)?;
        // Armed window rings feed the window-cursor invariant the same way
        // CallStat records feed monotone-cursors.
        s.metrics().registry().start_window_sampler(WINDOW_INTERVAL);
        servers.push(s);
    }
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    let stop = AtomicBool::new(false);
    let (mut records, trace_ids, bulk_records, tx_outcome, stats_results, window_results) =
        std::thread::scope(|scope| {
            let stop_ref = &stop;
            let monitors: Vec<_> = addrs
                .iter()
                .map(|addr| scope.spawn(move || monitor_stats(addr, stop_ref)))
                .collect();
            let window_monitors: Vec<_> = addrs
                .iter()
                .map(|addr| scope.spawn(move || monitor_windows(addr, stop_ref)))
                .collect();
            let clients: Vec<_> = (0..spec.clients)
                .map(|client| {
                    let addr = &addrs[client % addrs.len()];
                    scope.spawn(move || drive_client(spec, addr, seed, client))
                })
                .collect();
            let mut records = Vec::new();
            let mut trace_ids = Vec::new();
            let mut bulk_records = Vec::new();
            for handle in clients {
                let (r, t, b) = handle.join().expect("client thread");
                records.extend(r);
                trace_ids.extend(t);
                bulk_records.extend(b);
            }
            // The transaction leg runs while monitors still poll, so its
            // calls land inside the monitored cursor stream too.
            let tx_outcome = (spec.tx_calls > 0).then(|| drive_transaction(spec, &addrs));
            stop.store(true, Ordering::Release);
            let mut stats_results = Vec::new();
            for m in monitors {
                stats_results.push(m.join().expect("monitor thread"));
            }
            let mut window_results = Vec::new();
            for m in window_monitors {
                window_results.push(m.join().expect("window monitor thread"));
            }
            (
                records,
                trace_ids,
                bulk_records,
                tx_outcome,
                stats_results,
                window_results,
            )
        });
    let snapshot = rec.snapshot(0);
    rec.set_enabled(was_enabled);
    for s in servers {
        s.shutdown();
    }

    let mut stats_polls = Vec::with_capacity(stats_results.len());
    for r in stats_results {
        stats_polls.push(r?);
    }
    let mut window_polls = Vec::with_capacity(window_results.len());
    for r in window_results {
        window_polls.push(r?);
    }

    if inject == Inject::DuplicateCompletion {
        if let Some(first) = records.first().copied() {
            records.push(first);
        }
    }

    let planned: Vec<usize> = (0..spec.clients)
        .map(|c| spec.workload.planned_calls(seed, c, spec.clients))
        .collect();

    let mut checks = vec![
        conservation(&records, &planned),
        exactly_once(&records, &planned),
        corruption_rejected(&records),
        monotone_cursors(&stats_polls),
        window_cursors(&window_polls),
        traces_connected(&snapshot, &trace_ids, NESTING_SLACK_US),
    ];
    if spec.bulk_leg() {
        checks.push(bulk_isolation(&bulk_records));
    }
    if let Some(tx) = tx_outcome {
        let (completions, events, dir_len) = tx?;
        checks.push(tx_exactly_once(&completions));
        checks.push(quarantine_legal(&events, dir_len));
    }

    let transcript = transcript(spec, seed, &planned, &checks);
    Ok(ChaosRun {
        scenario: spec.name.to_string(),
        seed,
        fingerprint: spec.fingerprint(),
        checks,
        transcript,
    })
}

/// Build the deterministic transcript: a header of seed-derived facts,
/// one line per invariant, and a RESULT trailer.
fn transcript(spec: &ChaosSpec, seed: u64, planned: &[usize], checks: &[Check]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# ninf-chaos scenario={} seed={} fingerprint={:#018x}\n",
        spec.name,
        seed,
        spec.fingerprint()
    ));
    out.push_str(&format!(
        "# clients={} servers={} pes={} dead={} tx_calls={}\n",
        spec.clients, spec.servers, spec.pes, spec.dead_servers, spec.tx_calls
    ));
    out.push_str(&format!(
        "# faults drop={:.3} delay={:.3} delay_ms={} truncate={:.3} garble={:.3}\n",
        spec.faults.drop_prob,
        spec.faults.delay_prob,
        spec.faults.delay.as_millis(),
        spec.faults.truncate_prob,
        spec.faults.garble_prob
    ));
    if let Some(shape) = spec.link_shape(seed) {
        // Pure function of (spec, seed): the canonical shape with the
        // run-derived link seed, plus the fan-out geometry.
        out.push_str(&format!(
            "# wan {shape} streams={} chunk_bytes={} lane_deadline_ms={}\n",
            spec.workload.options.streams,
            spec.workload.options.chunk_bytes,
            spec.workload
                .options
                .lane_deadline
                .map_or(0, |d| d.as_millis()),
        ));
    }
    for (client, &n) in planned.iter().enumerate() {
        // Fingerprint the *planned* fault schedule over a generous window
        // (several transport sends per call) — a pure function of the
        // plan, independent of how the run actually interleaved.
        let plan = spec.client_faults(seed, client);
        let schedule = fault_schedule(&plan, (4 * n + 8) as u64);
        let mut bytes = Vec::new();
        for k in &schedule {
            bytes.extend_from_slice(k.label().as_bytes());
            bytes.push(b',');
        }
        let arrivals = spec.workload.arrival_schedule(seed, client, spec.clients);
        let mut arr_bytes = Vec::with_capacity(arrivals.len() * 8);
        for t in &arrivals {
            arr_bytes.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        out.push_str(&format!(
            "# client {client}: planned={n} faults_fnv={:#018x} arrivals_fnv={:#018x}\n",
            fnv1a(&bytes),
            fnv1a(&arr_bytes)
        ));
    }
    for c in checks {
        out.push_str(&c.line());
        out.push('\n');
    }
    let pass = checks.iter().all(|c| c.pass);
    out.push_str(&format!(
        "RESULT {} scenario={} seed={} fingerprint={:#018x}\n",
        if pass { "PASS" } else { "FAIL" },
        spec.name,
        seed,
        spec.fingerprint()
    ));
    out
}
