//! Machine-checkable invariants evaluated after every chaos run.
//!
//! Each checker returns a [`Check`]: on PASS the detail is a *static*
//! string (no counts, no timings), so same-seed transcripts are
//! byte-identical even where wall-clock races decide how many calls timed
//! out; on FAIL the detail names the offending record, which is itself
//! deterministic for seed-pinned violations.

use ninf_loadgen::Outcome;
use ninf_metaserver::{HealthEvent, QUARANTINE_THRESHOLD};
use ninf_obs::export::{client_server_coverage, validate_nesting};
use ninf_obs::Span;

/// One invariant's verdict.
#[derive(Debug, Clone)]
pub struct Check {
    /// Invariant name (stable, used in transcripts).
    pub name: &'static str,
    /// Whether the invariant held.
    pub pass: bool,
    /// `"ok"` on pass; the violation on fail.
    pub detail: String,
}

impl Check {
    fn pass(name: &'static str) -> Self {
        Check {
            name,
            pass: true,
            detail: "ok".into(),
        }
    }

    fn fail(name: &'static str, detail: String) -> Self {
        Check {
            name,
            pass: false,
            detail,
        }
    }

    /// The transcript line for this check.
    pub fn line(&self) -> String {
        if self.pass {
            format!("PASS {}", self.name)
        } else {
            format!("FAIL {}: {}", self.name, self.detail)
        }
    }
}

/// One completed (or failed) call as the harness ledger records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallRecord {
    /// Issuing client.
    pub client: usize,
    /// Sequence number within the client.
    pub seq: usize,
    /// Typed outcome.
    pub outcome: Outcome,
    /// Whether a stream-corrupting fault (truncate/garble) had fired on
    /// this client's connection by the time the call returned.
    pub tainted: bool,
}

/// Exactly-once completion: every planned `(client, seq)` has exactly one
/// ledger record — retries and faults may change the *outcome* but can
/// never double- or zero-count a call.
pub fn exactly_once(records: &[CallRecord], planned: &[usize]) -> Check {
    const NAME: &str = "exactly-once";
    for (client, &n) in planned.iter().enumerate() {
        for seq in 0..n {
            let hits = records
                .iter()
                .filter(|r| r.client == client && r.seq == seq)
                .count();
            if hits != 1 {
                return Check::fail(
                    NAME,
                    format!("call (client {client}, seq {seq}) completed {hits} times, want 1"),
                );
            }
        }
    }
    let total: usize = planned.iter().sum();
    if records.len() != total {
        return Check::fail(
            NAME,
            format!(
                "{} ledger records for {} planned calls",
                records.len(),
                total
            ),
        );
    }
    Check::pass(NAME)
}

/// Conservation: calls issued == ok + remote + timeout + transport, per
/// client and fleet-wide — nothing the fault injector does may make a call
/// vanish without a typed outcome.
pub fn conservation(records: &[CallRecord], planned: &[usize]) -> Check {
    const NAME: &str = "conservation";
    for (client, &n) in planned.iter().enumerate() {
        let own: Vec<&CallRecord> = records.iter().filter(|r| r.client == client).collect();
        let ok = own.iter().filter(|r| r.outcome == Outcome::Ok).count();
        let remote = own.iter().filter(|r| r.outcome == Outcome::Remote).count();
        let timeout = own.iter().filter(|r| r.outcome == Outcome::Timeout).count();
        let transport = own
            .iter()
            .filter(|r| r.outcome == Outcome::Transport)
            .count();
        if ok + remote + timeout + transport != n {
            return Check::fail(
                NAME,
                format!(
                    "client {client}: {n} issued but {ok} ok + {remote} remote + \
                     {timeout} timeout + {transport} transport"
                ),
            );
        }
    }
    Check::pass(NAME)
}

/// One `QueryStats` poll observation: `(server clock, total calls, records
/// fetched at this cursor position)`.
#[derive(Debug, Clone, Copy)]
pub struct StatsPoll {
    /// Server-reported seconds since start.
    pub now: f64,
    /// Server-reported lifetime call total.
    pub total: u64,
    /// Records this poll fetched.
    pub fetched: usize,
}

/// Monotone cursors: per server, the stats clock and lifetime total never
/// go backwards across polls, and cursor-driven fetches deliver every
/// record exactly once (Σ fetched == final total).
pub fn monotone_cursors(per_server: &[Vec<StatsPoll>]) -> Check {
    const NAME: &str = "monotone-cursors";
    for (server, polls) in per_server.iter().enumerate() {
        let mut fetched = 0u64;
        for (i, w) in polls.windows(2).enumerate() {
            if w[1].now < w[0].now {
                return Check::fail(
                    NAME,
                    format!("server {server}: clock went backwards at poll {}", i + 1),
                );
            }
            if w[1].total < w[0].total {
                return Check::fail(
                    NAME,
                    format!("server {server}: call total shrank at poll {}", i + 1),
                );
            }
        }
        for p in polls {
            fetched += p.fetched as u64;
        }
        if let Some(last) = polls.last() {
            if fetched != last.total {
                return Check::fail(
                    NAME,
                    format!(
                        "server {server}: cursors fetched {fetched} records for a total of {}",
                        last.total
                    ),
                );
            }
        }
    }
    Check::pass(NAME)
}

/// One `QueryMetrics` poll observation: the reply header plus the window
/// indices it delivered.
#[derive(Debug, Clone)]
pub struct WindowPoll {
    /// Server-reported seconds since registry arm.
    pub now: f64,
    /// Lifetime windows captured (ring head).
    pub total: u64,
    /// Windows evicted from the ring before they were fetched.
    pub dropped: u64,
    /// `window` indices of the frames this poll returned.
    pub windows: Vec<u64>,
}

/// Window-cursor exactly-once: per server, `QueryMetrics` cursor polling
/// must deliver the window series exactly once even across ring eviction.
/// The ring clamps a stale cursor up to its base, so poll *k* (with cursor
/// = poll *k−1*'s `total`, 0 initially) must return exactly the contiguous
/// indices `max(cursor, dropped)..total` — no gaps, no duplicates, no
/// reordering — and `now`/`total`/`dropped` must be monotone.
pub fn window_cursors(per_server: &[Vec<WindowPoll>]) -> Check {
    const NAME: &str = "window-cursors";
    for (server, polls) in per_server.iter().enumerate() {
        let mut cursor = 0u64;
        let mut prev_now = f64::NEG_INFINITY;
        let mut prev_dropped = 0u64;
        for (i, p) in polls.iter().enumerate() {
            if p.now < prev_now {
                return Check::fail(
                    NAME,
                    format!("server {server}: window clock went backwards at poll {i}"),
                );
            }
            if p.total < cursor {
                return Check::fail(
                    NAME,
                    format!("server {server}: window total shrank at poll {i}"),
                );
            }
            if p.dropped < prev_dropped {
                return Check::fail(
                    NAME,
                    format!("server {server}: dropped count shrank at poll {i}"),
                );
            }
            if p.dropped > p.total {
                return Check::fail(
                    NAME,
                    format!(
                        "server {server}: poll {i} dropped {} of only {} windows",
                        p.dropped, p.total
                    ),
                );
            }
            let want: Vec<u64> = (cursor.max(p.dropped)..p.total).collect();
            if p.windows != want {
                return Check::fail(
                    NAME,
                    format!(
                        "server {server}: poll {i} at cursor {cursor} returned windows \
                         {:?}, want {}..{} (dropped {})",
                        p.windows,
                        cursor.max(p.dropped),
                        p.total,
                        p.dropped
                    ),
                );
            }
            cursor = p.total;
            prev_now = p.now;
            prev_dropped = p.dropped;
        }
    }
    Check::pass(NAME)
}

/// Corruption rejection: once a truncate/garble fault has fired on a
/// client's stream, no later call over that stream may complete
/// successfully. Each chaos client drives all its calls over one
/// connection and never reconnects; v2 framing checksums every payload,
/// so the receiver rejects the corrupted frame with a typed error and
/// tears the connection down — a subsequent `Ok` would mean a corrupted
/// or misattributed frame decoded. Under v1's checksum-less framing this
/// could genuinely happen (composite frames from interleaved truncation),
/// which is why trace claims used to carve those calls out; the CRC made
/// the stronger claim checkable.
pub fn corruption_rejected(records: &[CallRecord]) -> Check {
    const NAME: &str = "corruption-rejected";
    for r in records {
        if r.tainted && r.outcome == Outcome::Ok {
            return Check::fail(
                NAME,
                format!(
                    "call (client {}, seq {}) succeeded on a corrupted stream",
                    r.client, r.seq
                ),
            );
        }
    }
    Check::pass(NAME)
}

/// Trace-tree connectedness: every trace a successful call minted must
/// form one well-nested tree with both client- and server-side spans.
pub fn traces_connected(spans: &[Span], ok_trace_ids: &[u64], slack_us: u64) -> Check {
    const NAME: &str = "trace-connected";
    for &tid in ok_trace_ids {
        let own: Vec<Span> = spans
            .iter()
            .filter(|s| s.trace_id == tid)
            .cloned()
            .collect();
        if own.is_empty() {
            return Check::fail(NAME, format!("trace {tid:#x}: no spans recorded"));
        }
        if let Err(e) = validate_nesting(&own, slack_us) {
            return Check::fail(NAME, format!("trace {tid:#x}: {e}"));
        }
        if let Err(e) = client_server_coverage(&own) {
            return Check::fail(NAME, format!("trace {tid:#x}: {e}"));
        }
    }
    Check::pass(NAME)
}

/// Quarantine/reinstate legality: replay the directory's health-event log
/// against a reference state machine. A `Quarantined` may only follow the
/// failure that crossed the threshold; a `Reinstated` may only follow a
/// `Success` on the same server; streak accounting must match.
pub fn quarantine_legal(events: &[HealthEvent], servers: usize) -> Check {
    const NAME: &str = "quarantine-legal";
    #[derive(Default, Clone, Copy)]
    struct Model {
        streak: u32,
        quarantined: bool,
    }
    let mut models = vec![Model::default(); servers];
    let mut pending_quarantine: Option<usize> = None;
    let mut pending_reinstate: Option<usize> = None;
    for (i, e) in events.iter().enumerate() {
        if let Some(s) = pending_quarantine.take() {
            if *e != (HealthEvent::Quarantined { server: s }) {
                return Check::fail(
                    NAME,
                    format!("event {i}: server {s} crossed threshold but next event is {e:?}"),
                );
            }
            continue;
        }
        if let Some(s) = pending_reinstate.take() {
            if *e != (HealthEvent::Reinstated { server: s }) {
                return Check::fail(
                    NAME,
                    format!("event {i}: quarantined server {s} succeeded but next event is {e:?}"),
                );
            }
            continue;
        }
        match *e {
            HealthEvent::Failure { server, streak, .. } => {
                let Some(m) = models.get_mut(server) else {
                    return Check::fail(NAME, format!("event {i}: unknown server {server}"));
                };
                m.streak += 1;
                if streak != m.streak {
                    return Check::fail(
                        NAME,
                        format!(
                            "event {i}: server {server} streak {streak}, model says {}",
                            m.streak
                        ),
                    );
                }
                if !m.quarantined && m.streak >= QUARANTINE_THRESHOLD {
                    m.quarantined = true;
                    pending_quarantine = Some(server);
                }
            }
            HealthEvent::Quarantined { server } => {
                // Legal occurrences were consumed by `pending_quarantine`
                // above; reaching this arm means no threshold-crossing
                // failure immediately preceded (e.g. quarantined below
                // threshold, or a duplicate quarantine event).
                return Check::fail(
                    NAME,
                    format!("event {i}: server {server} quarantined below threshold"),
                );
            }
            HealthEvent::Success { server, .. } => {
                let Some(m) = models.get_mut(server) else {
                    return Check::fail(NAME, format!("event {i}: unknown server {server}"));
                };
                if m.quarantined {
                    pending_reinstate = Some(server);
                }
                m.streak = 0;
                m.quarantined = false;
            }
            HealthEvent::Reinstated { server } => {
                // Legal occurrences were consumed by `pending_reinstate`
                // above; reaching this arm at all means the reinstatement
                // had no immediately-preceding success.
                return Check::fail(
                    NAME,
                    format!("event {i}: server {server} reinstated without a success"),
                );
            }
        }
    }
    if pending_quarantine.is_some() || pending_reinstate.is_some() {
        return Check::fail(NAME, "log ends mid-transition".into());
    }
    Check::pass(NAME)
}

/// One call's parallel-bulk ledger entry, recorded by the harness for
/// scenarios that drive the chunk fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkRecord {
    /// Issuing client.
    pub client: usize,
    /// Sequence number within the client.
    pub seq: usize,
    /// XDR image bytes of the call's one chunk-eligible argument.
    pub image_bytes: u64,
    /// Image bytes the client's upload accounting claims it landed over
    /// the bulk lanes (pre-ship plus any refill; excludes retransmits).
    pub bulk_bytes: u64,
    /// Chunk retransmits the upload performed.
    pub retransmits: u32,
    /// Typed call outcome.
    pub outcome: Outcome,
    /// Whether a successful call's reply matched the solution predicted
    /// from the exact bytes shipped (vacuously `true` for failed calls).
    pub result_exact: bool,
}

/// Bulk-lane isolation: a dying lane may fail only its own chunks, never
/// the call and never another lane's bytes. Three checkable faces:
///
/// * **All-or-nothing uploads** — `bulk_bytes` is always a whole number
///   of images: a lane that dies mid-fan-out fails the entire upload
///   (the call falls back to shipping the value inline) and the server's
///   reassembly holds partial state out of the arg store, so no fraction
///   of an image can ever be claimed as landed.
/// * **Payload exactness** — every `Ok` call's solution must match the
///   one predicted from the exact salted bytes shipped; retransmits and
///   redials on any lane must deliver each chunk's bytes exactly once or
///   the digest check would have refused the image.
/// * **Loss stays loss** — a shaped link only delays or drops; the sole
///   legal failure is a client deadline expiry (`Timeout`). A `Transport`
///   or `Remote` outcome would mean a lane failure escaped its lane
///   (a desynced stream, a half-written image that decoded, …).
pub fn bulk_isolation(records: &[BulkRecord]) -> Check {
    const NAME: &str = "bulk-isolation";
    for r in records {
        if r.image_bytes == 0 {
            return Check::fail(
                NAME,
                format!(
                    "call (client {}, seq {}) has no chunk-eligible argument",
                    r.client, r.seq
                ),
            );
        }
        if r.bulk_bytes % r.image_bytes != 0 {
            return Check::fail(
                NAME,
                format!(
                    "call (client {}, seq {}) accounted a partial upload: \
                     {} bulk bytes for a {}-byte image",
                    r.client, r.seq, r.bulk_bytes, r.image_bytes
                ),
            );
        }
        if r.outcome == Outcome::Ok && !r.result_exact {
            return Check::fail(
                NAME,
                format!(
                    "call (client {}, seq {}) succeeded with a wrong solution: \
                     a foreign or partial chunk reached its image",
                    r.client, r.seq
                ),
            );
        }
        if !matches!(r.outcome, Outcome::Ok | Outcome::Timeout) {
            return Check::fail(
                NAME,
                format!(
                    "call (client {}, seq {}) failed with {:?}: pure loss may \
                     only delay or time out, never corrupt",
                    r.client, r.seq, r.outcome
                ),
            );
        }
    }
    Check::pass(NAME)
}

/// Transaction exactly-once: every transaction call completed exactly once
/// (its slot written once, never twice under retries).
pub fn tx_exactly_once(completions: &[u32]) -> Check {
    const NAME: &str = "tx-exactly-once";
    for (call, &n) in completions.iter().enumerate() {
        if n != 1 {
            return Check::fail(NAME, format!("tx call #{call} completed {n} times, want 1"));
        }
    }
    Check::pass(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(client: usize, seq: usize, outcome: Outcome) -> CallRecord {
        CallRecord {
            client,
            seq,
            outcome,
            tainted: false,
        }
    }

    #[test]
    fn exactly_once_catches_duplicates_and_holes() {
        let planned = vec![2, 1];
        let good = vec![
            rec(0, 0, Outcome::Ok),
            rec(0, 1, Outcome::Timeout),
            rec(1, 0, Outcome::Ok),
        ];
        assert!(exactly_once(&good, &planned).pass);
        let mut dup = good.clone();
        dup.push(rec(0, 0, Outcome::Ok));
        let c = exactly_once(&dup, &planned);
        assert!(!c.pass);
        assert!(c.detail.contains("2 times"));
        let hole = vec![rec(0, 0, Outcome::Ok), rec(1, 0, Outcome::Ok)];
        assert!(!exactly_once(&hole, &planned).pass);
    }

    #[test]
    fn corruption_rejected_flags_ok_on_tainted_stream() {
        let clean = vec![
            rec(0, 0, Outcome::Ok),
            CallRecord {
                tainted: true,
                ..rec(0, 1, Outcome::Transport)
            },
            CallRecord {
                tainted: true,
                ..rec(0, 2, Outcome::Timeout)
            },
        ];
        assert!(corruption_rejected(&clean).pass);
        let mut bad = clean.clone();
        bad.push(CallRecord {
            tainted: true,
            ..rec(0, 3, Outcome::Ok)
        });
        let c = corruption_rejected(&bad);
        assert!(!c.pass);
        assert!(c.detail.contains("seq 3"));
        assert!(c.detail.contains("corrupted stream"));
    }

    #[test]
    fn conservation_holds_over_typed_outcomes_only() {
        let planned = vec![3];
        let ok = vec![
            rec(0, 0, Outcome::Ok),
            rec(0, 1, Outcome::Transport),
            rec(0, 2, Outcome::Remote),
        ];
        assert!(conservation(&ok, &planned).pass);
        let short = vec![rec(0, 0, Outcome::Ok)];
        assert!(!conservation(&short, &planned).pass);
    }

    #[test]
    fn cursor_checks() {
        let ok = vec![vec![
            StatsPoll {
                now: 0.1,
                total: 2,
                fetched: 2,
            },
            StatsPoll {
                now: 0.2,
                total: 5,
                fetched: 3,
            },
        ]];
        assert!(monotone_cursors(&ok).pass);
        let back = vec![vec![
            StatsPoll {
                now: 0.2,
                total: 5,
                fetched: 5,
            },
            StatsPoll {
                now: 0.1,
                total: 5,
                fetched: 0,
            },
        ]];
        assert!(!monotone_cursors(&back).pass);
        let lost = vec![vec![
            StatsPoll {
                now: 0.1,
                total: 2,
                fetched: 1,
            },
            StatsPoll {
                now: 0.2,
                total: 5,
                fetched: 3,
            },
        ]];
        let c = monotone_cursors(&lost);
        assert!(!c.pass);
        assert!(c.detail.contains("fetched 4"));
    }

    #[test]
    fn window_cursor_checks() {
        let poll = |now: f64, total: u64, dropped: u64, windows: &[u64]| WindowPoll {
            now,
            total,
            dropped,
            windows: windows.to_vec(),
        };
        // Plain incremental drain: 0..3 then 3..5.
        let ok = vec![vec![
            poll(0.1, 3, 0, &[0, 1, 2]),
            poll(0.2, 5, 0, &[3, 4]),
            poll(0.3, 5, 0, &[]),
        ]];
        assert!(window_cursors(&ok).pass);
        // Ring eviction between polls: base jumped to 6, so the clamp must
        // surface exactly 6..9 and the dropped counter must own 4..6.
        let evicted = vec![vec![
            poll(0.1, 4, 0, &[0, 1, 2, 3]),
            poll(0.9, 9, 6, &[6, 7, 8]),
        ]];
        assert!(window_cursors(&evicted).pass);
        // A window delivered twice violates exactly-once.
        let dup = vec![vec![poll(0.1, 2, 0, &[0, 1]), poll(0.2, 3, 0, &[1, 2])]];
        let c = window_cursors(&dup);
        assert!(!c.pass);
        assert!(c.detail.contains("poll 1"), "{}", c.detail);
        // A gap (window 1 never delivered, no eviction to excuse it).
        let gap = vec![vec![poll(0.1, 1, 0, &[0]), poll(0.2, 3, 0, &[2])]];
        assert!(!window_cursors(&gap).pass);
        // Monotonicity of the header fields.
        let back = vec![vec![poll(0.2, 2, 0, &[0, 1]), poll(0.1, 2, 0, &[])]];
        assert!(!window_cursors(&back).pass);
        let shrank = vec![vec![
            poll(0.1, 5, 0, &[0, 1, 2, 3, 4]),
            poll(0.2, 4, 0, &[]),
        ]];
        assert!(!window_cursors(&shrank).pass);
        let overdrop = vec![vec![poll(0.1, 2, 3, &[])]];
        assert!(!window_cursors(&overdrop).pass);
    }

    #[test]
    fn quarantine_legality_accepts_real_log_and_rejects_corruption() {
        let legal = vec![
            HealthEvent::Failure {
                server: 0,
                probe: false,
                streak: 1,
            },
            HealthEvent::Failure {
                server: 0,
                probe: false,
                streak: 2,
            },
            HealthEvent::Failure {
                server: 0,
                probe: false,
                streak: 3,
            },
            HealthEvent::Quarantined { server: 0 },
            HealthEvent::Failure {
                server: 0,
                probe: true,
                streak: 4,
            },
            HealthEvent::Success {
                server: 0,
                probe: true,
            },
            HealthEvent::Reinstated { server: 0 },
        ];
        assert!(quarantine_legal(&legal, 1).pass);

        // Reinstated with no preceding success.
        let rogue = vec![
            HealthEvent::Failure {
                server: 0,
                probe: false,
                streak: 1,
            },
            HealthEvent::Reinstated { server: 0 },
        ];
        let c = quarantine_legal(&rogue, 1);
        assert!(!c.pass);
        assert!(c.detail.contains("without a success"));

        // Quarantined below threshold.
        let early = vec![
            HealthEvent::Failure {
                server: 0,
                probe: false,
                streak: 1,
            },
            HealthEvent::Quarantined { server: 0 },
        ];
        assert!(!quarantine_legal(&early, 1).pass);

        // Streak accounting mismatch.
        let skip = vec![HealthEvent::Failure {
            server: 0,
            probe: false,
            streak: 2,
        }];
        assert!(!quarantine_legal(&skip, 1).pass);
    }

    #[test]
    fn bulk_isolation_catches_partials_wrong_answers_and_corruption() {
        let rec = |bulk_bytes: u64, outcome: Outcome, result_exact: bool| BulkRecord {
            client: 0,
            seq: 0,
            image_bytes: 1000,
            bulk_bytes,
            retransmits: 3,
            outcome,
            result_exact,
        };
        // Full upload, inline fallback (0), and a double-ship (refill) all
        // pass; a timeout is legal loss.
        assert!(bulk_isolation(&[rec(1000, Outcome::Ok, true)]).pass);
        assert!(bulk_isolation(&[rec(0, Outcome::Ok, true)]).pass);
        assert!(bulk_isolation(&[rec(2000, Outcome::Ok, true)]).pass);
        assert!(bulk_isolation(&[rec(1000, Outcome::Timeout, true)]).pass);
        // A fraction of an image in the ledger = a lane leaked a partial.
        let c = bulk_isolation(&[rec(500, Outcome::Ok, true)]);
        assert!(!c.pass);
        assert!(c.detail.contains("partial upload"));
        // Ok with a wrong solution = foreign bytes in the image.
        let c = bulk_isolation(&[rec(1000, Outcome::Ok, false)]);
        assert!(!c.pass);
        assert!(c.detail.contains("wrong solution"));
        // Anything besides Ok/Timeout under pure loss = corruption escaped.
        let c = bulk_isolation(&[rec(1000, Outcome::Transport, true)]);
        assert!(!c.pass);
        assert!(c.detail.contains("Transport"));
        // A record with no chunk-eligible argument is a harness bug.
        assert!(
            !bulk_isolation(&[BulkRecord {
                image_bytes: 0,
                ..rec(0, Outcome::Ok, true)
            }])
            .pass
        );
    }

    #[test]
    fn tx_exactly_once_flags_doubles() {
        assert!(tx_exactly_once(&[1, 1, 1]).pass);
        let c = tx_exactly_once(&[1, 2, 1]);
        assert!(!c.pass);
        assert!(c.detail.contains("#1"));
        assert!(!tx_exactly_once(&[0]).pass);
    }
}
