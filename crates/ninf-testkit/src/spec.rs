//! Declarative chaos scenarios: a workload (reusing
//! [`ninf_loadgen::WorkloadSpec`]), a fleet shape, and a fault plan, plus a
//! canonical fingerprint so a reproducer command pins *exactly* what ran.

use std::time::Duration;

use ninf_client::CallOptions;
use ninf_loadgen::{Arrival, MixEntry, Phases, Routine, WorkloadSpec};
use ninf_protocol::FaultPlan;
use ninf_server::DEFAULT_ARG_CACHE_BYTES;

/// Everything one chaos run needs besides the seed.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Concurrent live clients in the call leg.
    pub clients: usize,
    /// What each client calls and under which reliability policy.
    pub workload: WorkloadSpec,
    /// Fault plan template; the per-client seed is derived from the run
    /// seed, everything else is taken verbatim.
    pub faults: FaultPlan,
    /// Live in-process servers to spawn.
    pub servers: usize,
    /// PEs per server.
    pub pes: usize,
    /// Unreachable addresses additionally registered with the metaserver
    /// (transaction leg only) to force failure accounting.
    pub dead_servers: usize,
    /// Calls in the metaserver transaction leg; 0 skips the leg.
    pub tx_calls: usize,
    /// Server argument-cache budget in bytes. Undersizing it below one
    /// call's cacheable payload forces a `NeedArg` → inline-refill round on
    /// every warm call, pushing the refill leg through the fault injector.
    /// Excluded from the fingerprint: it shapes the server, not the load.
    pub arg_cache_bytes: usize,
}

/// FNV-1a (the same hash reports use for schedules).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl ChaosSpec {
    /// Canonical byte encoding of every load-shaping field. The fault
    /// seed is *excluded*: it is derived from the run seed, so one
    /// fingerprint covers the whole seed range of `hunt`.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.name.as_bytes());
        push_u64(&mut out, self.clients as u64);
        push_u64(&mut out, self.servers as u64);
        push_u64(&mut out, self.pes as u64);
        push_u64(&mut out, self.dead_servers as u64);
        push_u64(&mut out, self.tx_calls as u64);
        for e in &self.workload.mix {
            out.extend_from_slice(e.routine.name().as_bytes());
            push_u64(&mut out, e.routine.scalar() as u64);
            push_u64(&mut out, u64::from(e.weight));
        }
        match self.workload.arrival {
            Arrival::Closed { think } => {
                out.push(0);
                push_f64(&mut out, think.as_secs_f64());
            }
            Arrival::Open { rate_hz } => {
                out.push(1);
                push_f64(&mut out, rate_hz);
            }
        }
        push_f64(&mut out, self.workload.phases.ramp_up);
        push_f64(&mut out, self.workload.phases.steady);
        push_f64(&mut out, self.workload.phases.ramp_down);
        push_u64(&mut out, self.workload.calls_per_client as u64);
        push_f64(
            &mut out,
            self.workload
                .options
                .deadline
                .map_or(-1.0, |d| d.as_secs_f64()),
        );
        push_u64(&mut out, u64::from(self.workload.options.retries));
        push_f64(&mut out, self.workload.options.backoff.as_secs_f64());
        push_f64(&mut out, self.faults.drop_prob);
        push_f64(&mut out, self.faults.delay_prob);
        push_f64(&mut out, self.faults.delay.as_secs_f64());
        push_f64(&mut out, self.faults.truncate_prob);
        push_f64(&mut out, self.faults.garble_prob);
        out
    }

    /// Stable spec fingerprint, printed in every transcript and reproducer.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.canonical_bytes())
    }

    /// Fault plan of `client` in a run seeded with `seed`: the template
    /// with a decorrelated per-client RNG seed (same constants the
    /// workload spec uses for its per-client streams).
    pub fn client_faults(&self, seed: u64, client: usize) -> FaultPlan {
        FaultPlan {
            seed: seed
                ^ 0x000c_4a05_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (client as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            ..self.faults
        }
    }
}

/// Names of every built-in chaos scenario, in menu order.
pub fn chaos_names() -> Vec<&'static str> {
    vec![
        "clean",
        "drop-delay",
        "corrupt",
        "meta-ft",
        "argcache-refill",
    ]
}

fn ep_workload(calls: usize, deadline_ms: u64) -> WorkloadSpec {
    WorkloadSpec {
        mix: vec![MixEntry {
            routine: Routine::Ep { m: 8 },
            weight: 1,
        }],
        arrival: Arrival::Closed {
            think: Duration::ZERO,
        },
        phases: Phases::none(),
        calls_per_client: calls,
        options: CallOptions {
            deadline: Some(Duration::from_millis(deadline_ms)),
            retries: 0,
            backoff: Duration::from_millis(10),
            ..CallOptions::default()
        },
    }
}

/// Look up a built-in chaos scenario by name.
pub fn chaos(name: &str) -> Option<ChaosSpec> {
    match name {
        // Fault-free control: every invariant must hold trivially, every
        // call must succeed, and every trace must be connected.
        "clean" => Some(ChaosSpec {
            name: "clean",
            about: "fault-free control run: all calls succeed, all invariants hold",
            clients: 2,
            workload: ep_workload(6, 2000),
            faults: FaultPlan::default(),
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // Lost and stalled messages: drops surface as client deadline
        // expiries, delays complete inside the deadline. Conservation must
        // hold exactly; the fault schedule is pinned by the seed.
        "drop-delay" => Some(ChaosSpec {
            name: "drop-delay",
            about: "seeded drops (timeout) and sub-deadline delays on the client send path",
            clients: 3,
            workload: ep_workload(8, 600),
            faults: FaultPlan {
                drop_prob: 0.12,
                delay_prob: 0.10,
                delay: Duration::from_millis(30),
                ..FaultPlan::default()
            },
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // On-the-wire corruption: the payload CRC must reject every
        // truncated/garbled frame with a typed error — zero frames decode
        // after corruption, and no call on a corrupted stream succeeds.
        "corrupt" => Some(ChaosSpec {
            name: "corrupt",
            about: "seeded frame truncation/garbling; checksummed framing rejects every one",
            clients: 3,
            workload: ep_workload(8, 600),
            faults: FaultPlan {
                truncate_prob: 0.08,
                garble_prob: 0.08,
                ..FaultPlan::default()
            },
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // The fault-tolerant routing path: a transaction through a
        // metaserver whose directory includes an unreachable server, so
        // retries, quarantine, and the health-event log are all exercised.
        "meta-ft" => Some(ChaosSpec {
            name: "meta-ft",
            about:
                "metaserver transaction over a fleet with a dead member: quarantine + exactly-once",
            clients: 2,
            workload: WorkloadSpec {
                options: CallOptions {
                    deadline: Some(Duration::from_secs(2)),
                    retries: 1,
                    backoff: Duration::from_millis(20),
                    ..CallOptions::default()
                },
                ..ep_workload(4, 2000)
            },
            faults: FaultPlan::default(),
            servers: 2,
            pes: 2,
            dead_servers: 1,
            // 9 round-robin picks over 3 directory entries hand the dead
            // member 3 first attempts — exactly the quarantine threshold.
            tx_calls: 9,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // The argument-cache refill leg under fire: an iterative N-body
        // workload whose repeat arrays the clients ship as digests, against
        // a server whose arg store is budgeted *below* one call's cacheable
        // payload — so (nearly) every warm call draws a `NeedArg` and an
        // inline refill, and that extra leg runs through the same seeded
        // fault injector as everything else. Exactly-once and conservation
        // must hold whether the drop/garble lands on the ref send, the
        // NeedArg reply, or the refill itself.
        "argcache-refill" => Some(ChaosSpec {
            name: "argcache-refill",
            about:
                "iterative N-body refs against an undersized arg store: NeedArg refill under faults",
            clients: 3,
            workload: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Nbody { n: 256 },
                    weight: 1,
                }],
                arrival: Arrival::Closed {
                    think: Duration::ZERO,
                },
                phases: Phases::none(),
                calls_per_client: 8,
                options: CallOptions {
                    deadline: Some(Duration::from_millis(800)),
                    retries: 0,
                    backoff: Duration::from_millis(10),
                    ..CallOptions::default()
                },
            },
            faults: FaultPlan {
                drop_prob: 0.06,
                delay_prob: 0.06,
                delay: Duration::from_millis(20),
                truncate_prob: 0.04,
                garble_prob: 0.04,
                ..FaultPlan::default()
            },
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            // masses (2 KiB) fits, pos (6 KiB) can never be retained:
            // every warm call misses on pos and must refill inline.
            arg_cache_bytes: 4096,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in chaos_names() {
            let spec = chaos(name).expect("listed scenario exists");
            assert_eq!(spec.name, name);
            assert!(spec.clients > 0 && spec.servers > 0);
            // Any plan that can silence a message must pair with a client
            // deadline, or a dropped send would hang the harness.
            if spec.faults.drop_prob > 0.0 {
                assert!(spec.workload.options.deadline.is_some());
            }
        }
        assert!(chaos("no-such").is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_seed_independent() {
        let a = chaos("drop-delay").unwrap();
        let b = chaos("drop-delay").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Distinct scenarios fingerprint differently.
        assert_ne!(a.fingerprint(), chaos("clean").unwrap().fingerprint());
        // The per-run fault seed does not enter the fingerprint.
        let mut c = a.clone();
        c.faults.seed = 999;
        assert_eq!(c.fingerprint(), a.fingerprint());
        // Nor does the server's arg-cache budget — it shapes the server,
        // not the offered load, so pre-cache transcripts stay pinned.
        let mut d = a.clone();
        d.arg_cache_bytes = 0;
        assert_eq!(d.fingerprint(), a.fingerprint());
    }

    #[test]
    fn argcache_refill_is_shaped_to_force_refills() {
        let spec = chaos("argcache-refill").unwrap();
        assert!(spec
            .workload
            .mix
            .iter()
            .all(|e| matches!(e.routine, Routine::Nbody { .. })));
        assert!(spec.workload.options.arg_cache);
        // The budget must sit below one call's cacheable payload (masses
        // 8n + pos 24n bytes) so warm calls keep drawing NeedArg.
        let Routine::Nbody { n } = spec.workload.mix[0].routine else {
            unreachable!()
        };
        assert!(spec.arg_cache_bytes < 32 * n);
        // And the plan must be able to hit every leg of the refill.
        assert!(spec.faults.drop_prob > 0.0 && spec.faults.garble_prob > 0.0);
        assert!(spec.workload.options.deadline.is_some());
    }

    #[test]
    fn client_fault_plans_are_decorrelated() {
        let spec = chaos("drop-delay").unwrap();
        let p0 = spec.client_faults(7, 0);
        let p1 = spec.client_faults(7, 1);
        assert_ne!(p0.seed, p1.seed);
        assert_eq!(p0.drop_prob, spec.faults.drop_prob);
        // Same (seed, client) → same plan seed.
        assert_eq!(p0.seed, spec.client_faults(7, 0).seed);
    }
}
