//! Declarative chaos scenarios: a workload (reusing
//! [`ninf_loadgen::WorkloadSpec`]), a fleet shape, and a fault plan, plus a
//! canonical fingerprint so a reproducer command pins *exactly* what ran.

use std::time::Duration;

use ninf_client::CallOptions;
use ninf_loadgen::{Arrival, MixEntry, Phases, Routine, WorkloadSpec};
use ninf_protocol::{FaultPlan, LinkShape};
use ninf_server::DEFAULT_ARG_CACHE_BYTES;

/// Everything one chaos run needs besides the seed.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Concurrent live clients in the call leg.
    pub clients: usize,
    /// What each client calls and under which reliability policy.
    pub workload: WorkloadSpec,
    /// Fault plan template; the per-client seed is derived from the run
    /// seed, everything else is taken verbatim.
    pub faults: FaultPlan,
    /// Live in-process servers to spawn.
    pub servers: usize,
    /// PEs per server.
    pub pes: usize,
    /// Unreachable addresses additionally registered with the metaserver
    /// (transaction leg only) to force failure accounting.
    pub dead_servers: usize,
    /// Calls in the metaserver transaction leg; 0 skips the leg.
    pub tx_calls: usize,
    /// Server argument-cache budget in bytes. Undersizing it below one
    /// call's cacheable payload forces a `NeedArg` → inline-refill round on
    /// every warm call, pushing the refill leg through the fault injector.
    /// Excluded from the fingerprint: it shapes the server, not the load.
    pub arg_cache_bytes: usize,
}

/// FNV-1a (the same hash reports use for schedules).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl ChaosSpec {
    /// Canonical byte encoding of every load-shaping field. The fault
    /// seed is *excluded*: it is derived from the run seed, so one
    /// fingerprint covers the whole seed range of `hunt`.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.name.as_bytes());
        push_u64(&mut out, self.clients as u64);
        push_u64(&mut out, self.servers as u64);
        push_u64(&mut out, self.pes as u64);
        push_u64(&mut out, self.dead_servers as u64);
        push_u64(&mut out, self.tx_calls as u64);
        for e in &self.workload.mix {
            out.extend_from_slice(e.routine.name().as_bytes());
            push_u64(&mut out, e.routine.scalar() as u64);
            push_u64(&mut out, u64::from(e.weight));
        }
        match self.workload.arrival {
            Arrival::Closed { think } => {
                out.push(0);
                push_f64(&mut out, think.as_secs_f64());
            }
            Arrival::Open { rate_hz } => {
                out.push(1);
                push_f64(&mut out, rate_hz);
            }
        }
        push_f64(&mut out, self.workload.phases.ramp_up);
        push_f64(&mut out, self.workload.phases.steady);
        push_f64(&mut out, self.workload.phases.ramp_down);
        push_u64(&mut out, self.workload.calls_per_client as u64);
        push_f64(
            &mut out,
            self.workload
                .options
                .deadline
                .map_or(-1.0, |d| d.as_secs_f64()),
        );
        push_u64(&mut out, u64::from(self.workload.options.retries));
        push_f64(&mut out, self.workload.options.backoff.as_secs_f64());
        push_f64(&mut out, self.faults.drop_prob);
        push_f64(&mut out, self.faults.delay_prob);
        push_f64(&mut out, self.faults.delay.as_secs_f64());
        push_f64(&mut out, self.faults.truncate_prob);
        push_f64(&mut out, self.faults.garble_prob);
        // Bulk-transfer and WAN-shaping knobs shape the offered load just
        // like the fault probabilities do, so they are pinned too. The
        // shape's *seed* is excluded for the same reason the fault seed
        // is: it is derived from the run seed.
        out.push(u8::from(self.workload.unique_args));
        push_u64(&mut out, u64::from(self.workload.options.streams));
        push_u64(&mut out, u64::from(self.workload.options.chunk_bytes));
        push_f64(
            &mut out,
            self.workload
                .options
                .lane_deadline
                .map_or(-1.0, |d| d.as_secs_f64()),
        );
        match self.workload.options.wan {
            None => out.push(0),
            Some(shape) => {
                out.push(1);
                push_u64(&mut out, shape.bytes_per_sec);
                push_u64(&mut out, shape.delay_us);
                push_u64(&mut out, u64::from(shape.loss_ppm));
                push_u64(&mut out, u64::from(shape.congestion_ppm));
            }
        }
        out
    }

    /// Stable spec fingerprint, printed in every transcript and reproducer.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.canonical_bytes())
    }

    /// Fault plan of `client` in a run seeded with `seed`: the template
    /// with a decorrelated per-client RNG seed (same constants the
    /// workload spec uses for its per-client streams).
    pub fn client_faults(&self, seed: u64, client: usize) -> FaultPlan {
        FaultPlan {
            seed: seed
                ^ 0x000c_4a05_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (client as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            ..self.faults
        }
    }

    /// Link shape of a run seeded with `seed`, if the scenario shapes the
    /// WAN: the template with a run-derived RNG seed, shared by *every*
    /// client so all of one destination's lanes contend for one emulated
    /// bottleneck with one deterministic loss schedule.
    pub fn link_shape(&self, seed: u64) -> Option<LinkShape> {
        self.workload.options.wan.map(|shape| LinkShape {
            seed: seed ^ 0x0014_ad1e_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..shape
        })
    }

    /// Whether this scenario drives the parallel-stream bulk path (and the
    /// harness therefore records a per-call bulk ledger).
    pub fn bulk_leg(&self) -> bool {
        self.workload.options.streams >= 1
    }
}

/// Names of every built-in chaos scenario, in menu order.
pub fn chaos_names() -> Vec<&'static str> {
    vec![
        "clean",
        "drop-delay",
        "corrupt",
        "meta-ft",
        "argcache-refill",
        "wan-partition",
    ]
}

fn ep_workload(calls: usize, deadline_ms: u64) -> WorkloadSpec {
    WorkloadSpec {
        mix: vec![MixEntry {
            routine: Routine::Ep { m: 8 },
            weight: 1,
        }],
        arrival: Arrival::Closed {
            think: Duration::ZERO,
        },
        phases: Phases::none(),
        calls_per_client: calls,
        unique_args: false,
        options: CallOptions {
            deadline: Some(Duration::from_millis(deadline_ms)),
            retries: 0,
            backoff: Duration::from_millis(10),
            ..CallOptions::default()
        },
    }
}

/// Look up a built-in chaos scenario by name.
pub fn chaos(name: &str) -> Option<ChaosSpec> {
    match name {
        // Fault-free control: every invariant must hold trivially, every
        // call must succeed, and every trace must be connected.
        "clean" => Some(ChaosSpec {
            name: "clean",
            about: "fault-free control run: all calls succeed, all invariants hold",
            clients: 2,
            workload: ep_workload(6, 2000),
            faults: FaultPlan::default(),
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // Lost and stalled messages: drops surface as client deadline
        // expiries, delays complete inside the deadline. Conservation must
        // hold exactly; the fault schedule is pinned by the seed.
        "drop-delay" => Some(ChaosSpec {
            name: "drop-delay",
            about: "seeded drops (timeout) and sub-deadline delays on the client send path",
            clients: 3,
            workload: ep_workload(8, 600),
            faults: FaultPlan {
                drop_prob: 0.12,
                delay_prob: 0.10,
                delay: Duration::from_millis(30),
                ..FaultPlan::default()
            },
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // On-the-wire corruption: the payload CRC must reject every
        // truncated/garbled frame with a typed error — zero frames decode
        // after corruption, and no call on a corrupted stream succeeds.
        "corrupt" => Some(ChaosSpec {
            name: "corrupt",
            about: "seeded frame truncation/garbling; checksummed framing rejects every one",
            clients: 3,
            workload: ep_workload(8, 600),
            faults: FaultPlan {
                truncate_prob: 0.08,
                garble_prob: 0.08,
                ..FaultPlan::default()
            },
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // The fault-tolerant routing path: a transaction through a
        // metaserver whose directory includes an unreachable server, so
        // retries, quarantine, and the health-event log are all exercised.
        "meta-ft" => Some(ChaosSpec {
            name: "meta-ft",
            about:
                "metaserver transaction over a fleet with a dead member: quarantine + exactly-once",
            clients: 2,
            workload: WorkloadSpec {
                options: CallOptions {
                    deadline: Some(Duration::from_secs(2)),
                    retries: 1,
                    backoff: Duration::from_millis(20),
                    ..CallOptions::default()
                },
                ..ep_workload(4, 2000)
            },
            faults: FaultPlan::default(),
            servers: 2,
            pes: 2,
            dead_servers: 1,
            // 9 round-robin picks over 3 directory entries hand the dead
            // member 3 first attempts — exactly the quarantine threshold.
            tx_calls: 9,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        // The argument-cache refill leg under fire: an iterative N-body
        // workload whose repeat arrays the clients ship as digests, against
        // a server whose arg store is budgeted *below* one call's cacheable
        // payload — so (nearly) every warm call draws a `NeedArg` and an
        // inline refill, and that extra leg runs through the same seeded
        // fault injector as everything else. Exactly-once and conservation
        // must hold whether the drop/garble lands on the ref send, the
        // NeedArg reply, or the refill itself.
        "argcache-refill" => Some(ChaosSpec {
            name: "argcache-refill",
            about:
                "iterative N-body refs against an undersized arg store: NeedArg refill under faults",
            clients: 3,
            workload: WorkloadSpec {
                mix: vec![MixEntry {
                    routine: Routine::Nbody { n: 256 },
                    weight: 1,
                }],
                arrival: Arrival::Closed {
                    think: Duration::ZERO,
                },
                phases: Phases::none(),
                calls_per_client: 8,
                unique_args: false,
                options: CallOptions {
                    deadline: Some(Duration::from_millis(800)),
                    retries: 0,
                    backoff: Duration::from_millis(10),
                    ..CallOptions::default()
                },
            },
            faults: FaultPlan {
                drop_prob: 0.06,
                delay_prob: 0.06,
                delay: Duration::from_millis(20),
                truncate_prob: 0.04,
                garble_prob: 0.04,
                ..FaultPlan::default()
            },
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            // masses (2 KiB) fits, pos (6 KiB) can never be retained:
            // every warm call misses on pos and must refill inline.
            arg_cache_bytes: 4096,
        }),
        // The parallel-stream bulk path over a lossy shaped link: every
        // call pre-ships a fresh (salted) Linpack matrix as chunks fanned
        // out over 4 lanes, and the link's seeded loss schedule lands
        // mid-transfer bursts on individual lanes — retransmits, lane
        // deaths, and redials all happen *inside* the upload. The bulk
        // invariants then assert the blast radius: uploads are
        // all-or-nothing in the ledger, an `Ok` call's solution proves the
        // server computed on exactly the shipped bytes, and pure loss can
        // only delay or time a call out, never corrupt it.
        "wan-partition" => Some(ChaosSpec {
            name: "wan-partition",
            about: "chunk fan-out over a lossy shaped link: lane deaths fail only their own chunks",
            clients: 2,
            workload: WorkloadSpec {
                mix: vec![MixEntry {
                    // 96x96 doubles = 72 KiB: above the chunk threshold,
                    // while the 768-byte b vector stays inline — exactly
                    // one bulk image per call.
                    routine: Routine::Linpack { n: 96 },
                    weight: 1,
                }],
                arrival: Arrival::Closed {
                    think: Duration::ZERO,
                },
                phases: Phases::none(),
                calls_per_client: 2,
                // Salted arrays: no two calls ship the same digest, so
                // every call re-runs the whole fan-out under fresh loss
                // draws instead of hitting the argument cache.
                unique_args: true,
                options: CallOptions {
                    // The per-op deadline only expires on a genuinely lost
                    // control frame (queueing tops out near 5 ms), so a
                    // timeout is evidence of loss, and retries absorb it.
                    deadline: Some(Duration::from_millis(1500)),
                    retries: 2,
                    backoff: Duration::from_millis(20),
                    streams: 4,
                    chunk_bytes: 8192,
                    // A few shaped round trips: a lost chunk stalls its
                    // lane for 60 ms, and four straight losses on one
                    // chunk kill the lane (redial, then give up).
                    lane_deadline: Some(Duration::from_millis(60)),
                    wan: Some(LinkShape {
                        bytes_per_sec: 32_000_000,
                        delay_us: 2_000,
                        loss_ppm: 30_000,
                        congestion_ppm: 5_000,
                        // Replaced per run via `link_shape(seed)`.
                        seed: 0,
                    }),
                    ..CallOptions::default()
                },
            },
            faults: FaultPlan::default(),
            servers: 1,
            pes: 2,
            dead_servers: 0,
            tx_calls: 0,
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in chaos_names() {
            let spec = chaos(name).expect("listed scenario exists");
            assert_eq!(spec.name, name);
            assert!(spec.clients > 0 && spec.servers > 0);
            // Any plan that can silence a message must pair with a client
            // deadline, or a dropped send would hang the harness.
            if spec.faults.drop_prob > 0.0 {
                assert!(spec.workload.options.deadline.is_some());
            }
        }
        assert!(chaos("no-such").is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_seed_independent() {
        let a = chaos("drop-delay").unwrap();
        let b = chaos("drop-delay").unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Distinct scenarios fingerprint differently.
        assert_ne!(a.fingerprint(), chaos("clean").unwrap().fingerprint());
        // The per-run fault seed does not enter the fingerprint.
        let mut c = a.clone();
        c.faults.seed = 999;
        assert_eq!(c.fingerprint(), a.fingerprint());
        // Nor does the server's arg-cache budget — it shapes the server,
        // not the offered load, so pre-cache transcripts stay pinned.
        let mut d = a.clone();
        d.arg_cache_bytes = 0;
        assert_eq!(d.fingerprint(), a.fingerprint());
    }

    #[test]
    fn argcache_refill_is_shaped_to_force_refills() {
        let spec = chaos("argcache-refill").unwrap();
        assert!(spec
            .workload
            .mix
            .iter()
            .all(|e| matches!(e.routine, Routine::Nbody { .. })));
        assert!(spec.workload.options.arg_cache);
        // The budget must sit below one call's cacheable payload (masses
        // 8n + pos 24n bytes) so warm calls keep drawing NeedArg.
        let Routine::Nbody { n } = spec.workload.mix[0].routine else {
            unreachable!()
        };
        assert!(spec.arg_cache_bytes < 32 * n);
        // And the plan must be able to hit every leg of the refill.
        assert!(spec.faults.drop_prob > 0.0 && spec.faults.garble_prob > 0.0);
        assert!(spec.workload.options.deadline.is_some());
    }

    #[test]
    fn wan_partition_is_shaped_to_stress_the_bulk_lanes() {
        let spec = chaos("wan-partition").unwrap();
        assert!(spec.bulk_leg());
        assert!(
            spec.workload.unique_args,
            "repeat digests would skip the fan-out"
        );
        assert!(spec.workload.options.streams > 1);
        let shape = spec.workload.options.wan.expect("shaped link");
        assert!(
            shape.loss_ppm > 0,
            "lossless links cannot burst mid-transfer"
        );
        // The lane deadline must sit far below the call deadline, or a
        // lost chunk would eat the whole call budget instead of
        // retransmitting.
        let lane = spec.workload.options.lane_deadline.unwrap();
        assert!(lane < spec.workload.options.deadline.unwrap() / 10);
        // And the matrix must clear the chunk threshold or nothing bulks.
        let Routine::Linpack { n } = spec.workload.mix[0].routine else {
            unreachable!()
        };
        assert!(8 * n * n >= ninf_protocol::CHUNK_THRESHOLD);
    }

    #[test]
    fn link_shape_is_run_derived_and_shared_by_clients() {
        let spec = chaos("wan-partition").unwrap();
        let a = spec.link_shape(7).unwrap();
        let b = spec.link_shape(7).unwrap();
        assert_eq!(a, b, "same run seed, same schedule");
        assert_ne!(a.seed, spec.link_shape(8).unwrap().seed);
        // Everything but the seed comes verbatim from the template.
        let template = spec.workload.options.wan.unwrap();
        assert_eq!(a.bytes_per_sec, template.bytes_per_sec);
        assert_eq!(a.loss_ppm, template.loss_ppm);
        // Unshaped scenarios have no link at any seed.
        assert!(chaos("clean").unwrap().link_shape(7).is_none());
    }

    #[test]
    fn fingerprint_pins_the_wan_and_bulk_knobs() {
        let base = chaos("wan-partition").unwrap();
        let mut streams = base.clone();
        streams.workload.options.streams += 1;
        assert_ne!(streams.fingerprint(), base.fingerprint());
        let mut chunk = base.clone();
        chunk.workload.options.chunk_bytes *= 2;
        assert_ne!(chunk.fingerprint(), base.fingerprint());
        let mut loss = base.clone();
        loss.workload.options.wan.as_mut().unwrap().loss_ppm += 1;
        assert_ne!(loss.fingerprint(), base.fingerprint());
        // The shape seed is run-derived, so (like the fault seed) it must
        // NOT enter the fingerprint.
        let mut seeded = base.clone();
        seeded.workload.options.wan.as_mut().unwrap().seed = 999;
        assert_eq!(seeded.fingerprint(), base.fingerprint());
    }

    #[test]
    fn client_fault_plans_are_decorrelated() {
        let spec = chaos("drop-delay").unwrap();
        let p0 = spec.client_faults(7, 0);
        let p1 = spec.client_faults(7, 1);
        assert_ne!(p0.seed, p1.seed);
        assert_eq!(p0.drop_prob, spec.faults.drop_prob);
        // Same (seed, client) → same plan seed.
        assert_eq!(p0.seed, spec.client_faults(7, 0).seed);
    }
}
