//! Live-vs-sim differential: run the same scalability scenario against the
//! real fleet (ninf-loadgen) and a matched ninf-sim world, and diff the two
//! *shapes* — per-call Mflops normalized to the single-client point —
//! within a declared tolerance.
//!
//! Absolute Mflops are incomparable (this host vs the modeled J90); the
//! paper's transferable claim is the per-client decline as clients contend
//! for the server, which both systems must reproduce.

use ninf_loadgen::{run_scenario, scenario};
use ninf_protocol::{ProtocolError, ProtocolResult};

/// Default tolerance on normalized per-call Mflops: the live decline and
/// the modeled decline may differ by this much per point before the check
/// fails. Generous because the live side runs on a loaded CI host; see
/// docs/TESTING.md for the policy.
pub const DEFAULT_TOLERANCE: f64 = 0.35;

/// One client-count sample of both curves.
#[derive(Debug, Clone, Copy)]
pub struct ShapePoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Live per-call Mflops, absolute.
    pub live_mflops: f64,
    /// Sim per-call Mflops, absolute.
    pub sim_mflops: f64,
    /// Live value normalized to the live curve's first point.
    pub live_norm: f64,
    /// Sim value normalized to the sim curve's first point.
    pub sim_norm: f64,
}

impl ShapePoint {
    /// Absolute difference of the normalized values.
    pub fn delta(&self) -> f64 {
        (self.live_norm - self.sim_norm).abs()
    }
}

/// The whole differential verdict.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Scenario compared.
    pub scenario: String,
    /// Per-client-count samples.
    pub points: Vec<ShapePoint>,
    /// Declared tolerance on normalized values.
    pub tolerance: f64,
}

impl DiffReport {
    /// Whether every point's shapes agree within tolerance.
    pub fn pass(&self) -> bool {
        self.points.iter().all(|p| p.delta() <= self.tolerance)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "# live-vs-sim differential: {} (tolerance {:.2} on normalized Mflops)\n\
             # {:>7} {:>12} {:>12} {:>10} {:>10} {:>8} verdict\n",
            self.scenario,
            self.tolerance,
            "clients",
            "live_mflops",
            "sim_mflops",
            "live_norm",
            "sim_norm",
            "delta"
        );
        for p in &self.points {
            s += &format!(
                "  {:>7} {:>12.1} {:>12.1} {:>10.3} {:>10.3} {:>8.3} {}\n",
                p.clients,
                p.live_mflops,
                p.sim_mflops,
                p.live_norm,
                p.sim_norm,
                p.delta(),
                if p.delta() <= self.tolerance {
                    "ok"
                } else {
                    "DIVERGED"
                }
            );
        }
        s += &format!(
            "RESULT {} live-vs-sim scenario={}\n",
            if self.pass() { "PASS" } else { "FAIL" },
            self.scenario
        );
        s
    }
}

/// Sim per-call Mflops at each client count, from a scenario *matched* to
/// the live `lan-linpack` rig: saturated closed-loop clients against a
/// 1-PE FCFS server. (The paper-table experiments use the §4.1 model
/// program with think time, so their mid-range client counts never
/// saturate the modeled J90; the live rig is saturated by construction,
/// and only matched contention structures have comparable shapes.)
fn sim_curve(client_counts: &[usize], seed: u64) -> ProtocolResult<Vec<f64>> {
    use ninf_sim::{Scenario, Workload, World};

    let mut server = ninf_machine::j90();
    server.pes = 1;
    client_counts
        .iter()
        .map(|&c| {
            if c == 0 {
                return Err(ProtocolError::Remote(
                    "client count 0 in differential".into(),
                ));
            }
            let mut s = Scenario::lan(
                server.clone(),
                c,
                Workload::Linpack { n: 600 },
                ninf_server::ExecMode::TaskParallel,
                ninf_server::SchedPolicy::Fcfs,
                seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
            .saturated();
            // Long enough for every client to complete several calls even
            // when c of them timeshare the single PE (~2.2 s/call alone).
            s.duration = 120.0 + 40.0 * c as f64;
            s.warmup = 20.0;
            let cell = World::new(s).run();
            if cell.times == 0 {
                return Err(ProtocolError::Remote(format!(
                    "matched sim at c={c} completed no calls"
                )));
            }
            Ok(cell.perf.mean)
        })
        .collect()
}

/// Run the differential: live `lan-linpack` at each client count vs the
/// matched sim scenario, both normalized to their own first point.
pub fn live_vs_sim(
    client_counts: &[usize],
    seed: u64,
    tolerance: f64,
) -> ProtocolResult<DiffReport> {
    if client_counts.is_empty() {
        return Err(ProtocolError::Remote("no client counts to compare".into()));
    }
    let sc = scenario("lan-linpack")
        .ok_or_else(|| ProtocolError::Remote("scenario lan-linpack missing".into()))?;
    let mut live = Vec::with_capacity(client_counts.len());
    for &n in client_counts {
        let report = run_scenario(&sc, n, seed)?;
        if report.fleet.perf_calls == 0 {
            return Err(ProtocolError::Remote(format!(
                "live run at c={n} produced no successful Mflops samples"
            )));
        }
        live.push(report.fleet.perf.mean);
    }
    let sim = sim_curve(client_counts, seed)?;
    let live0 = live[0];
    let sim0 = sim[0];
    if live0 <= 0.0 || sim0 <= 0.0 {
        return Err(ProtocolError::Remote(
            "degenerate first point; cannot normalize".into(),
        ));
    }
    let points = client_counts
        .iter()
        .zip(live.iter().zip(sim.iter()))
        .map(|(&clients, (&l, &s))| ShapePoint {
            clients,
            live_mflops: l,
            sim_mflops: s,
            live_norm: l / live0,
            sim_norm: s / sim0,
        })
        .collect();
    Ok(DiffReport {
        scenario: "lan-linpack".into(),
        points,
        tolerance,
    })
}

/// One stream-count sample of both WAN goodput curves.
#[derive(Debug, Clone, Copy)]
pub struct WanShapePoint {
    /// Parallel bulk streams.
    pub streams: u32,
    /// Live bulk goodput, bytes/second.
    pub live_goodput: f64,
    /// FluidNet-predicted goodput, bytes/second.
    pub sim_goodput: f64,
    /// Live value normalized to the live curve's *best* point.
    pub live_norm: f64,
    /// Sim value normalized to the sim curve's *best* point.
    pub sim_norm: f64,
}

impl WanShapePoint {
    /// Absolute difference of the normalized values.
    pub fn delta(&self) -> f64 {
        (self.live_norm - self.sim_norm).abs()
    }
}

/// The WAN differential verdict: live parallel-stream goodput-vs-N against
/// the FluidNet prediction, both normalized to their own best point.
///
/// Max-normalization (instead of the scalability differential's
/// first-point normalization) keeps every normalized value in `[0, 1]`:
/// the goodput curve *rises* with N, so dividing by the N=1 point would
/// amplify absolute deltas at exactly the stream counts under test.
#[derive(Debug, Clone)]
pub struct WanDiffReport {
    /// Scenario compared.
    pub scenario: String,
    /// Per-stream-count samples.
    pub points: Vec<WanShapePoint>,
    /// Declared tolerance on normalized values.
    pub tolerance: f64,
}

impl WanDiffReport {
    /// Whether every point's shapes agree within tolerance.
    pub fn pass(&self) -> bool {
        self.points.iter().all(|p| p.delta() <= self.tolerance)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "# wan live-vs-sim differential: {} (tolerance {:.2} on max-normalized goodput)\n\
             # {:>7} {:>14} {:>14} {:>10} {:>10} {:>8} verdict\n",
            self.scenario,
            self.tolerance,
            "streams",
            "live_MiB/s",
            "sim_MiB/s",
            "live_norm",
            "sim_norm",
            "delta"
        );
        for p in &self.points {
            s += &format!(
                "  {:>7} {:>14.3} {:>14.3} {:>10.3} {:>10.3} {:>8.3} {}\n",
                p.streams,
                p.live_goodput / (1024.0 * 1024.0),
                p.sim_goodput / (1024.0 * 1024.0),
                p.live_norm,
                p.sim_norm,
                p.delta(),
                if p.delta() <= self.tolerance {
                    "ok"
                } else {
                    "DIVERGED"
                }
            );
        }
        s += &format!(
            "RESULT {} wan-live-vs-sim scenario={}\n",
            if self.pass() { "PASS" } else { "FAIL" },
            self.scenario
        );
        s
    }
}

/// Run the WAN differential: the live `wan-streams` scenario at each
/// stream count over a client-side shaped loopback link, against
/// [`ninf_netsim::wan`]'s FluidNet upload model under the *same* link
/// spec, chunk size, and lane deadline. Both curves are normalized to
/// their own best point and compared within `tolerance`.
///
/// The caller supplies the link `shape` (usually smaller/faster than the
/// committed benchmark's so the differential stays test-sized); the
/// scenario's stream knob is overridden per point.
pub fn wan_live_vs_sim(
    stream_counts: &[u32],
    shape: ninf_protocol::LinkShape,
    seed: u64,
    tolerance: f64,
) -> ProtocolResult<WanDiffReport> {
    if stream_counts.is_empty() {
        return Err(ProtocolError::Remote("no stream counts to compare".into()));
    }
    if stream_counts.contains(&0) {
        return Err(ProtocolError::Remote(
            "stream count 0 in wan differential".into(),
        ));
    }
    let base = scenario("wan-streams")
        .ok_or_else(|| ProtocolError::Remote("scenario wan-streams missing".into()))?;
    // One image per call: the scenario's single Linpack matrix.
    let ninf_loadgen::Routine::Linpack { n } = base.spec.mix[0].routine else {
        return Err(ProtocolError::Remote(
            "wan-streams no longer ships a Linpack matrix".into(),
        ));
    };
    let image_bytes =
        ninf_protocol::value_image(&ninf_protocol::Value::DoubleArray(vec![0.0; n * n])).len()
            as u64;
    let lane_deadline = base
        .spec
        .options
        .lane_deadline
        .or(base.spec.options.deadline)
        .map_or(2.0, |d| d.as_secs_f64());

    let mut live = Vec::with_capacity(stream_counts.len());
    for &streams in stream_counts {
        let mut sc = base.clone();
        sc.spec.options.wan = Some(shape);
        sc.spec.options.streams = streams;
        // Two calls per point keep the live half test-sized; the shape of
        // goodput-vs-N does not depend on how often it is measured.
        sc.spec.calls_per_client = 2;
        let report = run_scenario(&sc, 1, seed)?;
        // Goodput over the *upload phase* alone: call total minus the
        // connect/interface/marshal/roundtrip segments leaves the bulk
        // pre-ship. The FluidNet model predicts transfer; compute and
        // marshal time do not vary with N and would otherwise dilute the
        // normalized shape.
        let mut bulk = 0u64;
        let mut xfer = 0.0f64;
        for c in &report.calls {
            bulk += c.timing.bulk_bytes as u64;
            let t = &c.timing;
            let overhead = t.connect + t.interface + t.marshal + t.roundtrip;
            xfer += (t.total - overhead).max(0.0);
        }
        if bulk == 0 || xfer <= 0.0 {
            return Err(ProtocolError::Remote(format!(
                "live wan run at N={streams} shipped no bulk bytes"
            )));
        }
        live.push(bulk as f64 / xfer);
    }

    let spec = ninf_netsim::WanSpec {
        bytes_per_sec: shape.bytes_per_sec,
        delay_us: shape.delay_us,
        loss_ppm: shape.loss_ppm,
        congestion_ppm: shape.congestion_ppm,
        seed: shape.seed,
    };
    let sim: Vec<f64> = ninf_netsim::goodput_curve(
        &spec,
        image_bytes,
        base.spec.options.chunk_bytes,
        stream_counts,
        lane_deadline,
    )
    .iter()
    .map(|r| r.goodput)
    .collect();

    let live_best = live.iter().cloned().fold(f64::MIN, f64::max);
    let sim_best = sim.iter().cloned().fold(f64::MIN, f64::max);
    if live_best <= 0.0 || sim_best <= 0.0 {
        return Err(ProtocolError::Remote(
            "degenerate best point; cannot normalize".into(),
        ));
    }
    let points = stream_counts
        .iter()
        .zip(live.iter().zip(sim.iter()))
        .map(|(&streams, (&l, &s))| WanShapePoint {
            streams,
            live_goodput: l,
            sim_goodput: s,
            live_norm: l / live_best,
            sim_norm: s / sim_best,
        })
        .collect();
    Ok(WanDiffReport {
        scenario: "wan-streams".into(),
        points,
        tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(clients: usize, live_norm: f64, sim_norm: f64) -> ShapePoint {
        ShapePoint {
            clients,
            live_mflops: live_norm * 1000.0,
            sim_mflops: sim_norm * 500.0,
            live_norm,
            sim_norm,
        }
    }

    #[test]
    fn verdict_follows_tolerance() {
        let report = DiffReport {
            scenario: "lan-linpack".into(),
            points: vec![
                point(1, 1.0, 1.0),
                point(4, 0.27, 0.25),
                point(8, 0.13, 0.12),
            ],
            tolerance: 0.35,
        };
        assert!(report.pass());
        let diverged = DiffReport {
            points: vec![point(1, 1.0, 1.0), point(4, 0.9, 0.25)],
            ..report
        };
        assert!(!diverged.pass());
        assert!(diverged.render().contains("DIVERGED"));
    }

    #[test]
    fn sim_curve_declines_with_clients() {
        let sim = sim_curve(&[1, 4, 8], 1997).expect("table3 runs");
        assert!(sim[0] > sim[1] && sim[1] > sim[2], "sim curve: {sim:?}");
    }

    fn wan_point(streams: u32, live_norm: f64, sim_norm: f64) -> WanShapePoint {
        WanShapePoint {
            streams,
            live_goodput: live_norm * 4e6,
            sim_goodput: sim_norm * 5e6,
            live_norm,
            sim_norm,
        }
    }

    #[test]
    fn wan_verdict_follows_tolerance() {
        let report = WanDiffReport {
            scenario: "wan-streams".into(),
            points: vec![
                wan_point(1, 0.30, 0.26),
                wan_point(2, 0.58, 0.51),
                wan_point(4, 1.0, 1.0),
            ],
            tolerance: 0.35,
        };
        assert!(report.pass());
        assert!(report.render().contains("RESULT PASS"));
        let diverged = WanDiffReport {
            points: vec![wan_point(1, 0.95, 0.25), wan_point(4, 1.0, 1.0)],
            ..report
        };
        assert!(!diverged.pass());
        assert!(diverged.render().contains("DIVERGED"));
    }

    #[test]
    fn wan_differential_rejects_degenerate_inputs() {
        let shape = ninf_protocol::LinkShape::default();
        assert!(wan_live_vs_sim(&[], shape, 1, 0.35).is_err());
        assert!(wan_live_vs_sim(&[0, 2], shape, 1, 0.35).is_err());
    }
}
