//! ninf-testkit: a deterministic chaos/conformance harness for the live
//! Ninf stack.
//!
//! The paper's claim is behavioral — multi-client Ninf degrades
//! *predictably* under load and faults — so this crate turns that into
//! machine-checkable form. A [`ChaosSpec`] names a workload (reusing
//! [`ninf_loadgen::WorkloadSpec`]), a fleet shape, and a seeded
//! [`ninf_protocol::FaultPlan`]; [`run_chaos`] spawns the real fleet
//! (in-process `ninfd`s over loopback TCP), drives fault-injecting
//! clients plus an optional metaserver transaction leg, and evaluates:
//!
//! - **conservation** — calls issued == ok + remote + timeout + transport;
//! - **exactly-once** — every planned call has exactly one completion
//!   record (and every transaction call one slot write) under retries;
//! - **corruption-rejected** — once a truncate/garble fault fires on a
//!   client's stream, checksummed v2 framing guarantees no later call
//!   over that stream succeeds;
//! - **monotone-cursors** — `QueryStats` clocks and totals never regress,
//!   and cursor-driven fetches deliver each record exactly once;
//! - **window-cursors** — `QueryMetrics` polling delivers the metric
//!   window series exactly once: each poll returns precisely the
//!   contiguous `max(cursor, dropped)..total` indices, with monotone
//!   clock, total, and drop counters even across ring eviction;
//! - **trace-connected** — every successful call's trace forms one
//!   well-nested client+server tree in the flight recorder, with no
//!   corrupted-stream carve-out;
//! - **quarantine-legal** — the directory's health-event log replays
//!   legally: quarantine only at the threshold, reinstatement only after
//!   a success.
//! - **bulk-isolation** — for scenarios driving the parallel-stream chunk
//!   fan-out over a shaped link (`wan-partition`): uploads are
//!   all-or-nothing in the ledger, an `Ok` call's solution proves the
//!   server computed on exactly the shipped bytes, and pure loss may only
//!   delay or time a call out — a dying lane fails only its own chunks.
//!
//! Transcripts are bit-deterministic for a given `(spec, seed)`: they
//! carry the spec fingerprint and the *planned* fault/arrival schedule
//! fingerprints, never wall-clock-dependent counts. The same seed is the
//! whole reproducer — `ninf-chaos replay --scenario S --seed N`.
//!
//! [`live_vs_sim`] is the differential oracle: the live `lan-linpack`
//! scalability shape against a matched simulator scenario (saturated
//! closed-loop clients on a 1-PE server), normalized and compared within
//! a declared tolerance. [`wan_live_vs_sim`] is its WAN sibling: the live
//! `wan-streams` goodput-vs-stream-count shape over a shaped loopback
//! link against [`ninf_netsim::wan`]'s FluidNet upload model under the
//! same link spec, both max-normalized.

#![warn(missing_docs)]

pub mod differential;
pub mod harness;
pub mod invariants;
pub mod spec;

pub use differential::{
    live_vs_sim, wan_live_vs_sim, DiffReport, ShapePoint, WanDiffReport, WanShapePoint,
    DEFAULT_TOLERANCE,
};
pub use harness::{run_chaos, ChaosRun, Inject};
pub use invariants::{BulkRecord, CallRecord, Check, StatsPoll, WindowPoll};
pub use spec::{chaos, chaos_names, ChaosSpec};
