//! The WAN test battery: the `wan-partition` chaos scenario holding its
//! invariants under seeded loss, same-seed reproducibility down to the
//! byte, and the live shaped-loopback goodput shape agreeing with the
//! `ninf-netsim` FluidNet upload model.
//!
//! Everything here runs against real `ninfd` fleets over loopback TCP —
//! the only "network" is [`ninf_protocol::ShapedTransport`], so the whole
//! battery is deterministic for a given seed and safe for CI.

use ninf_protocol::LinkShape;
use ninf_testkit::{chaos, run_chaos, wan_live_vs_sim, ChaosRun, Inject, DEFAULT_TOLERANCE};

fn wan_partition(seed: u64) -> ChaosRun {
    let spec = chaos("wan-partition").expect("scenario registered");
    run_chaos(&spec, seed, Inject::None).expect("fleet spawns on loopback")
}

#[test]
fn wan_partition_holds_its_invariants_across_seeds() {
    // Two seeds with distinct loss schedules; the 100-seed sweep lives in
    // CI (`ninf-chaos hunt --scenario wan-partition`), this pins the two
    // ends locally.
    for seed in [1997u64, 4242] {
        let run = wan_partition(seed);
        assert!(run.pass(), "seed {seed} failed:\n{}", run.transcript);
        // The scenario is only meaningful if the bulk leg actually ran:
        // the transcript must pin the link shape it shipped over.
        assert!(
            run.transcript.contains("# wan "),
            "transcript must record the link shape:\n{}",
            run.transcript
        );
    }
}

#[test]
fn same_seed_wan_partition_runs_print_byte_identical_transcripts() {
    // The determinism contract: transcripts are pure functions of
    // (spec, seed). Loss schedules, lane deaths, and retransmit counts are
    // all wall-clock-adjacent, so none of them may leak into the bytes.
    let a = wan_partition(7);
    let b = wan_partition(7);
    assert_eq!(
        a.transcript, b.transcript,
        "same-seed transcripts must be byte-identical"
    );
}

#[test]
fn live_goodput_shape_matches_the_fluidnet_model() {
    // Loss-free shaping for the differential: a 16 MB/s cap with 5 ms of
    // propagation delay makes the stop-and-wait latency penalty — and so
    // the benefit of adding lanes — large and stable, without the run-to-
    // run variance a lossy schedule would add on a loaded CI host.
    let shape = LinkShape {
        bytes_per_sec: 16_000_000,
        delay_us: 5_000,
        loss_ppm: 0,
        congestion_ppm: 0,
        seed: 1,
    };
    let report = wan_live_vs_sim(&[1, 2, 4], shape, 1997, DEFAULT_TOLERANCE)
        .expect("live wan-streams leg runs");
    assert!(report.pass(), "{}", report.render());
}
