//! Operating-system accounting: CPU utilization and Unix load average.
//!
//! The paper reports, per benchmark cell, the server's "processor
//! utilization" and "load average" (§4.1). Both are reproduced here as
//! piecewise-continuous trackers driven by the simulator: whenever the number
//! of busy PEs or runnable tasks changes, the tracker integrates the elapsed
//! segment.

/// Time-weighted CPU utilization over a measurement window.
#[derive(Debug, Clone)]
pub struct CpuAccounting {
    pes: usize,
    busy: f64,
    last_update: f64,
    busy_pe_seconds: f64,
    window_start: f64,
}

impl CpuAccounting {
    /// Start accounting for a machine with `pes` processors at time `t0`.
    pub fn new(pes: usize, t0: f64) -> Self {
        Self {
            pes,
            busy: 0.0,
            last_update: t0,
            busy_pe_seconds: 0.0,
            window_start: t0,
        }
    }

    /// Record that from now on `busy` PEs are in use (may be fractional —
    /// marshalling tasks consume partial PEs).
    pub fn set_busy(&mut self, now: f64, busy: f64) {
        self.integrate(now);
        self.busy = busy.clamp(0.0, self.pes as f64);
    }

    fn integrate(&mut self, now: f64) {
        debug_assert!(now >= self.last_update - 1e-9);
        if now > self.last_update {
            self.busy_pe_seconds += self.busy * (now - self.last_update);
            self.last_update = now;
        }
    }

    /// Utilization percentage `[0, 100]` over the window so far.
    pub fn utilization_percent(&mut self, now: f64) -> f64 {
        self.integrate(now);
        let wall = now - self.window_start;
        if wall <= 0.0 {
            return 0.0;
        }
        100.0 * self.busy_pe_seconds / (wall * self.pes as f64)
    }

    /// Reset the measurement window (e.g. after warm-up).
    pub fn reset_window(&mut self, now: f64) {
        self.integrate(now);
        self.busy_pe_seconds = 0.0;
        self.window_start = now;
    }
}

/// Unix-style exponentially damped load average.
///
/// `load(t+Δ) = load(t)·e^(−Δ/τ) + n·(1 − e^(−Δ/τ))` with τ = 60 s, where
/// `n` is the current number of runnable tasks (running + queued). We also
/// track the *maximum* instantaneous load, since the paper quotes e.g. "max.
/// load average 30 for the 4-PE version" (§4.2.1).
#[derive(Debug, Clone)]
pub struct LoadAverage {
    tau: f64,
    value: f64,
    runnable: f64,
    last_update: f64,
    max_seen: f64,
    /// time-weighted mean of the damped load, for reporting
    weighted_sum: f64,
    window_start: f64,
}

impl LoadAverage {
    /// One-minute load average starting at `t0`.
    pub fn new(t0: f64) -> Self {
        Self::with_tau(t0, 60.0)
    }

    /// Load average with a custom damping constant.
    pub fn with_tau(t0: f64, tau: f64) -> Self {
        Self {
            tau,
            value: 0.0,
            runnable: 0.0,
            last_update: t0,
            max_seen: 0.0,
            weighted_sum: 0.0,
            window_start: t0,
        }
    }

    /// Record that from now on `n` tasks are runnable.
    pub fn set_runnable(&mut self, now: f64, n: f64) {
        self.integrate(now);
        self.runnable = n.max(0.0);
    }

    fn integrate(&mut self, now: f64) {
        debug_assert!(now >= self.last_update - 1e-9);
        let dt = (now - self.last_update).max(0.0);
        if dt > 0.0 {
            // Integrate the damped value's time-weighted mean over [last, now]
            // analytically: value decays toward `runnable` exponentially.
            let decay = (-dt / self.tau).exp();
            let old = self.value;
            let target = self.runnable;
            // mean of old*e^(-s/tau) + target*(1-e^(-s/tau)) over s in [0, dt]
            let mean = target + (old - target) * (self.tau / dt) * (1.0 - decay);
            self.weighted_sum += mean * dt;
            self.value = target + (old - target) * decay;
            self.max_seen = self.max_seen.max(self.value).max(old);
            self.last_update = now;
        }
    }

    /// Current damped load value.
    pub fn current(&mut self, now: f64) -> f64 {
        self.integrate(now);
        self.value
    }

    /// Time-weighted mean load over the window.
    pub fn mean(&mut self, now: f64) -> f64 {
        self.integrate(now);
        let wall = now - self.window_start;
        if wall <= 0.0 {
            return 0.0;
        }
        self.weighted_sum / wall
    }

    /// Maximum damped load seen.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Reset the reporting window.
    pub fn reset_window(&mut self, now: f64) {
        self.integrate(now);
        self.weighted_sum = 0.0;
        self.window_start = now;
        self.max_seen = self.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_fully_busy_machine_is_100() {
        let mut acc = CpuAccounting::new(4, 0.0);
        acc.set_busy(0.0, 4.0);
        assert!((acc.utilization_percent(10.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_half_busy() {
        let mut acc = CpuAccounting::new(4, 0.0);
        acc.set_busy(0.0, 2.0);
        assert!((acc.utilization_percent(10.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_piecewise() {
        let mut acc = CpuAccounting::new(2, 0.0);
        acc.set_busy(0.0, 2.0); // 100% for 5 s
        acc.set_busy(5.0, 0.0); // idle for 5 s
        assert!((acc.utilization_percent(10.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn busy_clamped_to_pe_count() {
        let mut acc = CpuAccounting::new(2, 0.0);
        acc.set_busy(0.0, 99.0);
        assert!((acc.utilization_percent(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn window_reset() {
        let mut acc = CpuAccounting::new(1, 0.0);
        acc.set_busy(0.0, 1.0);
        acc.reset_window(10.0);
        acc.set_busy(10.0, 0.0);
        assert!(acc.utilization_percent(20.0) < 1e-9);
    }

    #[test]
    fn load_average_converges_to_runnable() {
        let mut la = LoadAverage::new(0.0);
        la.set_runnable(0.0, 8.0);
        // After 10 time constants the damped value is ~8.
        assert!((la.current(600.0) - 8.0).abs() < 0.01);
    }

    #[test]
    fn load_average_rises_with_tau() {
        let mut la = LoadAverage::new(0.0);
        la.set_runnable(0.0, 1.0);
        // After exactly tau, value = 1 - e^-1 ≈ 0.632.
        assert!((la.current(60.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn max_tracks_peak() {
        let mut la = LoadAverage::new(0.0);
        la.set_runnable(0.0, 16.0);
        la.set_runnable(300.0, 0.0);
        let _ = la.current(600.0);
        // value reached 16·(1 − e^−5) ≈ 15.89 before decaying
        assert!(la.max() > 15.8, "max = {}", la.max());
    }

    #[test]
    fn mean_of_constant_load_is_that_load_at_steady_state() {
        let mut la = LoadAverage::with_tau(0.0, 1.0); // fast tau for the test
        la.set_runnable(0.0, 4.0);
        let m = la.mean(1000.0);
        assert!((m - 4.0).abs() < 0.01, "mean = {m}");
    }

    #[test]
    fn zero_elapsed_time_is_safe() {
        let mut la = LoadAverage::new(5.0);
        la.set_runnable(5.0, 3.0);
        assert_eq!(la.mean(5.0), 0.0);
        let mut acc = CpuAccounting::new(2, 5.0);
        assert_eq!(acc.utilization_percent(5.0), 0.0);
    }
}
