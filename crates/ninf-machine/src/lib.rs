//! Calibrated models of the 1997 machines and operating-system behaviour in
//! the paper's testbed.
//!
//! The original hardware — a 4-PE Cray J90 at ETL, SuperSPARC and UltraSPARC
//! workstations, a 16-processor SuperSPARC SMP, and a DEC Alpha workstation
//! cluster — is unobtainable, so each machine is modelled by the parameters
//! that determine every result in the paper:
//!
//! * a **Linpack rate curve** `P_calc(n)` (paper §3.1) — for vector machines
//!   the classic `r∞ · n / (n½ + n)` law, for RISC workstations a flat rate;
//! * an **EP rate** in Mops per PE (paper §4.3);
//! * an **XDR marshalling rate** per PE — marshalling executes on server PEs
//!   and contends with computation, which is why LAN throughput decays as CPU
//!   utilization saturates (Tables 3/4: "server CPU utilization dominates LAN
//!   performance");
//! * PE count, per-call accept overhead, and an SMP thread-switch penalty
//!   (§4.2.1: "highly-multithreaded versions exhibit notable slowdown").
//!
//! All parameters are back-solved from the paper's own published tables; the
//! calibration arithmetic is documented in DESIGN.md §2 and asserted by the
//! tests in [`catalog`].

pub mod accounting;
pub mod catalog;
pub mod perf;

pub use accounting::{CpuAccounting, LoadAverage};
pub use catalog::{alpha, alpha_cluster_node, j90, sparc_smp, supersparc, ultrasparc, MachineSpec};
pub use perf::LinpackModel;
