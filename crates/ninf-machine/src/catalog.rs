//! The machine catalog: every platform in the paper's testbed (Figure 2),
//! with parameters back-solved from the published measurements.

use crate::perf::LinpackModel;

/// A modelled machine: either a Ninf computational server or a client host.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name as used in the paper.
    pub name: String,
    /// Number of processing elements.
    pub pes: usize,
    /// Linpack rate of the 1-PE (task-parallel) library on this machine.
    pub pe_linpack: LinpackModel,
    /// Linpack rate of the optimized data-parallel library using all PEs
    /// (libSci `sgetrf`/`sgetrs` on the J90).
    pub allpe_linpack: LinpackModel,
    /// EP rate in Mops (the paper's `2^{n+1}/T` unit) per PE.
    pub ep_mops_per_pe: f64,
    /// XDR marshalling throughput per fully-available PE, in bytes/second.
    /// Marshalling contends with computation for PEs.
    pub marshal_bytes_per_sec_per_pe: f64,
    /// Per-call accept/fork overhead in seconds (the server `fork & exec`s a
    /// Ninf executable per §5.2).
    pub accept_overhead_s: f64,
    /// Multiplicative per-extra-runnable-task slowdown on SMPs from thread
    /// switching / cache + TLB misses (§4.2.1). 0.0 = no penalty (J90's
    /// "switching parallel tasks … poses small relative overhead").
    pub thread_switch_penalty: f64,
}

impl MachineSpec {
    /// Linpack rate for a job using `pes_used` PEs: the data-parallel library
    /// when all PEs are used, the 1-PE library otherwise (intermediate
    /// widths interpolate linearly on the 1-PE rate).
    pub fn linpack_mflops(&self, n: u64, pes_used: usize) -> f64 {
        if pes_used >= self.pes {
            self.allpe_linpack.mflops(n)
        } else {
            self.pe_linpack.mflops(n) * pes_used as f64
        }
    }
}

/// The Cray J90 at ETL: 4 vector PEs.
///
/// Calibration: Table 3 (1-PE) at `n=1400, c=1` shows 113.65 Mflops observed
/// with 2.54 MB/s throughput; removing the communication time leaves
/// `P_calc(1400) ≈ 184` Mflops, and `n=600` gives `≈ 167` — a Hockney law
/// with `r∞ = 200, n½ = 120`. Table 4 (4-PE libSci) plus "J90's Local
/// achieves 600 Mflops when n = 1600" (§3.2) give `r∞ = 700, n½ = 260`.
/// Table 8 shows 0.167–0.168 Mops per client sustained up to c = 4 — one
/// PE delivers ≈ 0.168 EP Mops.
pub fn j90() -> MachineSpec {
    MachineSpec {
        name: "Cray J90 (ETL)".into(),
        pes: 4,
        pe_linpack: LinpackModel::Vector {
            r_inf: 200.0,
            n_half: 120.0,
        },
        allpe_linpack: LinpackModel::Vector {
            r_inf: 700.0,
            n_half: 260.0,
        },
        ep_mops_per_pe: 0.168,
        // Single client sustains ~2.5 MB/s into a lightly loaded J90 (Tables
        // 3/4 throughput column at c=1); at full CPU saturation the aggregate
        // decays toward a marshalling share of ~0.5 MB/s per busy stream.
        marshal_bytes_per_sec_per_pe: 3.0e6,
        accept_overhead_s: 0.02,
        thread_switch_penalty: 0.0,
    }
}

/// A SuperSPARC workstation client (Ocha-U nodes; Local ≈ 10 Mflops).
pub fn supersparc() -> MachineSpec {
    MachineSpec {
        name: "SuperSPARC".into(),
        pes: 1,
        pe_linpack: LinpackModel::Scalar { mflops: 10.0 },
        allpe_linpack: LinpackModel::Scalar { mflops: 10.0 },
        ep_mops_per_pe: 0.03,
        marshal_bytes_per_sec_per_pe: 4.5e6,
        accept_overhead_s: 0.05,
        thread_switch_penalty: 0.0,
    }
}

/// An UltraSPARC workstation (client, and the `Ultra` server of Table 1;
/// Local ≈ 35 Mflops with the blocked `glub4`).
pub fn ultrasparc() -> MachineSpec {
    MachineSpec {
        name: "UltraSPARC".into(),
        pes: 1,
        pe_linpack: LinpackModel::Scalar { mflops: 35.0 },
        allpe_linpack: LinpackModel::Scalar { mflops: 35.0 },
        ep_mops_per_pe: 0.09,
        marshal_bytes_per_sec_per_pe: 8.0e6,
        accept_overhead_s: 0.03,
        thread_switch_penalty: 0.0,
    }
}

/// A DEC Alpha workstation (cluster node).
///
/// Fig 4 puts the `Ninf_call`-to-J90 crossover against the *optimized* local
/// routine at `n ≈ 800–1000` → local ≈ 140 Mflops; against the *standard*
/// (unblocked) routine at `n ≈ 400–600` → ≈ 70 Mflops. The standard-routine
/// rate is exposed via [`alpha_standard_linpack`].
pub fn alpha() -> MachineSpec {
    MachineSpec {
        name: "Alpha".into(),
        pes: 1,
        pe_linpack: LinpackModel::Scalar { mflops: 140.0 },
        allpe_linpack: LinpackModel::Scalar { mflops: 140.0 },
        ep_mops_per_pe: 1.5,
        marshal_bytes_per_sec_per_pe: 9.0e6,
        accept_overhead_s: 0.02,
        thread_switch_penalty: 0.0,
    }
}

/// The unoptimized ("standard Linpack routines without blocking
/// optimizations", §3.2) local rate on the Alpha.
pub fn alpha_standard_linpack() -> LinpackModel {
    LinpackModel::Scalar { mflops: 70.0 }
}

/// One node of the 32-node Alpha cluster acting as a Ninf server (Fig 11).
pub fn alpha_cluster_node() -> MachineSpec {
    let mut m = alpha();
    m.name = "Alpha cluster node".into();
    m
}

/// The 16-processor SuperSPARC SMP server of Table 5.
///
/// Table 5 (`n=600, c=4`): 3.80 Mflops observed per client at ≈ 0.43 MB/s —
/// a per-PE compute rate of ≈ 5 Mflops once marshalling contention is
/// accounted for, with a notable per-call accept overhead (response ≈ 1.2 s)
/// and a Solaris thread-switch penalty that the multithreaded-library
/// ablation (A5) exercises.
pub fn sparc_smp() -> MachineSpec {
    MachineSpec {
        name: "SuperSPARC SMP (16 PE)".into(),
        pes: 16,
        pe_linpack: LinpackModel::Scalar { mflops: 5.0 },
        allpe_linpack: LinpackModel::Scalar { mflops: 48.0 }, // 16 PEs at ~60% parallel efficiency
        ep_mops_per_pe: 0.02,
        marshal_bytes_per_sec_per_pe: 1.2e6,
        accept_overhead_s: 1.1,
        thread_switch_penalty: 0.03,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The calibration must reproduce the paper's single-client anchors.
    #[test]
    fn j90_1pe_anchor_n600() {
        // Table 3, n=600, c=1: 71.16 Mflops at 2.48 MB/s.
        let m = j90();
        let n = 600u64;
        let t_comp = m.pe_linpack.solve_seconds(n);
        let bytes = (8 * n * n + 20 * n) as f64;
        let t_comm = bytes / 2.5e6;
        let p = LinpackModel::ninf_call_mflops(n, t_comp + t_comm);
        assert!((p - 71.16).abs() < 5.0, "predicted {p}, paper 71.16");
    }

    #[test]
    fn j90_1pe_anchor_n1400() {
        // Table 3, n=1400, c=1: 113.65 Mflops at 2.54 MB/s.
        let m = j90();
        let n = 1400u64;
        let t = m.pe_linpack.solve_seconds(n) + (8 * n * n + 20 * n) as f64 / 2.54e6;
        let p = LinpackModel::ninf_call_mflops(n, t);
        assert!((p - 113.65).abs() < 6.0, "predicted {p}, paper 113.65");
    }

    #[test]
    fn j90_4pe_anchor_n1400() {
        // Table 4, n=1400, c=1: 193.03 Mflops at 2.51 MB/s.
        let m = j90();
        let n = 1400u64;
        let t = m.allpe_linpack.solve_seconds(n) + (8 * n * n + 20 * n) as f64 / 2.51e6;
        let p = LinpackModel::ninf_call_mflops(n, t);
        assert!((p - 193.03).abs() < 10.0, "predicted {p}, paper 193.03");
    }

    #[test]
    fn j90_local_600mflops_at_1600() {
        // §3.2: "J90's Local achieves 600 Mflops when n = 1600".
        let p = j90().allpe_linpack.mflops(1600);
        assert!((p - 600.0).abs() < 15.0, "predicted {p}");
    }

    #[test]
    fn ep_rate_matches_table8() {
        // Table 8: 0.167 Mops per client at c=1 on the J90 (per-PE batch).
        let rate = j90().ep_mops_per_pe;
        assert!((rate - 0.167).abs() < 0.01);
    }

    #[test]
    fn ninf_beats_ultrasparc_local_between_200_and_400() {
        // Fig 3: Ninf_call to J90 overtakes UltraSPARC Local at n ≈ 200–400.
        let m = j90();
        let local = ultrasparc().pe_linpack;
        let p_at = |n: u64| {
            let t = m.allpe_linpack.solve_seconds(n) + (8 * n * n + 20 * n) as f64 / 2.5e6;
            LinpackModel::ninf_call_mflops(n, t)
        };
        assert!(p_at(150) < local.mflops(150));
        assert!(p_at(400) > local.mflops(400));
    }

    #[test]
    fn alpha_crossovers_match_fig4() {
        let m = j90();
        let p_at = |n: u64| {
            let t = m.allpe_linpack.solve_seconds(n) + (8 * n * n + 20 * n) as f64 / 2.5e6;
            LinpackModel::ninf_call_mflops(n, t)
        };
        // Optimized local (~140): crossover in 800..1200.
        assert!(p_at(700) < alpha().pe_linpack.mflops(700));
        assert!(p_at(1200) > alpha().pe_linpack.mflops(1200));
        // Standard local (~70): crossover in 300..600.
        assert!(p_at(300) < alpha_standard_linpack().mflops(300));
        assert!(p_at(600) > alpha_standard_linpack().mflops(600));
    }

    #[test]
    fn linpack_mflops_selects_library() {
        let m = j90();
        assert_eq!(m.linpack_mflops(600, 4), m.allpe_linpack.mflops(600));
        assert_eq!(m.linpack_mflops(600, 1), m.pe_linpack.mflops(600));
        assert_eq!(m.linpack_mflops(600, 2), 2.0 * m.pe_linpack.mflops(600));
    }
}
