//! Linpack performance-rate curves.

/// Linpack rate `P_calc(n)` in Mflops as a function of matrix order `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinpackModel {
    /// Hockney's vector-pipeline law `P(n) = r∞ · n / (n½ + n)`: rate
    /// approaches the asymptotic `r_inf` as vectors get long; `n_half` is
    /// the order achieving half of it. Fits the Cray J90's libSci curve.
    Vector {
        /// Asymptotic rate in Mflops.
        r_inf: f64,
        /// Matrix order at which half of `r_inf` is reached.
        n_half: f64,
    },
    /// Cache-based RISC workstation: approximately flat rate across n (the
    /// paper: "The performance of Local remains relatively constant across n
    /// for both SPARCs", §3.2).
    Scalar {
        /// Sustained rate in Mflops.
        mflops: f64,
    },
}

impl LinpackModel {
    /// Rate in Mflops at matrix order `n`.
    pub fn mflops(&self, n: u64) -> f64 {
        match *self {
            LinpackModel::Vector { r_inf, n_half } => r_inf * n as f64 / (n_half + n as f64),
            LinpackModel::Scalar { mflops } => mflops,
        }
    }

    /// Seconds of pure computation for one Linpack solve of order `n`
    /// (`(2/3·n³ + 2n²) / P_calc(n)`, paper §3.1).
    pub fn solve_seconds(&self, n: u64) -> f64 {
        let flops = (2.0 * (n as f64).powi(3)) / 3.0 + 2.0 * (n as f64).powi(2);
        flops / (self.mflops(n) * 1e6)
    }

    /// Client-observed `Ninf_call` performance in Mflops given a total call
    /// time `t_total` (computation + communication), per §3.1:
    /// `P = (2/3·n³ + 2n²) / T`.
    pub fn ninf_call_mflops(n: u64, t_total: f64) -> f64 {
        let flops = (2.0 * (n as f64).powi(3)) / 3.0 + 2.0 * (n as f64).powi(2);
        flops / (t_total * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_model_halves_at_n_half() {
        let m = LinpackModel::Vector {
            r_inf: 200.0,
            n_half: 120.0,
        };
        assert!((m.mflops(120) - 100.0).abs() < 1e-9);
        // Approaches the asymptote from below.
        assert!(m.mflops(10_000) > 195.0);
        assert!(m.mflops(10_000) < 200.0);
    }

    #[test]
    fn vector_model_is_monotone() {
        let m = LinpackModel::Vector {
            r_inf: 700.0,
            n_half: 260.0,
        };
        let mut last = 0.0;
        for n in (100..2000).step_by(100) {
            let p = m.mflops(n);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn scalar_model_is_flat() {
        let m = LinpackModel::Scalar { mflops: 35.0 };
        assert_eq!(m.mflops(100), 35.0);
        assert_eq!(m.mflops(1600), 35.0);
    }

    #[test]
    fn solve_seconds_inverts_rate() {
        let m = LinpackModel::Scalar { mflops: 100.0 };
        let n = 600u64;
        let t = m.solve_seconds(n);
        assert!((LinpackModel::ninf_call_mflops(n, t) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_problems_take_longer() {
        let m = LinpackModel::Vector {
            r_inf: 700.0,
            n_half: 260.0,
        };
        assert!(m.solve_seconds(1400) > m.solve_seconds(1000));
        assert!(m.solve_seconds(1000) > m.solve_seconds(600));
    }
}
