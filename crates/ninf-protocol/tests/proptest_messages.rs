//! Property tests: every representable message survives the full
//! encode → frame → read → decode pipeline, and the decoder never panics on
//! arbitrary bytes.

use ninf_protocol::{read_frame, write_frame, JobPhase, LoadReport, Message, TraceContext, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f32>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Float),
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Double),
        proptest::collection::vec(any::<i32>(), 0..64).prop_map(Value::IntArray),
        proptest::collection::vec(any::<i64>(), 0..64).prop_map(Value::LongArray),
        proptest::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 0..64)
            .prop_map(Value::FloatArray),
        proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..64)
            .prop_map(Value::DoubleArray),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    let routine = "[a-z][a-z0-9_]{0,15}";
    prop_oneof![
        routine.prop_map(|r| Message::QueryInterface { routine: r }),
        (
            routine,
            proptest::collection::vec(arb_value(), 0..6),
            any::<u64>()
        )
            .prop_map(|(routine, args, t)| Message::Invoke {
                routine,
                args,
                // t == 0 exercises the absent-context encoding.
                trace: (t != 0).then_some(TraceContext {
                    trace_id: t,
                    span_id: t ^ 0x5555,
                    parent_span_id: t >> 1,
                }),
            }),
        proptest::collection::vec(arb_value(), 0..6)
            .prop_map(|results| Message::ResultData { results }),
        "\\PC{0,64}".prop_map(|reason| Message::Error { reason }),
        Just(Message::QueryLoad),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            0.0f64..1e3,
            0.0f64..100.0
        )
            .prop_map(|(pes, running, queued, load_average, cpu_utilization)| {
                Message::LoadStatus(LoadReport {
                    pes,
                    running,
                    queued,
                    load_average,
                    cpu_utilization,
                })
            }),
        (
            routine,
            proptest::collection::vec(arb_value(), 0..6),
            any::<u64>()
        )
            .prop_map(|(routine, args, t)| Message::SubmitJob {
                routine,
                args,
                trace: (t != 0).then_some(TraceContext {
                    trace_id: t,
                    span_id: t ^ 0x5555,
                    parent_span_id: t >> 1,
                }),
            }),
        any::<u64>().prop_map(|job| Message::JobTicket { job }),
        any::<u64>().prop_map(|job| Message::PollJob { job }),
        (
            any::<u64>(),
            prop_oneof![
                Just(JobPhase::Pending),
                Just(JobPhase::Done),
                Just(JobPhase::Failed),
                Just(JobPhase::Unknown)
            ]
        )
            .prop_map(|(job, state)| Message::JobStatus { job, state }),
        any::<u64>().prop_map(|job| Message::FetchResult { job }),
    ]
}

proptest! {
    #[test]
    fn message_codec_roundtrip(msg in arb_message()) {
        let wire = msg.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn frame_roundtrip(msg in arb_message()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn frames_concatenate(msgs in proptest::collection::vec(arb_message(), 1..5)) {
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut reader = buf.as_slice();
        for m in &msgs {
            prop_assert_eq!(&read_frame(&mut reader).unwrap(), m);
        }
        prop_assert!(reader.is_empty());
    }

    /// Decoding arbitrary garbage yields an error, never a panic.
    #[test]
    fn decode_garbage_is_safe(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&data);
        let _ = read_frame(&mut data.as_slice());
    }

    /// Corrupting any single byte of a valid frame never panics the reader
    /// (it may still decode if the byte was payload-insensitive).
    #[test]
    fn bit_flips_never_panic(msg in arb_message(), pos in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let i = pos.index(buf.len());
        buf[i] ^= flip;
        let _ = read_frame(&mut buf.as_slice());
    }
}
