//! Property tests: every representable message survives the full
//! encode → frame → read → decode pipeline, truncated encodings are
//! rejected, and the decoder never panics on arbitrary bytes.
//!
//! `sample_messages`/`variant_index` below are kept exhaustive against the
//! `Message` enum by an exhaustive `match` — adding a variant without
//! covering it here is a compile error, and `every_variant_is_generated`
//! fails if the proptest generator or the sample list misses a kind.

use ninf_protocol::{
    read_frame, write_frame, Arg, CallStat, Digest, JobPhase, LoadReport, Message, MetricFrame,
    MetricKind, MetricSample, ProtocolError, Span, TraceContext, Value,
};
use proptest::prelude::*;

/// A corrupted frame must surface as one of the typed wire-level errors:
/// framing (magic/length/tag), checksum, version, XDR, or short read.
/// Anything else — above all a successfully decoded `Message` — means
/// corruption slipped past the framing layer.
fn is_typed_rejection(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Frame(_)
            | ProtocolError::Checksum { .. }
            | ProtocolError::UnsupportedVersion { .. }
            | ProtocolError::Xdr(_)
            | ProtocolError::Io(_)
    )
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Long),
        any::<f32>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Float),
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(Value::Double),
        proptest::collection::vec(any::<i32>(), 0..64).prop_map(Value::IntArray),
        proptest::collection::vec(any::<i64>(), 0..64).prop_map(Value::LongArray),
        proptest::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), 0..64)
            .prop_map(Value::FloatArray),
        proptest::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), 0..64)
            .prop_map(Value::DoubleArray),
    ]
}

fn arb_arg() -> impl Strategy<Value = Arg> {
    prop_oneof![
        4 => arb_value().prop_map(Arg::Data),
        1 => (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| Arg::Ref(Digest { hi, lo })),
    ]
}

fn arb_trace(t: u64) -> Option<TraceContext> {
    // t == 0 exercises the absent-context encoding.
    (t != 0).then_some(TraceContext {
        trace_id: t,
        span_id: t ^ 0x5555,
        parent_span_id: t >> 1,
    })
}

fn arb_call_stat() -> impl Strategy<Value = CallStat> {
    (
        "[a-z][a-z0-9_]{0,15}",
        proptest::option::of(any::<i64>()),
        any::<u64>(),
        any::<u64>(),
        0.0f64..1e6,
        0.0f64..1e6,
        0.0f64..1e6,
        0.0f64..1e6,
    )
        .prop_map(
            |(
                routine,
                n,
                request_bytes,
                reply_bytes,
                t_submit,
                t_enqueue,
                t_dequeue,
                t_complete,
            )| {
                CallStat {
                    routine,
                    n,
                    request_bytes,
                    reply_bytes,
                    t_submit,
                    t_enqueue,
                    t_dequeue,
                    t_complete,
                }
            },
        )
}

fn arb_span() -> impl Strategy<Value = Span> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        "[a-z_]{1,12}",
        "[a-z]{1,10}",
        any::<u64>(),
        any::<u64>(),
        "\\PC{0,32}",
    )
        .prop_map(
            |((trace_id, span_id, parent_span_id), name, process, start_us, dur_us, detail)| Span {
                trace_id,
                span_id,
                parent_span_id,
                name,
                process,
                start_us,
                dur_us,
                detail,
            },
        )
}

fn arb_metric_sample() -> impl Strategy<Value = MetricSample> {
    (
        "[a-z][a-z0-9_]{0,24}",
        prop_oneof![
            Just(MetricKind::Counter),
            Just(MetricKind::Gauge),
            Just(MetricKind::Histogram)
        ],
        0.0f64..1e9,
        any::<u64>(),
    )
        .prop_map(|(name, kind, value, count)| MetricSample {
            name,
            kind,
            value,
            count,
        })
}

fn arb_metric_frame() -> impl Strategy<Value = MetricFrame> {
    (
        any::<u64>(),
        0.0f64..1e6,
        proptest::collection::vec(arb_metric_sample(), 0..6),
    )
        .prop_map(|(window, t, samples)| MetricFrame { window, t, samples })
}

fn arb_message() -> impl Strategy<Value = Message> {
    let routine = "[a-z][a-z0-9_]{0,15}";
    prop_oneof![
        routine.prop_map(|r| Message::QueryInterface { routine: r }),
        // Arbitrary *valid* interfaces are exactly the compiler's output, so
        // sample the compiled stdlib rather than inventing a parallel
        // generator that could drift from the real invariants.
        proptest::sample::select(ninf_idl::stdlib_interfaces())
            .prop_map(|interface| Message::InterfaceReply { interface }),
        (
            routine,
            proptest::collection::vec(arb_arg(), 0..6),
            any::<u64>()
        )
            .prop_map(|(routine, args, t)| Message::Invoke {
                routine,
                args,
                trace: arb_trace(t),
            }),
        proptest::collection::vec(arb_value(), 0..6)
            .prop_map(|results| Message::ResultData { results }),
        "\\PC{0,64}".prop_map(|reason| Message::Error { reason }),
        Just(Message::QueryLoad),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            0.0f64..1e3,
            0.0f64..100.0
        )
            .prop_map(|(pes, running, queued, load_average, cpu_utilization)| {
                Message::LoadStatus(LoadReport {
                    pes,
                    running,
                    queued,
                    load_average,
                    cpu_utilization,
                })
            }),
        (
            routine,
            proptest::collection::vec(arb_arg(), 0..6),
            any::<u64>()
        )
            .prop_map(|(routine, args, t)| Message::SubmitJob {
                routine,
                args,
                trace: arb_trace(t),
            }),
        any::<u64>().prop_map(|job| Message::JobTicket { job }),
        any::<u64>().prop_map(|job| Message::PollJob { job }),
        (
            any::<u64>(),
            prop_oneof![
                Just(JobPhase::Pending),
                Just(JobPhase::Done),
                Just(JobPhase::Failed),
                Just(JobPhase::Unknown)
            ]
        )
            .prop_map(|(job, state)| Message::JobStatus { job, state }),
        (any::<u64>(), any::<u64>()).prop_map(|(job, t)| Message::FetchResult {
            job,
            trace: arb_trace(t),
        }),
        Just(Message::ListRoutines),
        proptest::collection::vec(("[a-z][a-z0-9_]{0,15}", "\\PC{0,48}"), 0..8)
            .prop_map(|routines| Message::RoutineList { routines }),
        "\\PC{0,64}".prop_map(|query| Message::DbQuery { query }),
        ("\\PC{0,64}", proptest::collection::vec(arb_value(), 0..6)).prop_map(
            |(description, values)| Message::DbReply {
                description,
                values
            }
        ),
        any::<u64>().prop_map(|since| Message::QueryStats { since }),
        (
            0.0f64..1e9,
            any::<u64>(),
            proptest::collection::vec(arb_call_stat(), 0..8)
        )
            .prop_map(|(now, total, records)| Message::StatsReply {
                now,
                total,
                records
            }),
        any::<u64>().prop_map(|trace_id| Message::QueryTrace { trace_id }),
        (
            "[a-z]{1,10}",
            any::<u64>(),
            proptest::collection::vec(arb_span(), 0..8)
        )
            .prop_map(|(process, dropped, spans)| Message::TraceReply {
                process,
                dropped,
                spans
            }),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..6).prop_map(|ds| {
            Message::NeedArg {
                digests: ds.into_iter().map(|(hi, lo)| Digest { hi, lo }).collect(),
            }
        }),
        any::<u64>().prop_map(|since| Message::QueryMetrics { since }),
        (
            ("[a-z]{1,10}", 0.0f64..1e6, 0.0f64..60.0),
            (any::<u64>(), any::<u64>()),
            proptest::collection::vec(arb_metric_frame(), 0..4)
        )
            .prop_map(|((process, now, interval), (total, dropped), frames)| {
                Message::MetricsReply {
                    process,
                    now,
                    interval,
                    total,
                    dropped,
                    frames,
                }
            }),
        (
            (any::<u64>(), any::<u64>()),
            proptest::collection::vec(any::<u8>(), 1..512),
            (1u32..64, any::<u32>()),
        )
            .prop_map(|((hi, lo), bytes, (total_scale, seq))| {
                // Geometry kept self-consistent: the codec round-trips any
                // field values, but a realistic chunk keeps reviewers honest.
                let total_bytes = bytes.len() as u64 * total_scale as u64;
                Message::PutArgChunk {
                    digest: Digest { hi, lo },
                    total_bytes,
                    total: total_scale,
                    seq: seq % total_scale,
                    crc: ninf_protocol::crc32c(&bytes),
                    bytes,
                }
            }),
        ((any::<u64>(), any::<u64>()), any::<u32>()).prop_map(|((hi, lo), seq)| {
            Message::ChunkOk {
                digest: Digest { hi, lo },
                seq,
            }
        }),
    ]
}

/// Position of each variant in the canonical ordering. The `match` is
/// deliberately wildcard-free: a new `Message` variant fails to compile
/// until it is ranked here (and added to `sample_messages`).
fn variant_index(m: &Message) -> usize {
    match m {
        Message::QueryInterface { .. } => 0,
        Message::InterfaceReply { .. } => 1,
        Message::Invoke { .. } => 2,
        Message::ResultData { .. } => 3,
        Message::Error { .. } => 4,
        Message::QueryLoad => 5,
        Message::LoadStatus(_) => 6,
        Message::SubmitJob { .. } => 7,
        Message::JobTicket { .. } => 8,
        Message::PollJob { .. } => 9,
        Message::JobStatus { .. } => 10,
        Message::FetchResult { .. } => 11,
        Message::ListRoutines => 12,
        Message::RoutineList { .. } => 13,
        Message::DbQuery { .. } => 14,
        Message::DbReply { .. } => 15,
        Message::QueryStats { .. } => 16,
        Message::StatsReply { .. } => 17,
        Message::QueryTrace { .. } => 18,
        Message::TraceReply { .. } => 19,
        Message::NeedArg { .. } => 20,
        Message::QueryMetrics { .. } => 21,
        Message::MetricsReply { .. } => 22,
        Message::PutArgChunk { .. } => 23,
        Message::ChunkOk { .. } => 24,
    }
}

const VARIANT_COUNT: usize = 25;

/// One concrete witness per variant, used by the exhaustiveness test and
/// the deterministic truncation test.
fn sample_messages() -> Vec<Message> {
    let ctx = TraceContext {
        trace_id: 7,
        span_id: 8,
        parent_span_id: 0,
    };
    vec![
        Message::QueryInterface {
            routine: "linpack".into(),
        },
        Message::InterfaceReply {
            interface: ninf_idl::stdlib_interfaces().remove(0),
        },
        Message::Invoke {
            routine: "linpack".into(),
            args: vec![
                Arg::Data(Value::Int(64)),
                Arg::Ref(Digest {
                    hi: 0xfeed_beef,
                    lo: 0x1234,
                }),
                Arg::Data(Value::DoubleArray(vec![1.0, 2.0])),
            ],
            trace: Some(ctx),
        },
        Message::ResultData {
            results: vec![Value::Double(3.5)],
        },
        Message::Error {
            reason: "no such routine".into(),
        },
        Message::QueryLoad,
        Message::LoadStatus(LoadReport {
            pes: 4,
            running: 1,
            queued: 2,
            load_average: 0.5,
            cpu_utilization: 40.0,
        }),
        Message::SubmitJob {
            routine: "ep".into(),
            args: vec![Arg::Data(Value::Int(12))],
            trace: None,
        },
        Message::JobTicket { job: 42 },
        Message::PollJob { job: 42 },
        Message::JobStatus {
            job: 42,
            state: JobPhase::Done,
        },
        Message::FetchResult {
            job: 42,
            trace: Some(ctx),
        },
        Message::ListRoutines,
        Message::RoutineList {
            routines: vec![("linpack".into(), "solve".into())],
        },
        Message::DbQuery {
            query: "select capability".into(),
        },
        Message::DbReply {
            description: "one row".into(),
            values: vec![Value::Long(1)],
        },
        Message::QueryStats { since: 3 },
        Message::StatsReply {
            now: 12.5,
            total: 9,
            records: vec![CallStat {
                routine: "linpack".into(),
                n: Some(64),
                request_bytes: 1024,
                reply_bytes: 2048,
                t_submit: 1.0,
                t_enqueue: 1.1,
                t_dequeue: 1.2,
                t_complete: 2.0,
            }],
        },
        Message::QueryTrace { trace_id: 77 },
        Message::TraceReply {
            process: "server".into(),
            dropped: 1,
            spans: vec![Span {
                trace_id: 77,
                span_id: 5,
                parent_span_id: 0,
                name: "invoke".into(),
                process: "server".into(),
                start_us: 100,
                dur_us: 50,
                detail: "linpack".into(),
            }],
        },
        Message::NeedArg {
            digests: vec![Digest {
                hi: 0xfeed_beef,
                lo: 0x1234,
            }],
        },
        Message::QueryMetrics { since: 5 },
        Message::MetricsReply {
            process: "server".into(),
            now: 9.25,
            interval: 0.25,
            total: 37,
            dropped: 2,
            frames: vec![MetricFrame {
                window: 36,
                t: 9.0,
                samples: vec![MetricSample {
                    name: "ninf_server_calls_total".into(),
                    kind: MetricKind::Counter,
                    value: 11.0,
                    count: 11,
                }],
            }],
        },
        Message::PutArgChunk {
            digest: Digest {
                hi: 0xfeed_beef,
                lo: 0x1234,
            },
            total_bytes: 21,
            total: 3,
            seq: 2,
            crc: ninf_protocol::crc32c(&[9, 9, 9, 9, 9, 9, 9]),
            bytes: vec![9; 7],
        },
        Message::ChunkOk {
            digest: Digest {
                hi: 0xfeed_beef,
                lo: 0x1234,
            },
            seq: 2,
        },
    ]
}

/// Every `Message` variant appears exactly once in `sample_messages`, in
/// `variant_index` order, and all round-trip through the codec.
#[test]
fn variant_list_is_exhaustive() {
    let samples = sample_messages();
    assert_eq!(samples.len(), VARIANT_COUNT);
    let mut kinds = Vec::new();
    for (i, m) in samples.iter().enumerate() {
        assert_eq!(
            variant_index(m),
            i,
            "sample_messages out of order at {} ({})",
            i,
            m.kind()
        );
        assert!(
            !kinds.contains(&m.kind()),
            "duplicate sample for {}",
            m.kind()
        );
        kinds.push(m.kind());
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(&back, m);
    }
}

/// Every strict prefix of every sample encoding is rejected — a
/// deterministic companion to the property below, one case per variant.
#[test]
fn sample_prefixes_all_rejected() {
    for m in sample_messages() {
        let wire = m.encode();
        for cut in 0..wire.len() {
            assert!(
                Message::decode(&wire[..cut]).is_err(),
                "{}-byte prefix of {} decoded",
                cut,
                m.kind()
            );
        }
    }
}

proptest! {
    #[test]
    fn message_codec_roundtrip(msg in arb_message()) {
        let wire = msg.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn frame_roundtrip(msg in arb_message()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn frames_concatenate(msgs in proptest::collection::vec(arb_message(), 1..5)) {
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut reader = buf.as_slice();
        for m in &msgs {
            prop_assert_eq!(&read_frame(&mut reader).unwrap(), m);
        }
        prop_assert!(reader.is_empty());
    }

    /// The proptest generator itself covers every variant: any sampled
    /// message maps to a legal variant rank (paired with
    /// `variant_list_is_exhaustive`, which pins the rank list to the enum).
    #[test]
    fn every_variant_is_generated(msg in arb_message()) {
        prop_assert!(variant_index(&msg) < VARIANT_COUNT);
    }

    /// Truncating an encoding anywhere must yield a decode error, never a
    /// silently shorter message: no valid encoding is a strict prefix of
    /// another.
    #[test]
    fn truncated_prefix_is_rejected(msg in arb_message(), cut in any::<prop::sample::Index>()) {
        let wire = msg.encode();
        let cut = cut.index(wire.len());
        prop_assert!(Message::decode(&wire[..cut]).is_err());
    }

    /// Decoding arbitrary garbage yields an error, never a panic.
    #[test]
    fn decode_garbage_is_safe(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&data);
        let _ = read_frame(&mut data.as_slice());
    }

    /// Flipping any single bit of a valid frame — header or payload —
    /// yields a typed rejection: under v2 checksummed framing a corrupted
    /// frame can never decode as a message, and never panics the reader.
    #[test]
    fn single_bit_flip_is_always_rejected(msg in arb_message(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let i = pos.index(buf.len());
        buf[i] ^= 1 << bit;
        match read_frame(&mut buf.as_slice()) {
            Ok(m) => prop_assert!(false, "bit {bit} of byte {i} flipped yet frame decoded as {}", m.kind()),
            Err(e) => prop_assert!(is_typed_rejection(&e), "untyped rejection: {e}"),
        }
    }
}

/// Deterministic companion to `single_bit_flip_is_always_rejected`: for
/// one witness of *every* `Message` variant, every single-bit flip of the
/// framed bytes is rejected with a typed error. CRC-32C detects all
/// single-bit errors, so the payload is covered bit-for-bit; the header's
/// magic/version/length/checksum words each have their own typed check.
#[test]
fn every_variant_rejects_every_single_bit_flip() {
    for m in sample_messages() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &m).unwrap();
        for i in 0..buf.len() {
            for bit in 0..8 {
                buf[i] ^= 1 << bit;
                match read_frame(&mut buf.as_slice()) {
                    Ok(got) => panic!(
                        "{}: bit {bit} of byte {i} flipped yet frame decoded as {}",
                        m.kind(),
                        got.kind()
                    ),
                    Err(e) => assert!(
                        is_typed_rejection(&e),
                        "{}: byte {i} bit {bit}: untyped rejection {e}",
                        m.kind()
                    ),
                }
                buf[i] ^= 1 << bit;
            }
        }
    }
}
