//! Property tests for chunked bulk transfer (the parallel-stream WAN
//! path): for arbitrary images, chunk sizes, stream counts, and delivery
//! interleavings the reassembled image is byte-identical to the
//! original, and any missing, duplicated, or corrupted chunk yields a
//! typed [`ChunkError`] — never a panic, never a silently truncated
//! value.

use ninf_protocol::chunk::{chunk_span, split, ChunkError, Reassembly};
use ninf_protocol::{crc32c, Digest, Message};
use proptest::prelude::*;

/// Unpack the fields of a `PutArgChunk` produced by `split`.
fn fields(m: &Message) -> (u64, u32, u32, u32, Vec<u8>) {
    match m {
        Message::PutArgChunk {
            total_bytes,
            total,
            seq,
            crc,
            bytes,
            ..
        } => (*total_bytes, *total, *seq, *crc, bytes.clone()),
        other => panic!("split produced {}", other.kind()),
    }
}

/// Deliver chunks in the order N stop-and-wait lanes would interleave
/// them under a seeded schedule: lane `w` owns seqs `w, w+N, w+2N, …`
/// and lanes take turns per a seed-driven permutation each round.
fn lane_interleaving(total: u32, lanes: u32, seed: u64) -> Vec<u32> {
    let mut cursors: Vec<u32> = (0..lanes).collect();
    let mut order = Vec::with_capacity(total as usize);
    let mut state = seed;
    while order.len() < total as usize {
        // SplitMix64 step picks which live lane moves next.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let live: Vec<usize> = (0..lanes as usize)
            .filter(|&w| cursors[w] < total)
            .collect();
        let w = live[(z % live.len() as u64) as usize];
        order.push(cursors[w]);
        cursors[w] += lanes;
    }
    order
}

fn arb_upload() -> impl Strategy<Value = (Vec<u8>, u32, u32, u64)> {
    (
        proptest::collection::vec(any::<u8>(), 1..20_000),
        1u32..4_096,
        1u32..16,
        any::<u64>(),
    )
}

proptest! {
    /// Reassembly is byte-identical for any image, chunk size, stream
    /// count, and lane interleaving, and the content digest verifies.
    #[test]
    fn reassembles_byte_identically((image, chunk_bytes, lanes, seed) in arb_upload()) {
        let digest = Digest::of(&image);
        let chunks = split(digest, &image, chunk_bytes);
        let total = chunks.len() as u32;
        // Spans partition the image with no gaps or overlaps.
        let mut cursor = 0u64;
        for seq in 0..total {
            let (start, len) = chunk_span(image.len() as u64, total, seq);
            prop_assert_eq!(start, cursor);
            prop_assert!(len > 0);
            cursor += len as u64;
        }
        prop_assert_eq!(cursor, image.len() as u64);

        let mut r = Reassembly::new(digest, image.len() as u64, total).unwrap();
        for seq in lane_interleaving(total, lanes, seed) {
            let (tb, t, s, crc, bytes) = fields(&chunks[seq as usize]);
            r.accept(tb, t, s, crc, &bytes).unwrap();
        }
        prop_assert_eq!(r.into_image().unwrap(), image);
    }

    /// Withholding any one chunk leaves a typed Incomplete — the partial
    /// image can never escape as a truncated value.
    #[test]
    fn missing_chunk_is_typed((image, chunk_bytes, _lanes, seed) in arb_upload()) {
        let digest = Digest::of(&image);
        let chunks = split(digest, &image, chunk_bytes);
        let total = chunks.len() as u32;
        let withheld = (seed % total as u64) as u32;
        let mut r = Reassembly::new(digest, image.len() as u64, total).unwrap();
        for (i, c) in chunks.iter().enumerate() {
            if i as u32 == withheld {
                continue;
            }
            let (tb, t, s, crc, bytes) = fields(c);
            r.accept(tb, t, s, crc, &bytes).unwrap();
        }
        prop_assert!(!r.complete());
        prop_assert_eq!(r.into_image(), Err(ChunkError::Incomplete { missing: 1 }));
    }

    /// Re-delivering any chunk is a typed Duplicate, and the recorded CRC
    /// still matches (the hook the server's idempotent re-ack uses).
    #[test]
    fn duplicated_chunk_is_typed((image, chunk_bytes, _lanes, seed) in arb_upload()) {
        let digest = Digest::of(&image);
        let chunks = split(digest, &image, chunk_bytes);
        let total = chunks.len() as u32;
        let dup = (seed % total as u64) as u32;
        let mut r = Reassembly::new(digest, image.len() as u64, total).unwrap();
        let (tb, t, s, crc, bytes) = fields(&chunks[dup as usize]);
        r.accept(tb, t, s, crc, &bytes).unwrap();
        prop_assert_eq!(
            r.accept(tb, t, s, crc, &bytes),
            Err(ChunkError::Duplicate { seq: dup })
        );
        prop_assert_eq!(r.seen_crc(dup), Some(crc));
    }

    /// Flipping any single bit of any chunk's payload is a typed BadCrc;
    /// not a single corrupted byte reaches the image buffer.
    #[test]
    fn corrupted_chunk_is_typed(
        (image, chunk_bytes, _lanes, seed) in arb_upload(),
        bit in 0u8..8,
    ) {
        let digest = Digest::of(&image);
        let chunks = split(digest, &image, chunk_bytes);
        let total = chunks.len() as u32;
        let victim = (seed % total as u64) as u32;
        let mut r = Reassembly::new(digest, image.len() as u64, total).unwrap();
        let (tb, t, s, crc, mut bytes) = fields(&chunks[victim as usize]);
        let pos = (seed >> 32) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert_eq!(
            r.accept(tb, t, s, crc, &bytes),
            Err(ChunkError::BadCrc { seq: victim })
        );
        prop_assert_eq!(r.received(), 0);
    }

    /// A chunk lying about the upload geometry, its position, or its
    /// length is rejected with the matching typed error.
    #[test]
    fn geometry_lies_are_typed((image, chunk_bytes, _lanes, seed) in arb_upload()) {
        let digest = Digest::of(&image);
        let chunks = split(digest, &image, chunk_bytes);
        let total = chunks.len() as u32;
        let mut r = Reassembly::new(digest, image.len() as u64, total).unwrap();
        let (tb, t, s, crc, bytes) = fields(&chunks[(seed % total as u64) as usize]);
        prop_assert!(matches!(
            r.accept(tb + 1, t, s, crc, &bytes),
            Err(ChunkError::TotalMismatch { .. })
        ));
        prop_assert_eq!(
            r.accept(tb, t, total, crc, &bytes),
            Err(ChunkError::SeqOutOfRange { seq: total, total })
        );
        let mut longer = bytes.clone();
        longer.push(0xEE);
        prop_assert!(matches!(
            r.accept(tb, t, s, crc32c(&longer), &longer),
            Err(ChunkError::SizeMismatch { .. })
        ));
        prop_assert_eq!(r.received(), 0, "no lie may land bytes");
    }

    /// The chunk messages themselves survive the wire codec — what the
    /// lanes actually transmit decodes back bit-for-bit.
    #[test]
    fn chunk_messages_roundtrip_the_codec((image, chunk_bytes, _lanes, _seed) in arb_upload()) {
        let digest = Digest::of(&image);
        for c in split(digest, &image, chunk_bytes).into_iter().take(4) {
            let back = Message::decode(&c.encode()).unwrap();
            prop_assert_eq!(back, c);
        }
    }
}
