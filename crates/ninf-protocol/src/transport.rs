//! Message transports: real TCP and an in-process channel pair, both with
//! optional per-operation deadlines.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use crate::error::{ProtocolError, ProtocolResult};
use crate::frame::{read_frame, write_frame};
use crate::message::Message;

/// A bidirectional, ordered, reliable message channel — what Ninf RPC
/// assumes of TCP.
pub trait Transport: Send {
    /// Send one message (blocking until handed to the OS / peer).
    fn send(&mut self, msg: &Message) -> ProtocolResult<()>;
    /// Receive the next message (blocking).
    fn recv(&mut self) -> ProtocolResult<Message>;

    /// Install (or clear) a per-operation I/O deadline. Subsequent `send`
    /// and `recv` calls that exceed it fail with
    /// [`ProtocolError::Timeout`]. Returns `false` if the transport cannot
    /// enforce deadlines (the default).
    fn set_deadline(&mut self, _deadline: Option<Duration>) -> ProtocolResult<bool> {
        Ok(false)
    }

    /// Send a pre-encoded byte sequence verbatim, bypassing framing. This is
    /// the fault-injection hook: [`crate::fault::FaultyTransport`] uses it to
    /// put truncated or garbled frames on the wire. Transports without a
    /// byte-level path reject it.
    fn send_raw(&mut self, _bytes: &[u8]) -> ProtocolResult<()> {
        Err(ProtocolError::Frame(
            "transport does not support raw frames".into(),
        ))
    }
}

/// Boxed transports forward everything, so wrappers generic over
/// `T: Transport` (fault injection, WAN shaping) also compose over a
/// type-erased `Box<dyn Transport>`.
impl Transport for Box<dyn Transport> {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        (**self).send(msg)
    }
    fn recv(&mut self) -> ProtocolResult<Message> {
        (**self).recv()
    }
    fn set_deadline(&mut self, deadline: Option<Duration>) -> ProtocolResult<bool> {
        (**self).set_deadline(deadline)
    }
    fn send_raw(&mut self, bytes: &[u8]) -> ProtocolResult<()> {
        (**self).send_raw(bytes)
    }
}

/// Rewrite OS timeout errors into the typed deadline error, leaving
/// everything else untouched. Both `WouldBlock` and `TimedOut` appear in the
/// wild for an expired socket timeout (Unix reports `EAGAIN`).
fn promote_timeout(
    err: ProtocolError,
    operation: &'static str,
    deadline: Option<Duration>,
) -> ProtocolError {
    match (&err, deadline) {
        (ProtocolError::Io(e), Some(after))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            ProtocolError::Timeout { operation, after }
        }
        _ => err,
    }
}

/// TCP transport with buffered reader/writer halves.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    deadline: Option<Duration>,
}

impl TcpTransport {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> ProtocolResult<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self {
            reader,
            writer,
            deadline: None,
        })
    }

    /// Connect to `addr` ("host:port").
    pub fn connect(addr: &str) -> ProtocolResult<Self> {
        Self::new(TcpStream::connect(addr)?)
    }

    /// Connect to `addr` with a bound on connection establishment; the same
    /// deadline is installed as the transport's I/O deadline. With `None`
    /// this is [`TcpTransport::connect`].
    pub fn connect_with_deadline(addr: &str, deadline: Option<Duration>) -> ProtocolResult<Self> {
        let Some(limit) = deadline else {
            return Self::connect(addr);
        };
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ProtocolError::Frame(format!("address `{addr}` resolves to nothing")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, limit)
            .map_err(|e| promote_timeout(e.into(), "connect", deadline))?;
        let mut transport = Self::new(stream)?;
        transport.set_deadline(deadline)?;
        Ok(transport)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        write_frame(&mut self.writer, msg).map_err(|e| promote_timeout(e, "write", self.deadline))
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        read_frame(&mut self.reader).map_err(|e| promote_timeout(e, "read", self.deadline))
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> ProtocolResult<bool> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(deadline)?;
        stream.set_write_timeout(deadline)?;
        self.deadline = deadline;
        Ok(true)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> ProtocolResult<()> {
        let run = |w: &mut BufWriter<TcpStream>| -> ProtocolResult<()> {
            w.write_all(bytes)?;
            w.flush()?;
            Ok(())
        };
        run(&mut self.writer).map_err(|e| promote_timeout(e, "write", self.deadline))
    }
}

/// In-process transport over crossbeam channels. [`ChannelTransport::pair`]
/// yields two connected endpoints; messages still pass through the full
/// XDR encode/decode path so tests exercise the real codecs.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    deadline: Option<Duration>,
}

impl ChannelTransport {
    /// Create a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (atx, arx) = bounded(64);
        let (btx, brx) = bounded(64);
        (
            ChannelTransport {
                tx: atx,
                rx: brx,
                deadline: None,
            },
            ChannelTransport {
                tx: btx,
                rx: arx,
                deadline: None,
            },
        )
    }

    fn recv_bytes(&mut self) -> ProtocolResult<Vec<u8>> {
        match self.deadline {
            None => self.rx.recv().map_err(|_| ProtocolError::Disconnected),
            Some(after) => self.rx.recv_timeout(after).map_err(|e| match e {
                RecvTimeoutError::Timeout => ProtocolError::Timeout {
                    operation: "read",
                    after,
                },
                RecvTimeoutError::Disconnected => ProtocolError::Disconnected,
            }),
        }
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg)?;
        self.tx.send(buf).map_err(|_| ProtocolError::Disconnected)
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        let buf = self.recv_bytes()?;
        read_frame(&mut buf.as_slice())
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> ProtocolResult<bool> {
        self.deadline = deadline;
        Ok(true)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> ProtocolResult<()> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| ProtocolError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Arg;
    use crate::value::Value;
    use std::net::TcpListener;

    #[test]
    fn channel_pair_roundtrip() {
        let (mut a, mut b) = ChannelTransport::pair();
        let msg = Message::Invoke {
            routine: "ep".into(),
            args: Arg::inline(vec![Value::Int(20)]),
            trace: None,
        };
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
        let reply = Message::ResultData {
            results: vec![Value::DoubleArray(vec![1.0, 2.0])],
        };
        b.send(&reply).unwrap();
        assert_eq!(a.recv().unwrap(), reply);
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(matches!(
            a.send(&Message::QueryLoad),
            Err(ProtocolError::Disconnected)
        ));
        assert!(matches!(a.recv(), Err(ProtocolError::Disconnected)));
    }

    #[test]
    fn channel_deadline_times_out_on_silence() {
        let (mut a, _b) = ChannelTransport::pair();
        a.set_deadline(Some(Duration::from_millis(30))).unwrap();
        let start = std::time::Instant::now();
        let err = a.recv().unwrap_err();
        assert!(err.is_timeout(), "expected timeout, got {err}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn tcp_loopback_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            let msg = t.recv().unwrap();
            assert_eq!(msg.kind(), "QueryInterface");
            t.send(&Message::Error {
                reason: "unknown routine".into(),
            })
            .unwrap();
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        client
            .send(&Message::QueryInterface {
                routine: "nope".into(),
            })
            .unwrap();
        match client.recv().unwrap() {
            Message::Error { reason } => assert!(reason.contains("unknown")),
            other => panic!("unexpected {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_large_payload() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let n = 200usize; // 200x200 doubles = 320 KB
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            match t.recv().unwrap() {
                Message::Invoke { args, .. } => {
                    t.send(&Message::ResultData {
                        results: Arg::into_values(args).expect("inline"),
                    })
                    .unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let matrix = Value::DoubleArray((0..n * n).map(|i| i as f64).collect());
        client
            .send(&Message::Invoke {
                routine: "echo".into(),
                args: Arg::inline(vec![matrix.clone()]),
                trace: None,
            })
            .unwrap();
        match client.recv().unwrap() {
            Message::ResultData { results } => assert_eq!(results, vec![matrix]),
            other => panic!("unexpected {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_read_deadline_yields_typed_timeout() {
        // A listener that accepts but never replies: the read must abort
        // with Timeout at roughly the deadline, not hang.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let silent = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(400));
            drop(stream);
        });
        let deadline = Duration::from_millis(80);
        let mut client =
            TcpTransport::connect_with_deadline(&addr.to_string(), Some(deadline)).unwrap();
        client.send(&Message::QueryLoad).unwrap();
        let start = std::time::Instant::now();
        match client.recv().unwrap_err() {
            ProtocolError::Timeout { operation, after } => {
                assert_eq!(operation, "read");
                assert_eq!(after, deadline);
            }
            other => panic!("expected timeout, got {other}"),
        }
        assert!(start.elapsed() < Duration::from_millis(350));
        silent.join().unwrap();
    }

    #[test]
    fn tcp_connect_deadline_bounds_the_attempt() {
        // RFC 5737 TEST-NET-1 address: normally black-holes, though some
        // sandboxes intercept it, so only the time bound is asserted — the
        // attempt must resolve (either way) within the deadline, not hang.
        let start = std::time::Instant::now();
        let _ =
            TcpTransport::connect_with_deadline("192.0.2.1:9", Some(Duration::from_millis(100)));
        assert!(start.elapsed() < Duration::from_secs(3));
    }

    #[test]
    fn tcp_send_raw_bytes_arrive_verbatim() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            use std::io::Read;
            BufReader::new(stream).read_to_end(&mut buf).unwrap();
            buf
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        client.send_raw(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        drop(client);
        assert_eq!(server.join().unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }
}
