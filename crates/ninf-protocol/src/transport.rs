//! Message transports: real TCP and an in-process channel pair.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::error::{ProtocolError, ProtocolResult};
use crate::frame::{read_frame, write_frame};
use crate::message::Message;

/// A bidirectional, ordered, reliable message channel — what Ninf RPC
/// assumes of TCP.
pub trait Transport: Send {
    /// Send one message (blocking until handed to the OS / peer).
    fn send(&mut self, msg: &Message) -> ProtocolResult<()>;
    /// Receive the next message (blocking).
    fn recv(&mut self) -> ProtocolResult<Message>;
}

/// TCP transport with buffered reader/writer halves.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> ProtocolResult<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self { reader, writer })
    }

    /// Connect to `addr` ("host:port").
    pub fn connect(addr: &str) -> ProtocolResult<Self> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        write_frame(&mut self.writer, msg)
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        read_frame(&mut self.reader)
    }
}

/// In-process transport over crossbeam channels. [`ChannelTransport::pair`]
/// yields two connected endpoints; messages still pass through the full
/// XDR encode/decode path so tests exercise the real codecs.
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Create a connected pair of endpoints.
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (atx, arx) = bounded(64);
        let (btx, brx) = bounded(64);
        (ChannelTransport { tx: atx, rx: brx }, ChannelTransport { tx: btx, rx: arx })
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg)?;
        self.tx.send(buf).map_err(|_| ProtocolError::Disconnected)
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        let buf = self.rx.recv().map_err(|_| ProtocolError::Disconnected)?;
        read_frame(&mut buf.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::net::TcpListener;

    #[test]
    fn channel_pair_roundtrip() {
        let (mut a, mut b) = ChannelTransport::pair();
        let msg = Message::Invoke { routine: "ep".into(), args: vec![Value::Int(20)] };
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
        let reply = Message::ResultData { results: vec![Value::DoubleArray(vec![1.0, 2.0])] };
        b.send(&reply).unwrap();
        assert_eq!(a.recv().unwrap(), reply);
    }

    #[test]
    fn channel_disconnect_detected() {
        let (mut a, b) = ChannelTransport::pair();
        drop(b);
        assert!(matches!(a.send(&Message::QueryLoad), Err(ProtocolError::Disconnected)));
        assert!(matches!(a.recv(), Err(ProtocolError::Disconnected)));
    }

    #[test]
    fn tcp_loopback_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            let msg = t.recv().unwrap();
            assert_eq!(msg.kind(), "QueryInterface");
            t.send(&Message::Error { reason: "unknown routine".into() }).unwrap();
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        client.send(&Message::QueryInterface { routine: "nope".into() }).unwrap();
        match client.recv().unwrap() {
            Message::Error { reason } => assert!(reason.contains("unknown")),
            other => panic!("unexpected {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_large_payload() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let n = 200usize; // 200x200 doubles = 320 KB
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            match t.recv().unwrap() {
                Message::Invoke { args, .. } => {
                    t.send(&Message::ResultData { results: args }).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        });
        let mut client = TcpTransport::connect(&addr.to_string()).unwrap();
        let matrix = Value::DoubleArray((0..n * n).map(|i| i as f64).collect());
        client
            .send(&Message::Invoke { routine: "echo".into(), args: vec![matrix.clone()] })
            .unwrap();
        match client.recv().unwrap() {
            Message::ResultData { results } => assert_eq!(results, vec![matrix]),
            other => panic!("unexpected {other:?}"),
        }
        server.join().unwrap();
    }
}
