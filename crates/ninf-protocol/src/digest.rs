//! Content digests for the argument cache.
//!
//! A [`Digest`] names one marshalled argument by its bytes: 128 bits built
//! from two independent passes over the XDR image — a 64-bit SplitMix-style
//! chunk mix and the frame checksum's own CRC-32C (hardware-accelerated on
//! SSE4.2, see [`crate::crc`]) folded with the length. The two halves fail
//! independently, so an accidental collision needs to defeat both at once;
//! this is a cache key against accidental collision, not an adversarial
//! MAC — a client that lies about digests only poisons its own results.
//!
//! Arguments below [`ARG_CACHE_MIN_BYTES`] are never cached: a digest ref
//! costs ~20 wire bytes plus a store lookup, which only pays for itself on
//! the flat arrays that dominate WAN transfer time.

use crate::codec::Wire;
use crate::crc::crc32c;
use crate::value::Value;

/// Arguments smaller than this many XDR bytes are always shipped inline —
/// the ref machinery only pays for itself on large flat arrays.
pub const ARG_CACHE_MIN_BYTES: usize = 1024;

/// 128-bit content digest of one marshalled argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest {
    /// SplitMix-style 64-bit chunk mix over the XDR image.
    pub hi: u64,
    /// `crc32c(image) << 32 | len mod 2^32` — a second, independent check.
    pub lo: u64,
}

impl Digest {
    /// Digest of a byte image.
    pub fn of(bytes: &[u8]) -> Digest {
        Digest {
            hi: mix64(bytes),
            lo: (u64::from(crc32c(bytes)) << 32) | (bytes.len() as u64 & 0xFFFF_FFFF),
        }
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// SplitMix64-finalized chunk mix: fold each 8-byte word (and a
/// length-tagged tail) through the SplitMix64 finalizer. Not cryptographic;
/// paired with the CRC half above for independence.
fn mix64(bytes: &[u8]) -> u64 {
    #[inline]
    fn finalize(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = finalize(h ^ u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = finalize(h ^ u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
    }
    finalize(h)
}

/// Full tagged XDR image of one value: the exact byte stream chunked bulk
/// uploads ship and [`digest_value`] hashes, so a reassembled upload can be
/// verified end-to-end against the digest that named it.
pub fn value_image(v: &Value) -> ninf_xdr::Bytes {
    let mut enc = ninf_xdr::XdrEncoder::new();
    v.put(&mut enc);
    enc.finish()
}

/// Digest of one argument value, over its full tagged XDR image (the tag
/// keeps an `IntArray` and a `FloatArray` with identical bytes distinct).
pub fn digest_value(v: &Value) -> Digest {
    Digest::of(&value_image(v))
}

/// Whether an argument is worth caching at all: a flat array whose XDR
/// image is at least [`ARG_CACHE_MIN_BYTES`].
pub fn cacheable(v: &Value) -> bool {
    !v.is_scalar() && v.wire_bytes() >= ARG_CACHE_MIN_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_content_addressed() {
        let a = Value::DoubleArray(vec![1.5; 400]);
        let b = Value::DoubleArray(vec![1.5; 400]);
        assert_eq!(digest_value(&a), digest_value(&b));
        let c = Value::DoubleArray(vec![1.5000001; 400]);
        assert_ne!(digest_value(&a), digest_value(&c));
    }

    #[test]
    fn digest_distinguishes_value_types_with_identical_bodies() {
        // Same raw body bytes, different tags: must not collide.
        let ints = Value::IntArray(vec![0; 300]);
        let floats = Value::FloatArray(vec![0.0; 300]);
        assert_ne!(digest_value(&ints), digest_value(&floats));
    }

    #[test]
    fn digest_sensitive_to_length_and_tail() {
        let short = Digest::of(&[7u8; 9]);
        let long = Digest::of(&[7u8; 10]);
        assert_ne!(short, long);
        // Single final-byte flip flips both halves' inputs.
        let mut tweaked = vec![7u8; 9];
        tweaked[8] = 8;
        assert_ne!(Digest::of(&tweaked), short);
    }

    #[test]
    fn length_is_folded_into_lo() {
        let d = Digest::of(&[0u8; 1234]);
        assert_eq!(d.lo & 0xFFFF_FFFF, 1234);
    }

    #[test]
    fn cacheable_requires_large_flat_array() {
        assert!(!cacheable(&Value::Int(7)));
        assert!(!cacheable(&Value::DoubleArray(vec![0.0; 8])));
        assert!(cacheable(&Value::DoubleArray(vec![0.0; 1024])));
        assert_eq!(
            Value::DoubleArray(vec![0.0; 128]).wire_bytes(),
            ARG_CACHE_MIN_BYTES
        );
        assert!(cacheable(&Value::DoubleArray(vec![0.0; 128])));
    }
}
