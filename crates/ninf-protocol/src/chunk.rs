//! Chunked bulk-argument transfer: split, verify, reassemble.
//!
//! A large argument's tagged XDR image (the exact bytes
//! [`digest_value`](crate::digest::digest_value) hashes) is cut into
//! `total = ceil(total_bytes / chunk_bytes)` equal-size chunks (the last
//! one short), each shipped as a [`Message::PutArgChunk`] carrying its
//! own CRC-32C. Geometry is *derived*, never trusted: chunk `seq`'s byte
//! span is a pure function of `(total_bytes, total, seq)`, so a chunk
//! whose length disagrees with its claimed position is rejected before a
//! byte lands in the buffer. Completion verifies the whole-image content
//! digest — end-to-end proof that N streams' interleaved deliveries
//! reassembled byte-identically.
//!
//! [`Reassembly::accept`] is strict: a second delivery of a seq is a
//! typed [`ChunkError::Duplicate`], never a silent overwrite. The
//! *server* layers retransmit-friendliness on top by re-acking a
//! duplicate whose CRC matches what it already holds — the distinction
//! between "the ack got lost" (benign, re-ack) and "two different bytes
//! claim one seq" (corruption, refuse) lives there, not here.

use crate::crc::crc32c;
use crate::digest::Digest;
use crate::frame::MAX_FRAME_BYTES;
use crate::message::Message;

/// Arguments whose XDR image is at least this large go chunked over the
/// parallel lanes; smaller ones ship inline in the Invoke.
pub const CHUNK_THRESHOLD: usize = 64 * 1024;

/// Default chunk payload size. Small enough that N lanes interleave
/// through a capped link, large enough that per-chunk framing overhead
/// (~48 bytes) stays under 0.3%.
pub const DEFAULT_CHUNK_BYTES: u32 = 16 * 1024;

/// Why a chunk (or a finished upload) was rejected. Every failure mode
/// of the wire protocol maps to exactly one variant — a corrupt, lost,
/// duplicated, or misdeclared chunk is always a typed error, never a
/// panic or a silently truncated value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Declared image size is zero or exceeds the frame cap.
    Oversize {
        /// Declared total image bytes.
        total_bytes: u64,
    },
    /// Declared chunk count is zero or exceeds the image size.
    BadTotal {
        /// Declared chunk count.
        total: u32,
        /// Declared total image bytes.
        total_bytes: u64,
    },
    /// A chunk's declared geometry disagrees with the upload's.
    TotalMismatch {
        /// Geometry the first chunk pinned: `(total_bytes, total)`.
        expected: (u64, u32),
        /// Geometry this chunk claims.
        got: (u64, u32),
    },
    /// Sequence number at or past the declared chunk count.
    SeqOutOfRange {
        /// The offending sequence number.
        seq: u32,
        /// Declared chunk count.
        total: u32,
    },
    /// Chunk length differs from what its position dictates.
    SizeMismatch {
        /// The chunk.
        seq: u32,
        /// Length its span dictates.
        expected: usize,
        /// Length that arrived.
        got: usize,
    },
    /// Chunk bytes fail their own CRC.
    BadCrc {
        /// The chunk.
        seq: u32,
    },
    /// A seq delivered twice into one reassembly.
    Duplicate {
        /// The chunk.
        seq: u32,
    },
    /// Completion requested with chunks still missing.
    Incomplete {
        /// How many chunks never arrived.
        missing: u32,
    },
    /// The reassembled image does not hash to the declared digest.
    DigestMismatch {
        /// Digest the upload was addressed to.
        expected: Digest,
        /// Digest of what actually reassembled.
        got: Digest,
    },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::Oversize { total_bytes } => {
                write!(f, "chunked image of {total_bytes} bytes out of range")
            }
            ChunkError::BadTotal { total, total_bytes } => {
                write!(f, "{total} chunks cannot carry {total_bytes} bytes")
            }
            ChunkError::TotalMismatch { expected, got } => write!(
                f,
                "chunk declares geometry {got:?}, upload pinned {expected:?}"
            ),
            ChunkError::SeqOutOfRange { seq, total } => {
                write!(f, "chunk seq {seq} out of range for {total} chunks")
            }
            ChunkError::SizeMismatch { seq, expected, got } => {
                write!(
                    f,
                    "chunk {seq} carries {got} bytes, span dictates {expected}"
                )
            }
            ChunkError::BadCrc { seq } => write!(f, "chunk {seq} failed its CRC"),
            ChunkError::Duplicate { seq } => write!(f, "chunk {seq} delivered twice"),
            ChunkError::Incomplete { missing } => {
                write!(f, "upload incomplete: {missing} chunks missing")
            }
            ChunkError::DigestMismatch { expected, got } => {
                write!(
                    f,
                    "reassembled image hashes to {got}, upload named {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// Number of chunks an image of `total_bytes` cuts into at `chunk_bytes`
/// per chunk.
pub fn chunk_count(total_bytes: u64, chunk_bytes: u32) -> u32 {
    let cb = chunk_bytes.max(1) as u64;
    total_bytes.div_ceil(cb).max(1) as u32
}

/// The byte span `[start, start + len)` chunk `seq` covers in an image of
/// `total_bytes` cut into `total` chunks: every chunk is
/// `ceil(total_bytes / total)` bytes except a short final one.
pub fn chunk_span(total_bytes: u64, total: u32, seq: u32) -> (u64, usize) {
    let cs = total_bytes.div_ceil(total.max(1) as u64);
    let start = cs * seq as u64;
    let end = (start + cs).min(total_bytes);
    (start, end.saturating_sub(start) as usize)
}

/// Cut `image` into [`Message::PutArgChunk`]s of `chunk_bytes` addressed
/// to `digest` — the pure sender half; the caller fans these out over its
/// lanes in any order.
pub fn split(digest: Digest, image: &[u8], chunk_bytes: u32) -> Vec<Message> {
    let total_bytes = image.len() as u64;
    let total = chunk_count(total_bytes, chunk_bytes);
    (0..total)
        .map(|seq| {
            let (start, len) = chunk_span(total_bytes, total, seq);
            let bytes = image[start as usize..start as usize + len].to_vec();
            Message::PutArgChunk {
                digest,
                total_bytes,
                total,
                seq,
                crc: crc32c(&bytes),
                bytes,
            }
        })
        .collect()
}

/// Receiver-side state for one in-flight upload: accepts chunks in any
/// order (any interleaving of N lanes), rejects every malformed one with
/// a typed [`ChunkError`], and yields the verified image at completion.
#[derive(Debug)]
pub struct Reassembly {
    digest: Digest,
    total_bytes: u64,
    total: u32,
    buf: Vec<u8>,
    /// Per-seq CRC of what landed; doubles as the received bitmap.
    seen: Vec<Option<u32>>,
    got: u32,
}

impl Reassembly {
    /// Start an upload addressed to `digest` with the declared geometry.
    /// Geometry is validated here, so a hostile declaration can never
    /// reserve an oversized buffer.
    pub fn new(digest: Digest, total_bytes: u64, total: u32) -> Result<Reassembly, ChunkError> {
        if total_bytes == 0 || total_bytes > MAX_FRAME_BYTES as u64 {
            return Err(ChunkError::Oversize { total_bytes });
        }
        if total == 0 || total as u64 > total_bytes {
            return Err(ChunkError::BadTotal { total, total_bytes });
        }
        Ok(Reassembly {
            digest,
            total_bytes,
            total,
            buf: vec![0; total_bytes as usize],
            seen: vec![None; total as usize],
            got: 0,
        })
    }

    /// Declared geometry: `(total_bytes, total)`.
    pub fn geometry(&self) -> (u64, u32) {
        (self.total_bytes, self.total)
    }

    /// Chunks landed so far.
    pub fn received(&self) -> u32 {
        self.got
    }

    /// Whether every chunk has landed.
    pub fn complete(&self) -> bool {
        self.got == self.total
    }

    /// CRC recorded for an already-landed `seq`, if any — what the server
    /// consults to distinguish a benign retransmit (same CRC: re-ack)
    /// from conflicting bytes (different CRC: refuse).
    pub fn seen_crc(&self, seq: u32) -> Option<u32> {
        self.seen.get(seq as usize).copied().flatten()
    }

    /// Land one chunk. Returns whether the upload is now complete.
    pub fn accept(
        &mut self,
        total_bytes: u64,
        total: u32,
        seq: u32,
        crc: u32,
        bytes: &[u8],
    ) -> Result<bool, ChunkError> {
        if (total_bytes, total) != (self.total_bytes, self.total) {
            return Err(ChunkError::TotalMismatch {
                expected: (self.total_bytes, self.total),
                got: (total_bytes, total),
            });
        }
        if seq >= self.total {
            return Err(ChunkError::SeqOutOfRange {
                seq,
                total: self.total,
            });
        }
        let (start, len) = chunk_span(self.total_bytes, self.total, seq);
        if bytes.len() != len {
            return Err(ChunkError::SizeMismatch {
                seq,
                expected: len,
                got: bytes.len(),
            });
        }
        if crc32c(bytes) != crc {
            return Err(ChunkError::BadCrc { seq });
        }
        if self.seen[seq as usize].is_some() {
            return Err(ChunkError::Duplicate { seq });
        }
        self.buf[start as usize..start as usize + len].copy_from_slice(bytes);
        self.seen[seq as usize] = Some(crc);
        self.got += 1;
        Ok(self.complete())
    }

    /// Finish: verify the reassembled image against the upload's digest
    /// and hand it over. Incomplete or mismatched uploads are typed
    /// errors — a truncated or corrupted image can never escape.
    pub fn into_image(self) -> Result<Vec<u8>, ChunkError> {
        if !self.complete() {
            return Err(ChunkError::Incomplete {
                missing: self.total - self.got,
            });
        }
        let got = Digest::of(&self.buf);
        if got != self.digest {
            return Err(ChunkError::DigestMismatch {
                expected: self.digest,
                got,
            });
        }
        Ok(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 % 251) as u8).collect()
    }

    fn reassemble_in_order(img: &[u8], chunk_bytes: u32) -> Vec<u8> {
        let digest = Digest::of(img);
        let chunks = split(digest, img, chunk_bytes);
        let total = chunks.len() as u32;
        let mut r = Reassembly::new(digest, img.len() as u64, total).unwrap();
        for c in &chunks {
            let Message::PutArgChunk {
                total_bytes,
                total,
                seq,
                crc,
                bytes,
                ..
            } = c
            else {
                panic!("split produced a non-chunk");
            };
            r.accept(*total_bytes, *total, *seq, *crc, bytes).unwrap();
        }
        r.into_image().unwrap()
    }

    #[test]
    fn split_and_reassemble_round_trips() {
        for n in [1usize, 100, 16 * 1024, 16 * 1024 + 1, 100_000] {
            let img = image(n);
            assert_eq!(reassemble_in_order(&img, 16 * 1024), img, "n={n}");
        }
    }

    #[test]
    fn spans_partition_the_image_exactly() {
        for (total_bytes, chunk_bytes) in [(1u64, 16u32), (100, 7), (100_000, 16 * 1024)] {
            let total = chunk_count(total_bytes, chunk_bytes);
            let mut cursor = 0u64;
            for seq in 0..total {
                let (start, len) = chunk_span(total_bytes, total, seq);
                assert_eq!(start, cursor);
                assert!(len > 0, "empty chunk {seq}");
                cursor += len as u64;
            }
            assert_eq!(cursor, total_bytes);
        }
    }

    #[test]
    fn out_of_order_delivery_reassembles_identically() {
        let img = image(50_000);
        let digest = Digest::of(&img);
        let mut chunks = split(digest, &img, 4096);
        chunks.reverse();
        let total = chunks.len() as u32;
        let mut r = Reassembly::new(digest, img.len() as u64, total).unwrap();
        for c in &chunks {
            if let Message::PutArgChunk {
                total_bytes,
                total,
                seq,
                crc,
                bytes,
                ..
            } = c
            {
                r.accept(*total_bytes, *total, *seq, *crc, bytes).unwrap();
            }
        }
        assert_eq!(r.into_image().unwrap(), img);
    }

    #[test]
    fn duplicate_chunk_is_typed_error() {
        let img = image(10_000);
        let digest = Digest::of(&img);
        let chunks = split(digest, &img, 4096);
        let mut r = Reassembly::new(digest, img.len() as u64, chunks.len() as u32).unwrap();
        if let Message::PutArgChunk {
            total_bytes,
            total,
            seq,
            crc,
            bytes,
            ..
        } = &chunks[0]
        {
            r.accept(*total_bytes, *total, *seq, *crc, bytes).unwrap();
            assert_eq!(
                r.accept(*total_bytes, *total, *seq, *crc, bytes),
                Err(ChunkError::Duplicate { seq: *seq })
            );
            // The landed CRC stays consultable for the server's re-ack rule.
            assert_eq!(r.seen_crc(*seq), Some(*crc));
        }
    }

    #[test]
    fn corrupt_chunk_is_typed_error() {
        let img = image(10_000);
        let digest = Digest::of(&img);
        let chunks = split(digest, &img, 4096);
        let mut r = Reassembly::new(digest, img.len() as u64, chunks.len() as u32).unwrap();
        if let Message::PutArgChunk {
            total_bytes,
            total,
            seq,
            crc,
            bytes,
            ..
        } = &chunks[1]
        {
            let mut garbled = bytes.clone();
            garbled[17] ^= 0x40;
            assert_eq!(
                r.accept(*total_bytes, *total, *seq, *crc, &garbled),
                Err(ChunkError::BadCrc { seq: *seq })
            );
            // Wrong length for the claimed position.
            assert!(matches!(
                r.accept(*total_bytes, *total, *seq, crc32c(&bytes[1..]), &bytes[1..]),
                Err(ChunkError::SizeMismatch { .. })
            ));
        }
    }

    #[test]
    fn geometry_lies_are_typed_errors() {
        let img = image(10_000);
        let digest = Digest::of(&img);
        let mut r = Reassembly::new(digest, img.len() as u64, 3).unwrap();
        assert!(matches!(
            r.accept(9_999, 3, 0, 0, &[]),
            Err(ChunkError::TotalMismatch { .. })
        ));
        assert!(matches!(
            r.accept(10_000, 3, 3, 0, &[]),
            Err(ChunkError::SeqOutOfRange { seq: 3, total: 3 })
        ));
        assert_eq!(
            Reassembly::new(digest, 0, 1).unwrap_err(),
            ChunkError::Oversize { total_bytes: 0 }
        );
        assert!(Reassembly::new(digest, u64::MAX, 1).is_err());
        assert_eq!(
            Reassembly::new(digest, 10, 0).unwrap_err(),
            ChunkError::BadTotal {
                total: 0,
                total_bytes: 10
            }
        );
        assert!(Reassembly::new(digest, 10, 11).is_err());
    }

    #[test]
    fn missing_chunk_is_incomplete_not_truncation() {
        let img = image(10_000);
        let digest = Digest::of(&img);
        let chunks = split(digest, &img, 4096);
        let mut r = Reassembly::new(digest, img.len() as u64, chunks.len() as u32).unwrap();
        for c in chunks.iter().skip(1) {
            if let Message::PutArgChunk {
                total_bytes,
                total,
                seq,
                crc,
                bytes,
                ..
            } = c
            {
                let done = r.accept(*total_bytes, *total, *seq, *crc, bytes).unwrap();
                assert!(!done);
            }
        }
        assert_eq!(
            r.into_image().unwrap_err(),
            ChunkError::Incomplete { missing: 1 }
        );
    }

    #[test]
    fn wrong_digest_cannot_escape() {
        // All chunks individually valid, but the upload was addressed to a
        // different value's digest: completion must refuse.
        let img = image(10_000);
        let wrong = Digest::of(b"some other value entirely");
        let chunks = split(wrong, &img, 4096);
        let mut r = Reassembly::new(wrong, img.len() as u64, chunks.len() as u32).unwrap();
        for c in &chunks {
            if let Message::PutArgChunk {
                total_bytes,
                total,
                seq,
                crc,
                bytes,
                ..
            } = c
            {
                r.accept(*total_bytes, *total, *seq, *crc, bytes).unwrap();
            }
        }
        assert!(matches!(
            r.into_image(),
            Err(ChunkError::DigestMismatch { .. })
        ));
    }
}
