//! Deterministic WAN link shaping for transports.
//!
//! [`ShapedTransport`] wraps any [`Transport`] the same way
//! [`FaultyTransport`](crate::fault::FaultyTransport) does and imposes a
//! wide-area link on the send path: a token-bucket bandwidth cap (frames
//! queue FIFO through a shared bottleneck), a fixed one-way propagation
//! delay, and seeded random loss whose effective rate grows with the
//! number of concurrent lanes sharing the link (the congestion term —
//! the mechanism behind the GridFTP high-N collapse). Receives pass
//! through untouched: shaping one direction of a request/reply pair
//! already serializes the conversation through the link.
//!
//! **Determinism contract**: whether send operation `k` on lane `l` is
//! lost is a pure function of `(shape.seed, l, k, lanes)` — see
//! [`planned_shape`] / [`shape_schedule`] / [`shape_fingerprint`]. Lanes
//! are caller-assigned (a parallel-stream uploader gives worker `w` lane
//! `w`), so two runs with the same shape replay the same loss schedule
//! however threads interleave. Only the *effective* loss rate depends on
//! the live lane count; with `congestion_ppm = 0` the schedule is
//! independent of it, which is what the chaos harness pins.
//!
//! The same shape drives the simulator's WAN model
//! (`ninf-netsim::wan`), so live shaped runs and FluidNet predictions
//! share one link spec; `docs/MODEL.md` §"WAN shaping" records the
//! event mapping.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::error::ProtocolResult;
use crate::frame::FRAME_HEADER_BYTES;
use crate::message::Message;
use crate::transport::Transport;

/// One wide-area link's shape. All-integer so specs hash and compare
/// exactly (it rides inside `CallOptions`, which is `Copy + Eq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkShape {
    /// Bottleneck capacity in bytes/second; `0` means uncapped.
    pub bytes_per_sec: u64,
    /// One-way propagation delay in microseconds.
    pub delay_us: u64,
    /// Baseline loss rate in parts per million of send operations.
    pub loss_ppm: u32,
    /// Extra loss per *additional* concurrent lane, in ppm — models
    /// self-congestion: effective loss is
    /// `loss_ppm + congestion_ppm * (lanes - 1)`.
    pub congestion_ppm: u32,
    /// RNG seed; identical seeds replay identical loss schedules.
    pub seed: u64,
}

impl Default for LinkShape {
    fn default() -> Self {
        Self {
            bytes_per_sec: 0,
            delay_us: 0,
            loss_ppm: 0,
            congestion_ppm: 0,
            seed: 1,
        }
    }
}

/// Effective loss never exceeds this, so a congested link stays lossy
/// rather than becoming a black hole.
const MAX_EFF_LOSS_PPM: u64 = 950_000;

/// Effective loss rate in ppm when `lanes` lanes share the link.
pub fn eff_loss_ppm(shape: &LinkShape, lanes: u32) -> u32 {
    let extra = shape.congestion_ppm as u64 * lanes.saturating_sub(1) as u64;
    (shape.loss_ppm as u64 + extra).min(MAX_EFF_LOSS_PPM) as u32
}

impl LinkShape {
    /// Parse a spec string: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// bw=4m,delay=20ms,loss=0.01,congestion=0.015,seed=1997
    /// ```
    ///
    /// `bw` takes bytes/second with optional `k`/`m`/`g` (decimal)
    /// suffix, `0` = uncapped. `delay` takes `us`/`ms`/`s` (bare numbers
    /// are microseconds). `loss` and `congestion` take a fraction
    /// (`0.01`) or explicit `ppm` (`10000ppm`). Omitted keys keep their
    /// defaults. [`LinkShape`]'s `Display` emits a canonical spec that
    /// parses back to the identical shape.
    pub fn parse(spec: &str) -> Result<LinkShape, String> {
        let mut shape = LinkShape::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("wan spec: `{part}` is not key=value"))?;
            match key.trim() {
                "bw" => shape.bytes_per_sec = parse_bytes(value.trim())?,
                "delay" => shape.delay_us = parse_duration_us(value.trim())?,
                "loss" => shape.loss_ppm = parse_ppm(value.trim())?,
                "congestion" => shape.congestion_ppm = parse_ppm(value.trim())?,
                "seed" => {
                    shape.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("wan spec: bad seed `{value}`"))?
                }
                other => return Err(format!("wan spec: unknown key `{other}`")),
            }
        }
        Ok(shape)
    }
}

impl std::fmt::Display for LinkShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bw={},delay={}us,loss={}ppm,congestion={}ppm,seed={}",
            self.bytes_per_sec, self.delay_us, self.loss_ppm, self.congestion_ppm, self.seed
        )
    }
}

fn parse_bytes(v: &str) -> Result<u64, String> {
    let (digits, mult) = match v.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&v[..v.len() - 1], 1_000u64),
        Some(b'm') | Some(b'M') => (&v[..v.len() - 1], 1_000_000),
        Some(b'g') | Some(b'G') => (&v[..v.len() - 1], 1_000_000_000),
        _ => (v, 1),
    };
    let n: f64 = digits
        .parse()
        .map_err(|_| format!("wan spec: bad bandwidth `{v}`"))?;
    if n < 0.0 || !n.is_finite() {
        return Err(format!("wan spec: bad bandwidth `{v}`"));
    }
    Ok((n * mult as f64).round() as u64)
}

fn parse_duration_us(v: &str) -> Result<u64, String> {
    let (digits, mult) = if let Some(d) = v.strip_suffix("ms") {
        (d, 1_000u64)
    } else if let Some(d) = v.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = v.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        (v, 1)
    };
    let n: f64 = digits
        .parse()
        .map_err(|_| format!("wan spec: bad delay `{v}`"))?;
    if n < 0.0 || !n.is_finite() {
        return Err(format!("wan spec: bad delay `{v}`"));
    }
    Ok((n * mult as f64).round() as u64)
}

fn parse_ppm(v: &str) -> Result<u32, String> {
    if let Some(d) = v.strip_suffix("ppm") {
        return d.parse().map_err(|_| format!("wan spec: bad ppm `{v}`"));
    }
    let f: f64 = v
        .parse()
        .map_err(|_| format!("wan spec: bad loss fraction `{v}`"))?;
    if !(0.0..=1.0).contains(&f) {
        return Err(format!("wan spec: loss fraction `{v}` outside [0, 1]"));
    }
    Ok((f * 1_000_000.0).round() as u32)
}

/// The shared bottleneck all lanes to one destination contend on. Frames
/// queue FIFO: each send reserves the next free transmission slot
/// (`len / bytes_per_sec` long), so N lanes collectively never exceed the
/// cap, while a single stop-and-wait lane leaves the link idle during
/// its propagation-delay waits — the headroom parallel streams harvest.
#[derive(Debug)]
pub struct SharedLink {
    shape: LinkShape,
    /// When the link next becomes free, relative to `epoch`.
    next_free: Mutex<Duration>,
    epoch: Instant,
    lanes: AtomicU32,
}

impl SharedLink {
    /// A fresh link with no lanes attached.
    pub fn new(shape: LinkShape) -> Self {
        Self {
            shape,
            next_free: Mutex::new(Duration::ZERO),
            epoch: Instant::now(),
            lanes: AtomicU32::new(0),
        }
    }

    /// The shape this link was built from.
    pub fn shape(&self) -> LinkShape {
        self.shape
    }

    /// Lanes currently attached.
    pub fn lanes(&self) -> u32 {
        self.lanes.load(Ordering::Relaxed)
    }

    /// Serialize `len` bytes through the bottleneck: reserve the next
    /// free slot and return when the last byte has left the link. The
    /// propagation delay is *not* included — callers add it only for
    /// frames that actually arrive.
    pub fn transmit(&self, len: usize) {
        if self.shape.bytes_per_sec == 0 {
            return;
        }
        let tx = Duration::from_nanos(
            (len as u128 * 1_000_000_000 / self.shape.bytes_per_sec as u128) as u64,
        );
        let done = {
            let mut free = self.next_free.lock().unwrap_or_else(|e| e.into_inner());
            let now = self.epoch.elapsed();
            let start = (*free).max(now);
            *free = start + tx;
            *free
        };
        let now = self.epoch.elapsed();
        if done > now {
            std::thread::sleep(done - now);
        }
    }
}

/// Process-global link registry: every lane that names the same
/// `(key, shape)` shares one [`SharedLink`], so parallel streams from
/// one process to one destination contend on a single bottleneck the
/// way they would on a real WAN path.
pub fn link_for(key: &str, shape: LinkShape) -> Arc<SharedLink> {
    type LinkMap = HashMap<(String, LinkShape), Arc<SharedLink>>;
    static LINKS: OnceLock<Mutex<LinkMap>> = OnceLock::new();
    let links = LINKS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = links.lock().unwrap_or_else(|e| e.into_inner());
    map.entry((key.to_string(), shape))
        .or_insert_with(|| Arc::new(SharedLink::new(shape)))
        .clone()
}

/// What the link did (or [`planned_shape`] says it will do) to one send
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    /// Transmitted, delayed by propagation, delivered.
    Forward,
    /// Transmitted (link time consumed) but lost downstream.
    Lose,
}

impl ShapeKind {
    /// Short stable label, used in schedules and fingerprints.
    pub fn label(&self) -> &'static str {
        match self {
            ShapeKind::Forward => "forward",
            ShapeKind::Lose => "lose",
        }
    }
}

/// Same SplitMix64 as `fault.rs` and the simulator (`ninf-netsim` sits
/// above this crate, so the generator is duplicated rather than
/// inverting the dependency).
#[derive(Debug, Clone, Copy)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Dedicated sub-stream for operation `op` on lane `lane` under `seed`:
/// one draw per operation, so no operation's outcome can shift another's.
fn lane_op_stream(seed: u64, lane: u32, op: u64) -> SplitMix64 {
    SplitMix64(
        seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ op.wrapping_mul(0xA076_1D64_78BD_642F),
    )
}

/// Whether send operation `op` (0-based) on lane `lane` is lost when
/// `lanes` lanes share the link — a pure function, usable without any
/// transport. A [`ShapedTransport`] on the same lane of a link with the
/// same live lane count takes exactly this outcome on its `op`-th send.
pub fn planned_shape(shape: &LinkShape, lane: u32, lanes: u32, op: u64) -> ShapeKind {
    let draw = lane_op_stream(shape.seed, lane, op).next_u64() % 1_000_000;
    if draw < eff_loss_ppm(shape, lanes) as u64 {
        ShapeKind::Lose
    } else {
        ShapeKind::Forward
    }
}

/// The first `ops` loss decisions for `lane` under `shape` with `lanes`
/// concurrent lanes, precomputed. Two calls with the same arguments
/// return identical schedules.
pub fn shape_schedule(shape: &LinkShape, lane: u32, lanes: u32, ops: u64) -> Vec<ShapeKind> {
    (0..ops)
        .map(|op| planned_shape(shape, lane, lanes, op))
        .collect()
}

/// FNV-1a fingerprint of a lane's planned schedule, prefixed by the
/// canonical spec string — the "what will the WAN do" artifact a
/// transcript pins before a single byte moves.
pub fn shape_fingerprint(shape: &LinkShape, lane: u32, lanes: u32, ops: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(shape.to_string().as_bytes());
    eat(b"#");
    for kind in shape_schedule(shape, lane, lanes, ops) {
        eat(kind.label().as_bytes());
        eat(b";");
    }
    h
}

/// Counters of what the link did to this lane's sends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapeStats {
    /// Sends delivered to the inner transport.
    pub forwarded: u64,
    /// Sends lost downstream (link time still consumed).
    pub lost: u64,
    /// Payload bytes paced through the link (lost sends included).
    pub bytes: u64,
}

/// A transport wrapper that imposes a [`LinkShape`] on the send path:
/// every outgoing frame queues through the lane's [`SharedLink`]
/// bottleneck, then either arrives after the propagation delay or is
/// lost per the lane's seeded schedule. Receives pass through untouched.
pub struct ShapedTransport<T: Transport> {
    inner: T,
    link: Arc<SharedLink>,
    lane: u32,
    op: u64,
    stats: ShapeStats,
}

impl<T: Transport> ShapedTransport<T> {
    /// Wrap `inner` as lane `lane` of `link`. Lane numbers are
    /// caller-assigned so schedules stay deterministic however threads
    /// race; a parallel uploader gives worker `w` lane `w`.
    pub fn new(inner: T, link: Arc<SharedLink>, lane: u32) -> Self {
        link.lanes.fetch_add(1, Ordering::Relaxed);
        Self {
            inner,
            link,
            lane,
            op: 0,
            stats: ShapeStats::default(),
        }
    }

    /// Wrap `inner` on a private single-lane link of `shape` — the
    /// simple case for shaping one client connection.
    pub fn private(inner: T, shape: LinkShape) -> Self {
        Self::new(inner, Arc::new(SharedLink::new(shape)), 0)
    }

    /// Counters so far.
    pub fn stats(&self) -> ShapeStats {
        self.stats
    }

    /// The lane number this transport registered as.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Pace `len` bytes through the link; returns whether the frame
    /// survives (and sleeps the propagation delay if it does).
    fn shape_send(&mut self, len: usize) -> ShapeKind {
        let shape = self.link.shape();
        let lanes = self.link.lanes().max(1);
        let kind = planned_shape(&shape, self.lane, lanes, self.op);
        self.op += 1;
        self.link.transmit(len);
        self.stats.bytes += len as u64;
        match kind {
            ShapeKind::Forward => {
                if shape.delay_us > 0 {
                    std::thread::sleep(Duration::from_micros(shape.delay_us));
                }
                self.stats.forwarded += 1;
            }
            ShapeKind::Lose => self.stats.lost += 1,
        }
        kind
    }
}

impl<T: Transport> Drop for ShapedTransport<T> {
    fn drop(&mut self) {
        self.link.lanes.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<T: Transport> Transport for ShapedTransport<T> {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        let len = FRAME_HEADER_BYTES + msg.encode().len();
        match self.shape_send(len) {
            ShapeKind::Forward => self.inner.send(msg),
            // Lost on the wire: the peer sees nothing. Pretend success so
            // the caller proceeds to its read — where the deadline decides.
            ShapeKind::Lose => Ok(()),
        }
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        self.inner.recv()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> ProtocolResult<bool> {
        self.inner.set_deadline(deadline)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> ProtocolResult<()> {
        match self.shape_send(bytes.len()) {
            ShapeKind::Forward => self.inner.send_raw(bytes),
            ShapeKind::Lose => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProtocolError;
    use crate::transport::ChannelTransport;
    use crate::Value;

    /// Discards everything; for schedule/pacing tests that never read
    /// the peer side.
    struct Sink;

    impl Transport for Sink {
        fn send(&mut self, _msg: &Message) -> ProtocolResult<()> {
            Ok(())
        }
        fn recv(&mut self) -> ProtocolResult<Message> {
            Err(ProtocolError::Disconnected)
        }
        fn send_raw(&mut self, _bytes: &[u8]) -> ProtocolResult<()> {
            Ok(())
        }
    }

    #[test]
    fn spec_grammar_parses_and_round_trips() {
        let shape = LinkShape::parse("bw=4m,delay=20ms,loss=0.01,congestion=0.015,seed=1997")
            .expect("spec parses");
        assert_eq!(
            shape,
            LinkShape {
                bytes_per_sec: 4_000_000,
                delay_us: 20_000,
                loss_ppm: 10_000,
                congestion_ppm: 15_000,
                seed: 1997,
            }
        );
        // Display emits the canonical form, which parses back identically.
        let reparsed = LinkShape::parse(&shape.to_string()).expect("canonical form parses");
        assert_eq!(reparsed, shape);
        // Suffix variants and defaults.
        assert_eq!(LinkShape::parse("bw=512k").unwrap().bytes_per_sec, 512_000);
        assert_eq!(LinkShape::parse("delay=250us").unwrap().delay_us, 250);
        assert_eq!(LinkShape::parse("delay=1s").unwrap().delay_us, 1_000_000);
        assert_eq!(LinkShape::parse("loss=2500ppm").unwrap().loss_ppm, 2_500);
        assert_eq!(LinkShape::parse("").unwrap(), LinkShape::default());
    }

    #[test]
    fn spec_grammar_rejects_nonsense() {
        assert!(LinkShape::parse("bw").is_err());
        assert!(LinkShape::parse("warp=9").is_err());
        assert!(LinkShape::parse("bw=fast").is_err());
        assert!(LinkShape::parse("loss=1.5").is_err());
        assert!(LinkShape::parse("delay=soon").is_err());
        assert!(LinkShape::parse("seed=minus-one").is_err());
    }

    #[test]
    fn bandwidth_cap_paces_sends() {
        // 1 MB/s cap, ~32 KiB frames: each send must hold the link
        // ~32 ms; four sends ≥ ~120 ms.
        let shape = LinkShape {
            bytes_per_sec: 1_000_000,
            ..LinkShape::default()
        };
        let msg = Message::ResultData {
            results: vec![Value::DoubleArray(vec![1.0; 4096])],
        };
        let mut shaped = ShapedTransport::private(Sink, shape);
        let start = Instant::now();
        for _ in 0..4 {
            shaped.send(&msg).unwrap();
        }
        assert!(
            start.elapsed() >= Duration::from_millis(120),
            "4 × ~32 KiB at 1 MB/s finished in {:?}",
            start.elapsed()
        );
        assert_eq!(shaped.stats().forwarded, 4);
    }

    #[test]
    fn propagation_delay_holds_each_send() {
        let shape = LinkShape {
            delay_us: 15_000,
            ..LinkShape::default()
        };
        let (a, mut b) = ChannelTransport::pair();
        let mut shaped = ShapedTransport::private(a, shape);
        let start = Instant::now();
        shaped.send(&Message::QueryLoad).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert_eq!(b.recv().unwrap(), Message::QueryLoad);
    }

    #[test]
    fn lost_sends_never_arrive_but_consume_link_time() {
        let shape = LinkShape {
            bytes_per_sec: 1_000_000,
            loss_ppm: 1_000_000,
            ..LinkShape::default()
        };
        let (a, mut b) = ChannelTransport::pair();
        let mut shaped = ShapedTransport::private(a, shape);
        let msg = Message::ResultData {
            results: vec![Value::DoubleArray(vec![1.0; 4096])],
        };
        let start = Instant::now();
        shaped.send(&msg).unwrap();
        // The link was still held for the transmission time…
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(shaped.stats().lost, 1);
        // …but the peer sees silence; its deadline governs recovery.
        b.set_deadline(Some(Duration::from_millis(20))).unwrap();
        assert!(b.recv().unwrap_err().is_timeout());
    }

    #[test]
    fn lanes_share_one_bottleneck() {
        let shape = LinkShape {
            bytes_per_sec: 1_000_000,
            ..LinkShape::default()
        };
        let link = Arc::new(SharedLink::new(shape));
        let msg = Message::ResultData {
            results: vec![Value::DoubleArray(vec![1.0; 4096])],
        };
        let start = Instant::now();
        std::thread::scope(|s| {
            for lane in 0..2 {
                let link = link.clone();
                let msg = &msg;
                s.spawn(move || {
                    let mut shaped = ShapedTransport::new(Sink, link, lane);
                    for _ in 0..2 {
                        shaped.send(msg).unwrap();
                    }
                });
            }
        });
        // 4 × ~32 KiB total must serialize through the shared cap even
        // though two lanes sent concurrently.
        assert!(
            start.elapsed() >= Duration::from_millis(120),
            "shared link let lanes overlap: {:?}",
            start.elapsed()
        );
        assert_eq!(link.lanes(), 0, "lanes deregister on drop");
    }

    #[test]
    fn registry_shares_links_by_key_and_shape() {
        let shape = LinkShape {
            bytes_per_sec: 77,
            seed: 41,
            ..LinkShape::default()
        };
        let a = link_for("10.0.0.1:7999", shape);
        let b = link_for("10.0.0.1:7999", shape);
        let c = link_for("10.0.0.2:7999", shape);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn congestion_raises_effective_loss_with_lane_count() {
        let shape = LinkShape {
            loss_ppm: 10_000,
            congestion_ppm: 15_000,
            ..LinkShape::default()
        };
        assert_eq!(eff_loss_ppm(&shape, 1), 10_000);
        assert_eq!(eff_loss_ppm(&shape, 4), 55_000);
        assert_eq!(eff_loss_ppm(&shape, 16), 235_000);
        // Capped: the link never becomes a pure black hole.
        let flood = LinkShape {
            congestion_ppm: 1_000_000,
            ..shape
        };
        assert_eq!(eff_loss_ppm(&flood, 1000), MAX_EFF_LOSS_PPM as u32);
    }

    #[test]
    fn transport_history_matches_planned_schedule() {
        let shape = LinkShape {
            loss_ppm: 300_000,
            seed: 31,
            ..LinkShape::default()
        };
        let mut shaped = ShapedTransport::private(Sink, shape);
        let mut observed = Vec::new();
        for op in 0..64 {
            let before = shaped.stats();
            shaped.send(&Message::QueryLoad).unwrap();
            observed.push(if shaped.stats().lost > before.lost {
                ShapeKind::Lose
            } else {
                ShapeKind::Forward
            });
            let _ = op;
        }
        assert_eq!(observed, shape_schedule(&shape, 0, 1, 64));
        assert!(observed.contains(&ShapeKind::Lose));
        assert!(observed.contains(&ShapeKind::Forward));
    }

    #[test]
    fn lanes_draw_decorrelated_schedules() {
        let shape = LinkShape {
            loss_ppm: 400_000,
            seed: 7,
            ..LinkShape::default()
        };
        let lane0 = shape_schedule(&shape, 0, 4, 256);
        let lane1 = shape_schedule(&shape, 1, 4, 256);
        assert_ne!(lane0, lane1, "lanes must not share one loss stream");
        // Same (shape, lane, lanes) always replays identically.
        assert_eq!(lane0, shape_schedule(&shape, 0, 4, 256));
    }

    /// Regression (satellite): the planned delay/loss schedule for a
    /// given (spec, seed) is pinned by fingerprint — any change to the
    /// spec grammar, the lane sub-stream derivation, or the loss draw
    /// shows up here as a changed constant, never silently.
    #[test]
    fn shape_fingerprint_is_pinned() {
        let shape = LinkShape::parse("bw=4m,delay=20ms,loss=0.01,congestion=0.015,seed=1997")
            .expect("spec parses");
        let fp = shape_fingerprint(&shape, 0, 1, 256);
        assert_eq!(fp, shape_fingerprint(&shape, 0, 1, 256));
        let other_seed = LinkShape {
            seed: 1998,
            ..shape
        };
        assert_ne!(fp, shape_fingerprint(&other_seed, 0, 1, 256));
        assert_ne!(fp, shape_fingerprint(&shape, 1, 1, 256));
        assert_eq!(
            fp, PINNED_FINGERPRINT,
            "shaped schedule drifted for the pinned (spec, seed)"
        );
    }

    /// Computed once from the implementation above and frozen; see
    /// `shape_fingerprint_is_pinned`.
    const PINNED_FINGERPRINT: u64 = 9_753_869_592_768_979_337;
}
