//! Layout-directed argument validation — the client-side "interpretation" of
//! the compiled IDL, and the server-side defensive re-check.
//!
//! `Ninf_call` "interprets the IDL code and marshalls the arguments" (§2.3):
//! scalar integer inputs bind the dimension variables, the size programs
//! yield each array's extent, and every supplied array must match exactly.

use ninf_idl::compile::ParamLayout;
use ninf_idl::CompiledInterface;

use crate::value::Value;

/// Validate `args` — the `mode_in`/`mode_inout` values in declaration order —
/// against `interface`, returning the resolved layout of *all* parameters.
pub fn validate_call_args(
    interface: &CompiledInterface,
    args: &[Value],
) -> Result<Vec<ParamLayout>, String> {
    let send_params: Vec<_> = interface.params.iter().filter(|p| p.mode.sends()).collect();
    if send_params.len() != args.len() {
        return Err(format!(
            "{} takes {} input arguments, got {}",
            interface.name,
            send_params.len(),
            args.len()
        ));
    }
    // Bind scalar integer inputs to the interface's dimension variables.
    let mut scalars: Vec<(&str, i64)> = Vec::new();
    for (p, v) in send_params.iter().zip(args) {
        if p.is_scalar() && interface.scalar_table.iter().any(|s| s == &p.name) {
            match v.as_scalar_i64() {
                Some(x) => scalars.push((p.name.as_str(), x)),
                None => {
                    return Err(format!(
                        "scalar `{}` must be an integer to size dependent arrays",
                        p.name
                    ))
                }
            }
        }
    }
    let layout = interface.layout(&scalars).map_err(|e| e.to_string())?;

    let send_layout: Vec<_> = layout.iter().filter(|l| l.mode.sends()).collect();
    for ((l, v), p) in send_layout.iter().zip(args).zip(&send_params) {
        v.conforms(l.base, l.count, p.is_scalar())
            .map_err(|e| e.to_string())?;
    }
    Ok(layout)
}

/// Validate server results against the layout the client computed: the
/// `mode_out`/`mode_inout` values in declaration order.
pub fn validate_results(
    interface: &CompiledInterface,
    layout: &[ParamLayout],
    results: &[Value],
) -> Result<(), String> {
    let recv: Vec<_> = interface
        .params
        .iter()
        .zip(layout)
        .filter(|(p, _)| p.mode.receives())
        .collect();
    if recv.len() != results.len() {
        return Err(format!(
            "{} returns {} values, server sent {}",
            interface.name,
            recv.len(),
            results.len()
        ));
    }
    for ((p, l), v) in recv.iter().zip(results) {
        v.conforms(l.base, l.count, p.is_scalar())
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Array payload bytes of the request (client → server), per the layout.
pub fn request_payload_bytes(layout: &[ParamLayout]) -> usize {
    layout
        .iter()
        .filter(|l| l.mode.sends() && l.count > 1)
        .map(|l| l.bytes)
        .sum()
}

/// Array payload bytes of the reply (server → client), per the layout.
pub fn reply_payload_bytes(layout: &[ParamLayout]) -> usize {
    layout
        .iter()
        .filter(|l| l.mode.receives() && l.count > 1)
        .map(|l| l.bytes)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linpack_iface() -> CompiledInterface {
        ninf_idl::stdlib_interfaces().remove(3)
    }

    #[test]
    fn accepts_well_formed_linpack_call() {
        let iface = linpack_iface();
        let n = 10usize;
        let args = vec![
            Value::Int(n as i32),
            Value::DoubleArray(vec![0.0; n * n]),
            Value::DoubleArray(vec![0.0; n]),
        ];
        let layout = validate_call_args(&iface, &args).unwrap();
        assert_eq!(layout.len(), 5);
        // x out (8n) + ipvt out (4n)
        assert_eq!(reply_payload_bytes(&layout), 12 * n);
        assert_eq!(request_payload_bytes(&layout), 8 * n * n + 8 * n);
    }

    #[test]
    fn rejects_arity_mismatch() {
        let iface = linpack_iface();
        assert!(validate_call_args(&iface, &[Value::Int(4)]).is_err());
    }

    #[test]
    fn rejects_extent_mismatch() {
        let iface = linpack_iface();
        let args = vec![
            Value::Int(4),
            Value::DoubleArray(vec![0.0; 15]),
            Value::DoubleArray(vec![0.0; 4]),
        ];
        assert!(validate_call_args(&iface, &args).is_err());
    }

    #[test]
    fn rejects_non_integer_dimension_scalar() {
        let iface = linpack_iface();
        let args = vec![
            Value::Double(4.0),
            Value::DoubleArray(vec![0.0; 16]),
            Value::DoubleArray(vec![0.0; 4]),
        ];
        assert!(validate_call_args(&iface, &args).is_err());
    }

    #[test]
    fn validates_results_shape() {
        let iface = linpack_iface();
        let n = 4usize;
        let args = vec![
            Value::Int(n as i32),
            Value::DoubleArray(vec![0.0; n * n]),
            Value::DoubleArray(vec![0.0; n]),
        ];
        let layout = validate_call_args(&iface, &args).unwrap();
        let good = vec![
            Value::DoubleArray(vec![0.0; n]),
            Value::IntArray(vec![0; n]),
        ];
        assert!(validate_results(&iface, &layout, &good).is_ok());
        let short = vec![Value::DoubleArray(vec![0.0; n])];
        assert!(validate_results(&iface, &layout, &short).is_err());
        let wrong = vec![
            Value::DoubleArray(vec![0.0; n + 1]),
            Value::IntArray(vec![0; n]),
        ];
        assert!(validate_results(&iface, &layout, &wrong).is_err());
    }
}
