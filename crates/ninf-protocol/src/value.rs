//! Typed argument values passed through `Ninf_call`.
//!
//! The current Ninf client API supports scalars and (multi-dimensional)
//! numeric arrays — the paper's footnote 1 notes that arbitrary user-defined
//! objects are future work. Matrices travel as flat column-major arrays; the
//! IDL layout supplies the logical dimensions.

use ninf_idl::{BaseType, IdlError};
use ninf_xdr::{XdrDecoder, XdrEncoder, XdrResult};

/// One argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit signed scalar.
    Int(i32),
    /// 64-bit signed scalar.
    Long(i64),
    /// Single-precision scalar.
    Float(f32),
    /// Double-precision scalar.
    Double(f64),
    /// Array of 32-bit signed integers.
    IntArray(Vec<i32>),
    /// Array of 64-bit signed integers.
    LongArray(Vec<i64>),
    /// Array of single-precision floats.
    FloatArray(Vec<f32>),
    /// Array of doubles (the workhorse: matrices, vectors).
    DoubleArray(Vec<f64>),
}

impl Value {
    /// The element base type.
    pub fn base_type(&self) -> BaseType {
        match self {
            Value::Int(_) | Value::IntArray(_) => BaseType::Int,
            Value::Long(_) | Value::LongArray(_) => BaseType::Long,
            Value::Float(_) | Value::FloatArray(_) => BaseType::Float,
            Value::Double(_) | Value::DoubleArray(_) => BaseType::Double,
        }
    }

    /// Whether this is a scalar value.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Value::Int(_) | Value::Long(_) | Value::Float(_) | Value::Double(_)
        )
    }

    /// Element count (1 for scalars).
    pub fn count(&self) -> usize {
        match self {
            Value::IntArray(v) => v.len(),
            Value::LongArray(v) => v.len(),
            Value::FloatArray(v) => v.len(),
            Value::DoubleArray(v) => v.len(),
            _ => 1,
        }
    }

    /// Payload bytes this value occupies on the wire (excluding tags).
    pub fn wire_bytes(&self) -> usize {
        self.count() * self.base_type().wire_bytes()
    }

    /// The scalar's integer value, if it is an integer scalar. Used to bind
    /// IDL dimension variables.
    pub fn as_scalar_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v as i64),
            Value::Long(v) => Some(v),
            _ => None,
        }
    }

    /// Encode *without* a type tag, as `count` elements of `base` — the
    /// layout-directed form used for call arguments, where both sides know
    /// the type and extent from the compiled IDL.
    pub fn encode_body(&self, enc: &mut XdrEncoder) {
        match self {
            Value::Int(v) => enc.put_i32(*v),
            Value::Long(v) => enc.put_i64(*v),
            Value::Float(v) => enc.put_f32(*v),
            Value::Double(v) => enc.put_f64(*v),
            Value::IntArray(v) => {
                for &x in v {
                    enc.put_i32(x);
                }
            }
            Value::LongArray(v) => {
                for &x in v {
                    enc.put_i64(x);
                }
            }
            Value::FloatArray(v) => {
                for &x in v {
                    enc.put_f32(x);
                }
            }
            Value::DoubleArray(v) => enc.put_f64_slice(v),
        }
    }

    /// Decode a value whose type and extent are dictated by the IDL layout.
    pub fn decode_body(
        dec: &mut XdrDecoder<'_>,
        base: BaseType,
        count: usize,
        scalar: bool,
    ) -> XdrResult<Value> {
        if scalar {
            return Ok(match base {
                BaseType::Int => Value::Int(dec.get_i32()?),
                BaseType::Long => Value::Long(dec.get_i64()?),
                BaseType::Float => Value::Float(dec.get_f32()?),
                BaseType::Double => Value::Double(dec.get_f64()?),
            });
        }
        Ok(match base {
            BaseType::Int => {
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    v.push(dec.get_i32()?);
                }
                Value::IntArray(v)
            }
            BaseType::Long => {
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    v.push(dec.get_i64()?);
                }
                Value::LongArray(v)
            }
            BaseType::Float => {
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    v.push(dec.get_f32()?);
                }
                Value::FloatArray(v)
            }
            BaseType::Double => Value::DoubleArray(dec.get_f64_slice(count)?),
        })
    }

    /// Check this value against an IDL parameter layout.
    pub fn conforms(&self, base: BaseType, count: usize, scalar: bool) -> Result<(), IdlError> {
        if self.base_type() != base {
            return Err(IdlError::Semantic(format!(
                "argument type {:?} does not match IDL type {:?}",
                self.base_type(),
                base
            )));
        }
        if self.is_scalar() != scalar {
            return Err(IdlError::Semantic("scalar/array mismatch with IDL".into()));
        }
        if !scalar && self.count() != count {
            return Err(IdlError::Semantic(format!(
                "array length {} does not match IDL extent {count}",
                self.count()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_all_types() {
        let cases = vec![
            (Value::Int(-7), BaseType::Int),
            (Value::Long(1 << 40), BaseType::Long),
            (Value::Float(2.5), BaseType::Float),
            (Value::Double(-1e100), BaseType::Double),
        ];
        for (v, base) in cases {
            let mut enc = XdrEncoder::new();
            v.encode_body(&mut enc);
            let wire = enc.finish();
            let mut dec = XdrDecoder::new(&wire);
            let back = Value::decode_body(&mut dec, base, 1, true).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn array_roundtrip_all_types() {
        let cases = vec![
            (Value::IntArray(vec![1, -2, 3]), BaseType::Int, 3),
            (Value::LongArray(vec![1 << 40, -5]), BaseType::Long, 2),
            (Value::FloatArray(vec![0.5; 4]), BaseType::Float, 4),
            (Value::DoubleArray(vec![1.0, 2.0]), BaseType::Double, 2),
        ];
        for (v, base, count) in cases {
            let mut enc = XdrEncoder::new();
            v.encode_body(&mut enc);
            let wire = enc.finish();
            assert_eq!(wire.len(), v.wire_bytes());
            let mut dec = XdrDecoder::new(&wire);
            let back = Value::decode_body(&mut dec, base, count, false).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn conforms_checks_type_count_shape() {
        let v = Value::DoubleArray(vec![0.0; 9]);
        assert!(v.conforms(BaseType::Double, 9, false).is_ok());
        assert!(v.conforms(BaseType::Double, 8, false).is_err());
        assert!(v.conforms(BaseType::Float, 9, false).is_err());
        assert!(v.conforms(BaseType::Double, 9, true).is_err());
        let s = Value::Int(4);
        assert!(s.conforms(BaseType::Int, 1, true).is_ok());
        assert!(s.conforms(BaseType::Int, 1, false).is_err());
    }

    #[test]
    fn scalar_i64_extraction() {
        assert_eq!(Value::Int(5).as_scalar_i64(), Some(5));
        assert_eq!(Value::Long(-9).as_scalar_i64(), Some(-9));
        assert_eq!(Value::Double(1.0).as_scalar_i64(), None);
        assert_eq!(Value::IntArray(vec![1]).as_scalar_i64(), None);
    }

    #[test]
    fn wire_bytes_matches_layout_math() {
        assert_eq!(Value::Int(1).wire_bytes(), 4);
        assert_eq!(Value::Double(1.0).wire_bytes(), 8);
        assert_eq!(Value::DoubleArray(vec![0.0; 100]).wire_bytes(), 800);
        assert_eq!(Value::IntArray(vec![0; 7]).wire_bytes(), 28);
    }
}
