//! Binary framing: every message travels as
//! `magic (4) | version (4) | payload length (4) | payload (XDR)`.

use std::io::{Read, Write};

use crate::error::{ProtocolError, ProtocolResult};
use crate::message::Message;

/// Frame magic: ASCII "NINF".
pub const FRAME_MAGIC: u32 = 0x4E49_4E46;

/// Protocol version this implementation speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a sane frame (a 4096×4096 double matrix plus headers).
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

/// Write one framed message.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> ProtocolResult<()> {
    let payload = msg.encode();
    let len = payload.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame(format!(
            "frame too large: {len} bytes"
        )));
    }
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_be_bytes());
    header[4..8].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    header[8..12].copy_from_slice(&len.to_be_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one framed message (blocking).
pub fn read_frame<R: Read>(r: &mut R) -> ProtocolResult<Message> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::Frame(format!("bad magic {magic:#010x}")));
    }
    let version = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::Frame(format!(
            "unsupported version {version}"
        )));
    }
    let len = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame(format!(
            "oversized frame: {len} bytes"
        )));
    }
    // Read the payload in capped chunks rather than allocating the full
    // header-claimed length up front: a hostile or corrupted header can
    // claim up to MAX_FRAME_BYTES, and the bytes must actually arrive
    // before we commit that much memory.
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(PAYLOAD_READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(PAYLOAD_READ_CHUNK);
        let start = payload.len();
        payload.resize(start + take, 0);
        r.read_exact(&mut payload[start..])?;
    }
    Message::decode(&payload)
}

/// Granularity of payload reads: allocation grows only as bytes arrive.
const PAYLOAD_READ_CHUNK: usize = 64 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn frame_roundtrip() {
        let msg = Message::Invoke {
            routine: "ep".into(),
            args: vec![Value::Int(24)],
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let msgs = vec![
            Message::QueryInterface {
                routine: "linpack".into(),
            },
            Message::QueryLoad,
            Message::Error {
                reason: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut reader = buf.as_slice();
        for m in &msgs {
            assert_eq!(&read_frame(&mut reader).unwrap(), m);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[0] = 0xff;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[7] = 99;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn lying_length_header_fails_on_missing_bytes() {
        // Header claims a near-maximal payload but the stream carries only a
        // few bytes: the read must fail with an I/O error after at most one
        // chunk of allocation, never commit the claimed 200+ MB.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[8..12].copy_from_slice(&(MAX_FRAME_BYTES - 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn chunked_payload_read_reassembles_large_frames() {
        // A payload larger than one read chunk must still round-trip.
        let big = Message::Invoke {
            routine: "echo".into(),
            args: vec![Value::DoubleArray(vec![1.25; 3 * PAYLOAD_READ_CHUNK / 8])],
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &big).unwrap();
        assert!(buf.len() > 2 * PAYLOAD_READ_CHUNK);
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), big);
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Message::QueryInterface {
                routine: "x".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn header_is_twelve_bytes_big_endian() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        assert_eq!(&buf[0..4], b"NINF");
        assert_eq!(&buf[4..8], &[0, 0, 0, 1]);
    }
}
