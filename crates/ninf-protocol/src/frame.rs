//! Binary framing v3: every message travels as
//! `magic (4) | version (4) | payload length (4) | call id (8) | crc32c (4) | payload (XDR)`.
//!
//! v3 adds the `call_id` header field so one TCP stream can carry many
//! in-flight calls (HTTP/2-style multiplexing): the server echoes the
//! request's call id on its reply, and the client demuxes replies back to
//! their callers in any completion order. Sequential (non-multiplexed)
//! peers use call id 0 throughout — [`write_frame`] / [`read_frame`] are
//! exactly that.
//!
//! The CRC-32C covers the call-id bytes *and* the payload and is verified
//! before any decode runs, so bytes corrupted in flight — including a flip
//! inside the call id, which would otherwise route a valid reply to the
//! wrong caller — surface as a typed [`ProtocolError::Checksum`]. v1/v2
//! frames (shorter headers) are rejected with
//! [`ProtocolError::UnsupportedVersion`]; the payload encoding itself is
//! unchanged since v1, only the header grew.
//!
//! On the write side the header and the borrowed payload go out in one
//! vectored syscall — the multi-megabyte matrix payload is never copied into
//! a header-prefixed staging buffer.

use std::io::{IoSlice, Read, Write};

use crate::crc::Crc32c;
use crate::error::{ProtocolError, ProtocolResult};
use crate::message::Message;

/// Frame magic: ASCII "NINF".
pub const FRAME_MAGIC: u32 = 0x4E49_4E46;

/// Protocol version this implementation speaks. v2 added the payload
/// CRC-32C word; v3 added the 8-byte call id for stream multiplexing.
pub const PROTOCOL_VERSION: u32 = 3;

/// Bytes in a v3 frame header.
pub const FRAME_HEADER_BYTES: usize = 24;

/// Upper bound on a sane frame (a 4096×4096 double matrix plus headers).
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

/// Parsed v3 frame header: what remains to be read and how to check it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length in bytes (already bounds-checked).
    pub len: u32,
    /// Multiplexing call id (0 for sequential peers).
    pub call_id: u64,
    /// Expected CRC-32C over call-id bytes ++ payload.
    pub crc: u32,
}

/// CRC-32C over the call-id bytes and the payload — the integrity domain of
/// a v3 frame.
fn frame_crc(call_id: u64, payload: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(&call_id.to_be_bytes()).update(payload);
    h.finish()
}

/// Write one framed message tagged with `call_id`.
pub fn write_frame_mux<W: Write>(w: &mut W, call_id: u64, msg: &Message) -> ProtocolResult<()> {
    let payload = msg.encode();
    let len = payload.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame(format!(
            "frame too large: {len} bytes"
        )));
    }
    let header = encode_header(call_id, len, frame_crc(call_id, &payload));
    write_all_vectored(w, &header, &payload)?;
    w.flush()?;
    Ok(())
}

/// Write one framed message with call id 0 (the sequential-peer form).
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> ProtocolResult<()> {
    write_frame_mux(w, 0, msg)
}

/// Encode one framed message into a fresh buffer. The reactor and the mux
/// driver use this to stage whole frames onto nonblocking write queues.
pub fn encode_frame(call_id: u64, msg: &Message) -> ProtocolResult<Vec<u8>> {
    let payload = msg.encode();
    let len = payload.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame(format!(
            "frame too large: {len} bytes"
        )));
    }
    let header = encode_header(call_id, len, frame_crc(call_id, &payload));
    let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    buf.extend_from_slice(&header);
    buf.extend_from_slice(&payload);
    Ok(buf)
}

fn encode_header(call_id: u64, len: u32, crc: u32) -> [u8; FRAME_HEADER_BYTES] {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_be_bytes());
    header[4..8].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    header[8..12].copy_from_slice(&len.to_be_bytes());
    header[12..20].copy_from_slice(&call_id.to_be_bytes());
    header[20..24].copy_from_slice(&crc.to_be_bytes());
    header
}

/// Validate a raw v3 header. Magic, version, and length bounds are checked
/// here; the CRC can only be checked once the payload has arrived
/// ([`check_frame_payload`]).
pub fn parse_frame_header(header: &[u8; FRAME_HEADER_BYTES]) -> ProtocolResult<FrameHeader> {
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::Frame(format!("bad magic {magic:#010x}")));
    }
    let version = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let len = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame(format!(
            "oversized frame: {len} bytes"
        )));
    }
    let call_id = u64::from_be_bytes(header[12..20].try_into().expect("8 bytes"));
    let crc = u32::from_be_bytes(header[20..24].try_into().expect("4 bytes"));
    Ok(FrameHeader { len, call_id, crc })
}

/// Verify the CRC and decode the payload of a frame whose header already
/// parsed. `payload` must be exactly `header.len` bytes.
pub fn check_frame_payload(header: &FrameHeader, payload: &[u8]) -> ProtocolResult<Message> {
    debug_assert_eq!(payload.len(), header.len as usize);
    let got = frame_crc(header.call_id, payload);
    if got != header.crc {
        return Err(ProtocolError::Checksum {
            expected: header.crc,
            got,
        });
    }
    Message::decode(payload)
}

/// Read one framed message and its call id (blocking).
pub fn read_frame_mux<R: Read>(r: &mut R) -> ProtocolResult<(u64, Message)> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let header = parse_frame_header(&header)?;
    // Read the payload in capped chunks rather than allocating the full
    // header-claimed length up front: a hostile or corrupted header can
    // claim up to MAX_FRAME_BYTES, and the bytes must actually arrive
    // before we commit that much memory. Chunks land at their final offset
    // in the payload buffer — no reassembly copy.
    let len = header.len as usize;
    let mut payload = Vec::with_capacity(len.min(PAYLOAD_READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(PAYLOAD_READ_CHUNK);
        let start = payload.len();
        payload.resize(start + take, 0);
        r.read_exact(&mut payload[start..])?;
    }
    let msg = check_frame_payload(&header, &payload)?;
    Ok((header.call_id, msg))
}

/// Read one framed message, discarding the call id (blocking, sequential
/// peers).
pub fn read_frame<R: Read>(r: &mut R) -> ProtocolResult<Message> {
    read_frame_mux(r).map(|(_, msg)| msg)
}

/// Write `header` then `payload` with vectored I/O, tracking partial writes
/// manually (short vectored writes are legal for any `Write` impl).
fn write_all_vectored<W: Write>(w: &mut W, header: &[u8], payload: &[u8]) -> std::io::Result<()> {
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < header.len() {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            w.write_vectored(&bufs)?
        } else {
            w.write(&payload[written - header.len()..])?
        };
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        written += n;
    }
    Ok(())
}

/// Granularity of payload reads: allocation grows only as bytes arrive.
const PAYLOAD_READ_CHUNK: usize = 64 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32c;
    use crate::message::Arg;
    use crate::value::Value;

    #[test]
    fn frame_roundtrip() {
        let msg = Message::Invoke {
            routine: "ep".into(),
            args: Arg::inline(vec![Value::Int(24)]),
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn mux_roundtrip_preserves_call_id() {
        let msg = Message::QueryLoad;
        for id in [0u64, 1, 42, u64::MAX] {
            let mut buf = Vec::new();
            write_frame_mux(&mut buf, id, &msg).unwrap();
            let (got_id, back) = read_frame_mux(&mut buf.as_slice()).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn sequential_form_is_call_id_zero() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        let (id, _) = read_frame_mux(&mut buf.as_slice()).unwrap();
        assert_eq!(id, 0);
    }

    #[test]
    fn encode_frame_matches_streamed_writer() {
        let msg = Message::Invoke {
            routine: "ep".into(),
            args: Arg::inline(vec![Value::Int(14)]),
            trace: None,
        };
        let mut streamed = Vec::new();
        write_frame_mux(&mut streamed, 7, &msg).unwrap();
        assert_eq!(encode_frame(7, &msg).unwrap(), streamed);
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let msgs = vec![
            Message::QueryInterface {
                routine: "linpack".into(),
            },
            Message::QueryLoad,
            Message::Error {
                reason: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut reader = buf.as_slice();
        for m in &msgs {
            assert_eq!(&read_frame(&mut reader).unwrap(), m);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[0] = 0xff;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[7] = 99;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::UnsupportedVersion {
                got: 99,
                want: PROTOCOL_VERSION
            })
        ));
    }

    #[test]
    fn v2_frame_rejected_as_unsupported_version() {
        // A v2 peer sends `magic | 2 | len | crc | payload` with no call-id
        // field. The version check fires before anything after it is
        // interpreted, so the short header is never misparsed.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[4..8].copy_from_slice(&2u32.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::UnsupportedVersion { got: 2, want: 3 })
        ));
    }

    #[test]
    fn v1_frame_rejected_as_unsupported_version() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[4..8].copy_from_slice(&1u32.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::UnsupportedVersion { got: 1, want: 3 })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let msg = Message::Invoke {
            routine: "linpack".into(),
            args: Arg::inline(vec![Value::DoubleArray(vec![1.5; 64])]),
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        // Flip one bit deep inside the payload.
        let target = FRAME_HEADER_BYTES + 40;
        buf[target] ^= 0x10;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Checksum { .. })
        ));
    }

    #[test]
    fn corrupted_call_id_fails_checksum() {
        // A bit flip inside the call id would silently route a valid reply
        // to the wrong caller if the CRC did not cover it.
        let mut buf = Vec::new();
        write_frame_mux(&mut buf, 0x0102_0304_0506_0708, &Message::QueryLoad).unwrap();
        for byte in 12..20 {
            let mut flipped = buf.clone();
            flipped[byte] ^= 0x40;
            assert!(
                matches!(
                    read_frame_mux(&mut flipped.as_slice()),
                    Err(ProtocolError::Checksum { .. })
                ),
                "flip in call-id byte {byte} must fail the checksum"
            );
        }
    }

    #[test]
    fn corrupted_checksum_word_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[21] ^= 0x01;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Checksum { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn lying_length_header_fails_on_missing_bytes() {
        // Header claims a near-maximal payload but the stream carries only a
        // few bytes: the read must fail with an I/O error after at most one
        // chunk of allocation, never commit the claimed 200+ MB.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[8..12].copy_from_slice(&(MAX_FRAME_BYTES - 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn chunked_payload_read_reassembles_large_frames() {
        // A payload larger than one read chunk must still round-trip.
        let big = Message::Invoke {
            routine: "echo".into(),
            args: Arg::inline(vec![Value::DoubleArray(vec![
                1.25;
                3 * PAYLOAD_READ_CHUNK / 8
            ])]),
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &big).unwrap();
        assert!(buf.len() > 2 * PAYLOAD_READ_CHUNK);
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), big);
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Message::QueryInterface {
                routine: "x".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn header_is_twenty_four_bytes_big_endian() {
        let mut buf = Vec::new();
        write_frame_mux(&mut buf, 0x0A0B_0C0D_0E0F_1011, &Message::QueryLoad).unwrap();
        assert_eq!(&buf[0..4], b"NINF");
        assert_eq!(&buf[4..8], &[0, 0, 0, 3]);
        let len = u32::from_be_bytes(buf[8..12].try_into().unwrap()) as usize;
        assert_eq!(buf.len(), FRAME_HEADER_BYTES + len);
        assert_eq!(
            &buf[12..20],
            &[0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F, 0x10, 0x11]
        );
        let crc = u32::from_be_bytes(buf[20..24].try_into().unwrap());
        let mut h = Crc32c::new();
        h.update(&buf[12..20]).update(&buf[FRAME_HEADER_BYTES..]);
        assert_eq!(crc, h.finish());
        // The call id is outside the payload: the XDR bytes themselves are
        // identical to what a v1/v2 peer would have produced.
        assert_eq!(crc32c(&buf[FRAME_HEADER_BYTES..]), {
            let mut v2 = Vec::new();
            write_frame_mux(&mut v2, 0, &Message::QueryLoad).unwrap();
            crc32c(&v2[FRAME_HEADER_BYTES..])
        });
    }

    #[test]
    fn incremental_parse_matches_blocking_reader() {
        let msg = Message::Invoke {
            routine: "ep".into(),
            args: Arg::inline(vec![Value::Int(20)]),
            trace: None,
        };
        let buf = encode_frame(99, &msg).unwrap();
        let header: [u8; FRAME_HEADER_BYTES] = buf[..FRAME_HEADER_BYTES].try_into().unwrap();
        let parsed = parse_frame_header(&header).unwrap();
        assert_eq!(parsed.call_id, 99);
        assert_eq!(parsed.len as usize, buf.len() - FRAME_HEADER_BYTES);
        let decoded = check_frame_payload(&parsed, &buf[FRAME_HEADER_BYTES..]).unwrap();
        assert_eq!(decoded, msg);
    }

    /// A writer that accepts at most one byte per call, including vectored
    /// calls — the worst legal case for partial-write bookkeeping.
    struct TrickleWriter(Vec<u8>);

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            for b in bufs {
                if !b.is_empty() {
                    return self.write(&b[..1]);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_vectored_writes_still_frame_correctly() {
        let msg = Message::Invoke {
            routine: "trickle".into(),
            args: Arg::inline(vec![Value::DoubleArray(vec![2.5; 17])]),
            trace: None,
        };
        let mut trickle = TrickleWriter(Vec::new());
        write_frame(&mut trickle, &msg).unwrap();
        let mut direct = Vec::new();
        write_frame(&mut direct, &msg).unwrap();
        assert_eq!(trickle.0, direct);
        assert_eq!(read_frame(&mut trickle.0.as_slice()).unwrap(), msg);
    }
}
