//! Binary framing v2: every message travels as
//! `magic (4) | version (4) | payload length (4) | crc32c (4) | payload (XDR)`.
//!
//! The CRC-32C of the payload is verified *before* any decode runs, so bytes
//! corrupted in flight surface as a typed [`ProtocolError::Checksum`] — they
//! can never reassemble into a plausibly-decodable message. v1 frames (no
//! checksum word) are rejected with [`ProtocolError::UnsupportedVersion`];
//! the payload encoding itself is unchanged from v1, only the header grew.
//!
//! On the write side the header and the borrowed payload go out in one
//! vectored syscall — the multi-megabyte matrix payload is never copied into
//! a header-prefixed staging buffer.

use std::io::{IoSlice, Read, Write};

use crate::crc::crc32c;
use crate::error::{ProtocolError, ProtocolResult};
use crate::message::Message;

/// Frame magic: ASCII "NINF".
pub const FRAME_MAGIC: u32 = 0x4E49_4E46;

/// Protocol version this implementation speaks. v2 added the payload
/// CRC-32C word to the header.
pub const PROTOCOL_VERSION: u32 = 2;

/// Bytes in a v2 frame header.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Upper bound on a sane frame (a 4096×4096 double matrix plus headers).
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

/// Write one framed message.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> ProtocolResult<()> {
    let payload = msg.encode();
    let len = payload.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame(format!(
            "frame too large: {len} bytes"
        )));
    }
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_be_bytes());
    header[4..8].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    header[8..12].copy_from_slice(&len.to_be_bytes());
    header[12..16].copy_from_slice(&crc32c(&payload).to_be_bytes());
    write_all_vectored(w, &header, &payload)?;
    w.flush()?;
    Ok(())
}

/// Write `header` then `payload` with vectored I/O, tracking partial writes
/// manually (short vectored writes are legal for any `Write` impl).
fn write_all_vectored<W: Write>(w: &mut W, header: &[u8], payload: &[u8]) -> std::io::Result<()> {
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < header.len() {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            w.write_vectored(&bufs)?
        } else {
            w.write(&payload[written - header.len()..])?
        };
        if n == 0 {
            return Err(std::io::ErrorKind::WriteZero.into());
        }
        written += n;
    }
    Ok(())
}

/// Read one framed message (blocking).
pub fn read_frame<R: Read>(r: &mut R) -> ProtocolResult<Message> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    r.read_exact(&mut header)?;
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(ProtocolError::Frame(format!("bad magic {magic:#010x}")));
    }
    let version = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(ProtocolError::UnsupportedVersion {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let len = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame(format!(
            "oversized frame: {len} bytes"
        )));
    }
    let expected = u32::from_be_bytes(header[12..16].try_into().expect("4 bytes"));
    // Read the payload in capped chunks rather than allocating the full
    // header-claimed length up front: a hostile or corrupted header can
    // claim up to MAX_FRAME_BYTES, and the bytes must actually arrive
    // before we commit that much memory. Chunks land at their final offset
    // in the payload buffer — no reassembly copy.
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(PAYLOAD_READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(PAYLOAD_READ_CHUNK);
        let start = payload.len();
        payload.resize(start + take, 0);
        r.read_exact(&mut payload[start..])?;
    }
    let got = crc32c(&payload);
    if got != expected {
        return Err(ProtocolError::Checksum { expected, got });
    }
    Message::decode(&payload)
}

/// Granularity of payload reads: allocation grows only as bytes arrive.
const PAYLOAD_READ_CHUNK: usize = 64 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn frame_roundtrip() {
        let msg = Message::Invoke {
            routine: "ep".into(),
            args: vec![Value::Int(24)],
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let msgs = vec![
            Message::QueryInterface {
                routine: "linpack".into(),
            },
            Message::QueryLoad,
            Message::Error {
                reason: "nope".into(),
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut reader = buf.as_slice();
        for m in &msgs {
            assert_eq!(&read_frame(&mut reader).unwrap(), m);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[0] = 0xff;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[7] = 99;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::UnsupportedVersion {
                got: 99,
                want: PROTOCOL_VERSION
            })
        ));
    }

    #[test]
    fn v1_frame_rejected_as_unsupported_version() {
        // A v1 peer sends `magic | 1 | len | payload` with no checksum word.
        // The version check fires before anything after it is interpreted.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[4..8].copy_from_slice(&1u32.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::UnsupportedVersion { got: 1, want: 2 })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let msg = Message::Invoke {
            routine: "linpack".into(),
            args: vec![Value::DoubleArray(vec![1.5; 64])],
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        // Flip one bit deep inside the payload.
        let target = FRAME_HEADER_BYTES + 40;
        buf[target] ^= 0x10;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Checksum { .. })
        ));
    }

    #[test]
    fn corrupted_checksum_word_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[13] ^= 0x01;
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Checksum { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn lying_length_header_fails_on_missing_bytes() {
        // Header claims a near-maximal payload but the stream carries only a
        // few bytes: the read must fail with an I/O error after at most one
        // chunk of allocation, never commit the claimed 200+ MB.
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        buf[8..12].copy_from_slice(&(MAX_FRAME_BYTES - 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn chunked_payload_read_reassembles_large_frames() {
        // A payload larger than one read chunk must still round-trip.
        let big = Message::Invoke {
            routine: "echo".into(),
            args: vec![Value::DoubleArray(vec![1.25; 3 * PAYLOAD_READ_CHUNK / 8])],
            trace: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &big).unwrap();
        assert!(buf.len() > 2 * PAYLOAD_READ_CHUNK);
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), big);
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Message::QueryInterface {
                routine: "x".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ProtocolError::Io(_))
        ));
    }

    #[test]
    fn header_is_sixteen_bytes_big_endian() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::QueryLoad).unwrap();
        assert_eq!(&buf[0..4], b"NINF");
        assert_eq!(&buf[4..8], &[0, 0, 0, 2]);
        let len = u32::from_be_bytes(buf[8..12].try_into().unwrap()) as usize;
        assert_eq!(buf.len(), FRAME_HEADER_BYTES + len);
        let crc = u32::from_be_bytes(buf[12..16].try_into().unwrap());
        assert_eq!(crc, crate::crc::crc32c(&buf[FRAME_HEADER_BYTES..]));
    }

    /// A writer that accepts at most one byte per call, including vectored
    /// calls — the worst legal case for partial-write bookkeeping.
    struct TrickleWriter(Vec<u8>);

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            for b in bufs {
                if !b.is_empty() {
                    return self.write(&b[..1]);
                }
            }
            Ok(0)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_vectored_writes_still_frame_correctly() {
        let msg = Message::Invoke {
            routine: "trickle".into(),
            args: vec![Value::DoubleArray(vec![2.5; 17])],
            trace: None,
        };
        let mut trickle = TrickleWriter(Vec::new());
        write_frame(&mut trickle, &msg).unwrap();
        let mut direct = Vec::new();
        write_frame(&mut direct, &msg).unwrap();
        assert_eq!(trickle.0, direct);
        assert_eq!(read_frame(&mut trickle.0.as_slice()).unwrap(), msg);
    }
}
