//! Deterministic fault injection for transports.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and, on each outgoing
//! message, rolls a seeded RNG to decide whether to forward it intact,
//! drop it, delay it, truncate its frame, or garble its frame. Dropping
//! and delaying model lost/stalled packets (the peer sees silence, so the
//! reader's deadline governs recovery); truncation and garbling model
//! on-the-wire corruption, which the receiver's framing layer must reject
//! with a typed error rather than decode garbage.
//!
//! **Determinism contract**: the fault taken by send operation `k` is a
//! pure function of `(plan.seed, k)` — each operation derives its own
//! SplitMix64 sub-stream, so outcome-dependent parameter draws (the
//! truncation cut point, the garbled bit) can never shift later
//! decisions. Two transports built from the same plan produce identical
//! fault schedules however their sends interleave with anything else, and
//! [`fault_schedule`] precomputes the whole schedule without a transport
//! at all — the hook a chaos harness uses to fingerprint a run's faults
//! before issuing a single call.
//!
//! The same four failure modes exist in the simulator: a dropped or
//! stalled message corresponds to a downed link
//! ([`FluidNet::fail_link`](../../ninf_netsim/fluid/struct.FluidNet.html)),
//! a delay to a fail/restore window, and corruption to an aborted flow
//! plus a client-side error. `docs/MODEL.md` §"Failure model" records the
//! mapping.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::ProtocolResult;
use crate::frame::write_frame;
use crate::message::Message;
use crate::transport::Transport;

/// Injection probabilities and parameters. Probabilities are evaluated in
/// the order drop → delay → truncate → garble against a single uniform
/// draw per message, so they are mutually exclusive and their sum must be
/// ≤ 1; the remainder is forwarded intact.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability a message is silently discarded.
    pub drop_prob: f64,
    /// Probability a message is held for [`FaultPlan::delay`] first.
    pub delay_prob: f64,
    /// Hold time for delayed messages.
    pub delay: Duration,
    /// Probability a frame is cut to a nonempty strict prefix.
    pub truncate_prob: f64,
    /// Probability one bit of a frame is flipped in flight.
    pub garble_prob: f64,
    /// RNG seed; identical seeds replay identical fault sequences.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            truncate_prob: 0.0,
            garble_prob: 0.0,
            seed: 1,
        }
    }
}

/// Counts of injected faults, for tests to assert injection happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages discarded.
    pub dropped: u64,
    /// Messages held before forwarding.
    pub delayed: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Frames with a flipped bit.
    pub garbled: u64,
    /// Messages forwarded intact (delayed ones count here too).
    pub forwarded: u64,
}

/// What [`FaultyTransport`] did (or [`planned_fault`] will do) to one send
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Forwarded intact.
    Forward,
    /// Silently discarded.
    Drop,
    /// Held for the plan's delay, then forwarded.
    Delay,
    /// Frame cut to a nonempty strict prefix.
    Truncate,
    /// One bit of the frame flipped.
    Garble,
}

impl FaultKind {
    /// Short stable label, used in schedules and transcripts.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Forward => "forward",
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::Garble => "garble",
        }
    }

    /// Whether this fault puts corrupted bytes on the wire. A truncated
    /// frame leaves the receiver mid-read, so *later* frames' bytes
    /// complete the pending read; under v1's checksum-less framing such a
    /// composite could even decode as a valid message, misattributing
    /// work. The v2 payload CRC closed that hole — every corruption now
    /// surfaces as a typed error and the receiver tears the connection
    /// down — so this predicate no longer carves calls out of the trace
    /// invariants; it drives the *stronger* corruption-rejected check
    /// instead: once a corrupting fault fires on a stream, no later call
    /// over it may complete successfully. Drops and delays never corrupt
    /// framing: the peer sees either nothing or an intact frame.
    pub fn corrupts_stream(&self) -> bool {
        matches!(self, FaultKind::Truncate | FaultKind::Garble)
    }
}

/// The same SplitMix64 the simulator uses for reproducible streams
/// (`ninf-netsim` sits above this crate, so the 10-line generator is
/// duplicated rather than inverting the dependency).
#[derive(Debug, Clone, Copy)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Dedicated sub-stream for operation `op` under `seed`: decision and
/// every fault parameter of one operation draw from here, and nowhere
/// else.
fn op_stream(seed: u64, op: u64) -> SplitMix64 {
    SplitMix64(seed ^ op.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Map a uniform draw to a fault decision under `plan`'s probability
/// bands.
fn classify_draw(plan: &FaultPlan, u: f64) -> FaultKind {
    if u < plan.drop_prob {
        FaultKind::Drop
    } else if u < plan.drop_prob + plan.delay_prob {
        FaultKind::Delay
    } else if u < plan.drop_prob + plan.delay_prob + plan.truncate_prob {
        FaultKind::Truncate
    } else if u < plan.drop_prob + plan.delay_prob + plan.truncate_prob + plan.garble_prob {
        FaultKind::Garble
    } else {
        FaultKind::Forward
    }
}

/// The fault that send operation `op` (0-based) takes under `plan` — a
/// pure function, usable without any transport. A [`FaultyTransport`]
/// built from the same plan takes exactly this fault on its `op`-th send.
pub fn planned_fault(plan: &FaultPlan, op: u64) -> FaultKind {
    classify_draw(plan, op_stream(plan.seed, op).next_f64())
}

/// The first `ops` fault decisions under `plan`, precomputed. Two calls
/// with the same plan return identical schedules; this is the
/// fingerprintable "what will the chaos do" artifact.
pub fn fault_schedule(plan: &FaultPlan, ops: u64) -> Vec<FaultKind> {
    (0..ops).map(|op| planned_fault(plan, op)).collect()
}

/// Cap on the per-transport fault history kept for assertions.
const HISTORY_CAP: usize = 1 << 16;

/// Cloneable handle onto a [`FaultyTransport`]'s observed fault history.
/// Lets a harness watch which faults actually fired even after the
/// transport itself has been boxed into a client — e.g. to exclude calls
/// whose bytes were corrupted in flight from trace-attribution claims.
#[derive(Clone, Debug, Default)]
pub struct FaultHistory(Arc<Mutex<Vec<FaultKind>>>);

impl FaultHistory {
    /// The fault each send operation has taken so far, in order (capped
    /// at 2^16 entries).
    pub fn snapshot(&self) -> Vec<FaultKind> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of send operations observed so far.
    pub fn len(&self) -> usize {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no send has happened yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, kind: FaultKind) {
        let mut v = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if v.len() < HISTORY_CAP {
            v.push(kind);
        }
    }
}

/// A transport wrapper that injects faults on the send path per a
/// [`FaultPlan`]. Receives pass through untouched.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    /// Index of the next send operation (the RNG position).
    op: u64,
    stats: FaultStats,
    history: FaultHistory,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let total = plan.drop_prob + plan.delay_prob + plan.truncate_prob + plan.garble_prob;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&total),
            "fault probabilities must sum to at most 1 (got {total})"
        );
        Self {
            inner,
            plan,
            op: 0,
            stats: FaultStats::default(),
            history: FaultHistory::default(),
        }
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The fault each send operation took, in order (capped at 2^16
    /// entries) — must equal the prefix of [`fault_schedule`] for this
    /// plan.
    pub fn history(&self) -> Vec<FaultKind> {
        self.history.snapshot()
    }

    /// A cloneable handle onto this transport's live fault history,
    /// usable after the transport has been boxed away.
    pub fn history_handle(&self) -> FaultHistory {
        self.history.clone()
    }

    /// Unwrap the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        let mut rng = op_stream(self.plan.seed, self.op);
        self.op += 1;
        let kind = classify_draw(&self.plan, rng.next_f64());
        self.history.push(kind);
        match kind {
            FaultKind::Drop => {
                // Lost on the wire: the peer sees nothing. Pretend success so
                // the caller proceeds to its read — where the deadline decides.
                self.stats.dropped += 1;
                Ok(())
            }
            FaultKind::Delay => {
                self.stats.delayed += 1;
                std::thread::sleep(self.plan.delay);
                self.stats.forwarded += 1;
                self.inner.send(msg)
            }
            FaultKind::Truncate => {
                // Connection dies mid-frame: ship a *nonempty* strict
                // prefix. An empty prefix would be indistinguishable from
                // a drop and leave the stream clean at a frame boundary —
                // truncation must actually poison the stream.
                self.stats.truncated += 1;
                let mut frame = Vec::new();
                write_frame(&mut frame, msg)?;
                let keep = 1 + rng.below(frame.len() as u64 - 1) as usize;
                self.inner.send_raw(&frame[..keep])
            }
            FaultKind::Garble => {
                // Corruption: flip one bit anywhere in the frame. Wherever
                // it lands — magic, version, length, checksum word, or deep
                // in the payload — the receiver's framing layer must reject
                // the frame with a typed error; the v2 payload CRC
                // guarantees this even for payload bits.
                self.stats.garbled += 1;
                let mut frame = Vec::new();
                write_frame(&mut frame, msg)?;
                let byte = rng.below(frame.len() as u64) as usize;
                let bit = rng.below(8) as u8;
                frame[byte] ^= 1 << bit;
                self.inner.send_raw(&frame)
            }
            FaultKind::Forward => {
                self.stats.forwarded += 1;
                self.inner.send(msg)
            }
        }
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        self.inner.recv()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> ProtocolResult<bool> {
        self.inner.set_deadline(deadline)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> ProtocolResult<()> {
        self.inner.send_raw(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProtocolError;
    use crate::message::Arg;
    use crate::transport::ChannelTransport;

    fn plan() -> FaultPlan {
        FaultPlan::default()
    }

    /// Discards everything. Schedule-only tests (which inspect `history()`
    /// / `stats()` and never read the peer side) use this instead of
    /// [`ChannelTransport`], whose bounded buffer would block an undrained
    /// bulk send.
    struct Sink;

    impl crate::Transport for Sink {
        fn send(&mut self, _msg: &Message) -> crate::ProtocolResult<()> {
            Ok(())
        }
        fn recv(&mut self) -> crate::ProtocolResult<Message> {
            Err(ProtocolError::Disconnected)
        }
        fn send_raw(&mut self, _bytes: &[u8]) -> crate::ProtocolResult<()> {
            Ok(())
        }
    }

    #[test]
    fn clean_plan_is_transparent() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(a, plan());
        let msg = Message::QueryLoad;
        faulty.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
        assert_eq!(faulty.stats().forwarded, 1);
        assert_eq!(faulty.stats().dropped, 0);
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultPlan {
                drop_prob: 1.0,
                ..plan()
            },
        );
        for _ in 0..5 {
            faulty.send(&Message::QueryLoad).unwrap();
        }
        assert_eq!(faulty.stats().dropped, 5);
        b.set_deadline(Some(Duration::from_millis(20))).unwrap();
        assert!(b.recv().unwrap_err().is_timeout());
    }

    #[test]
    fn garbled_frame_never_decodes() {
        // A single flipped bit anywhere in the frame — magic, version,
        // length, checksum word, or payload — must surface as a typed
        // rejection, never a decoded message. (A length bit flipped upward
        // leaves the receiver waiting for bytes that never come, which the
        // deadline converts to a typed timeout.)
        for seed in 0..64 {
            let (a, mut b) = ChannelTransport::pair();
            let mut faulty = FaultyTransport::new(
                a,
                FaultPlan {
                    garble_prob: 1.0,
                    seed,
                    ..plan()
                },
            );
            faulty
                .send(&Message::Invoke {
                    routine: "ep".into(),
                    args: Arg::inline(vec![crate::Value::DoubleArray(vec![1.5; 8])]),
                    trace: None,
                })
                .unwrap();
            assert_eq!(faulty.stats().garbled, 1);
            b.set_deadline(Some(Duration::from_millis(50))).unwrap();
            match b.recv() {
                Ok(m) => panic!("garbled frame decoded as {} (seed {seed})", m.kind()),
                Err(
                    ProtocolError::Frame(_)
                    | ProtocolError::Checksum { .. }
                    | ProtocolError::UnsupportedVersion { .. }
                    | ProtocolError::Io(_)
                    | ProtocolError::Timeout { .. },
                ) => {}
                Err(other) => panic!("untyped rejection {other} (seed {seed})"),
            }
        }
    }

    #[test]
    fn truncated_frame_fails_decode() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultPlan {
                truncate_prob: 1.0,
                seed: 7,
                ..plan()
            },
        );
        faulty
            .send(&Message::Invoke {
                routine: "ep".into(),
                args: Arg::inline(vec![crate::Value::Int(4)]),
                trace: None,
            })
            .unwrap();
        assert_eq!(faulty.stats().truncated, 1);
        // A strict prefix of a frame can never decode to a message.
        assert!(b.recv().is_err());
    }

    #[test]
    fn delay_holds_but_delivers() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultPlan {
                delay_prob: 1.0,
                delay: Duration::from_millis(30),
                ..plan()
            },
        );
        let start = std::time::Instant::now();
        faulty.send(&Message::QueryLoad).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(b.recv().unwrap(), Message::QueryLoad);
        assert_eq!(faulty.stats().delayed, 1);
    }

    #[test]
    fn same_seed_replays_same_fault_sequence() {
        let run = |seed: u64| -> FaultStats {
            let mut faulty = FaultyTransport::new(
                Sink,
                FaultPlan {
                    drop_prob: 0.3,
                    garble_prob: 0.3,
                    seed,
                    ..plan()
                },
            );
            for _ in 0..32 {
                let _ = faulty.send(&Message::QueryLoad);
            }
            faulty.stats()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    /// Regression (draw-order pinning): with the old single-stream RNG the
    /// truncation cut point and garble position consumed extra draws, so a
    /// plan with truncation took *different* drop/forward decisions later in
    /// the run than a drop-only plan with the same seed. Per-operation
    /// sub-streams make decision `k` independent of every other operation's
    /// parameter draws: plans that agree on the probability bands for a
    /// region of `u` agree on which operations land there.
    #[test]
    fn decision_sequence_is_independent_of_parameter_draws() {
        let mixed = FaultPlan {
            drop_prob: 0.2,
            truncate_prob: 0.2,
            garble_prob: 0.2,
            seed: 9,
            ..plan()
        };
        let drop_only = FaultPlan {
            drop_prob: 0.2,
            seed: 9,
            ..plan()
        };
        let mixed_sched = fault_schedule(&mixed, 256);
        let drop_sched = fault_schedule(&drop_only, 256);
        // Same seed, same leading band: operation k drops under `mixed`
        // exactly when it drops under `drop_only`, no matter how many
        // truncations (with their extra parameter draws) happened before k.
        for (k, (m, d)) in mixed_sched.iter().zip(&drop_sched).enumerate() {
            assert_eq!(
                *m == FaultKind::Drop,
                *d == FaultKind::Drop,
                "operation {k} disagrees on the drop band"
            );
        }
        assert!(mixed_sched.contains(&FaultKind::Truncate));
    }

    /// Regression (satellite): two transports built from the same seed
    /// produce identical fault schedules regardless of thread interleaving,
    /// and both match the precomputed pure schedule.
    #[test]
    fn same_seed_transports_agree_across_threads() {
        let chaos = FaultPlan {
            drop_prob: 0.25,
            truncate_prob: 0.25,
            garble_prob: 0.25,
            seed: 1997,
            ..plan()
        };
        let drive = move || {
            let mut faulty = FaultyTransport::new(Sink, chaos);
            for _ in 0..128 {
                let _ = faulty.send(&Message::QueryLoad);
                std::thread::yield_now();
            }
            faulty.history().to_vec()
        };
        let (h1, h2) = std::thread::scope(|s| {
            let t1 = s.spawn(drive);
            let t2 = s.spawn(drive);
            (t1.join().unwrap(), t2.join().unwrap())
        });
        assert_eq!(h1, h2);
        assert_eq!(h1, fault_schedule(&chaos, 128));
    }

    /// The transport's observed history is exactly the planned schedule.
    #[test]
    fn history_matches_planned_schedule() {
        let chaos = FaultPlan {
            drop_prob: 0.3,
            delay_prob: 0.1,
            delay: Duration::from_millis(1),
            truncate_prob: 0.2,
            garble_prob: 0.2,
            seed: 31,
        };
        let mut faulty = FaultyTransport::new(Sink, chaos);
        for _ in 0..64 {
            let _ = faulty.send(&Message::QueryLoad);
        }
        assert_eq!(faulty.history(), fault_schedule(&chaos, 64).as_slice());
        // And the stats agree with the schedule's composition.
        let sched = fault_schedule(&chaos, 64);
        let count = |k: FaultKind| sched.iter().filter(|&&s| s == k).count() as u64;
        let stats = faulty.stats();
        assert_eq!(stats.dropped, count(FaultKind::Drop));
        assert_eq!(stats.delayed, count(FaultKind::Delay));
        assert_eq!(stats.truncated, count(FaultKind::Truncate));
        assert_eq!(stats.garbled, count(FaultKind::Garble));
        assert_eq!(
            stats.forwarded,
            count(FaultKind::Forward) + count(FaultKind::Delay)
        );
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_plan_rejected() {
        let (a, _b) = ChannelTransport::pair();
        let _ = FaultyTransport::new(
            a,
            FaultPlan {
                drop_prob: 0.7,
                garble_prob: 0.6,
                ..plan()
            },
        );
    }
}
