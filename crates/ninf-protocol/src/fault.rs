//! Deterministic fault injection for transports.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and, on each outgoing
//! message, rolls a seeded RNG to decide whether to forward it intact,
//! drop it, delay it, truncate its frame, or garble its frame. Dropping
//! and delaying model lost/stalled packets (the peer sees silence, so the
//! reader's deadline governs recovery); truncation and garbling model
//! on-the-wire corruption, which the receiver's framing layer must reject
//! with a typed error rather than decode garbage.
//!
//! The same four failure modes exist in the simulator: a dropped or
//! stalled message corresponds to a downed link
//! ([`FluidNet::fail_link`](../../ninf_netsim/fluid/struct.FluidNet.html)),
//! a delay to a fail/restore window, and corruption to an aborted flow
//! plus a client-side error. `docs/MODEL.md` §"Failure model" records the
//! mapping.

use std::time::Duration;

use crate::error::ProtocolResult;
use crate::frame::write_frame;
use crate::message::Message;
use crate::transport::Transport;

/// Injection probabilities and parameters. Probabilities are evaluated in
/// the order drop → delay → truncate → garble against a single uniform
/// draw per message, so they are mutually exclusive and their sum must be
/// ≤ 1; the remainder is forwarded intact.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability a message is silently discarded.
    pub drop_prob: f64,
    /// Probability a message is held for [`FaultPlan::delay`] first.
    pub delay_prob: f64,
    /// Hold time for delayed messages.
    pub delay: Duration,
    /// Probability a frame is cut short mid-payload.
    pub truncate_prob: f64,
    /// Probability a frame's magic is corrupted.
    pub garble_prob: f64,
    /// RNG seed; identical seeds replay identical fault sequences.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            truncate_prob: 0.0,
            garble_prob: 0.0,
            seed: 1,
        }
    }
}

/// Counts of injected faults, for tests to assert injection happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages discarded.
    pub dropped: u64,
    /// Messages held before forwarding.
    pub delayed: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Frames with corrupted magic.
    pub garbled: u64,
    /// Messages forwarded intact (delayed ones count here too).
    pub forwarded: u64,
}

/// The same SplitMix64 the simulator uses for reproducible streams
/// (`ninf-netsim` sits above this crate, so the 10-line generator is
/// duplicated rather than inverting the dependency).
#[derive(Debug, Clone, Copy)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A transport wrapper that injects faults on the send path per a
/// [`FaultPlan`]. Receives pass through untouched.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    rng: SplitMix64,
    stats: FaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let total = plan.drop_prob + plan.delay_prob + plan.truncate_prob + plan.garble_prob;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&total),
            "fault probabilities must sum to at most 1 (got {total})"
        );
        Self {
            inner,
            plan,
            rng: SplitMix64(plan.seed),
            stats: FaultStats::default(),
        }
    }

    /// Injection counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Unwrap the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, msg: &Message) -> ProtocolResult<()> {
        let u = self.rng.next_f64();
        let p = self.plan;
        if u < p.drop_prob {
            // Lost on the wire: the peer sees nothing. Pretend success so
            // the caller proceeds to its read — where the deadline decides.
            self.stats.dropped += 1;
            return Ok(());
        }
        if u < p.drop_prob + p.delay_prob {
            self.stats.delayed += 1;
            std::thread::sleep(p.delay);
            self.stats.forwarded += 1;
            return self.inner.send(msg);
        }
        if u < p.drop_prob + p.delay_prob + p.truncate_prob {
            // Connection dies mid-frame: ship only a strict prefix.
            self.stats.truncated += 1;
            let mut frame = Vec::new();
            write_frame(&mut frame, msg)?;
            let keep = self.rng.below(frame.len() as u64) as usize;
            return self.inner.send_raw(&frame[..keep]);
        }
        if u < p.drop_prob + p.delay_prob + p.truncate_prob + p.garble_prob {
            // Corruption: flip a bit in the magic so the receiver's framing
            // layer deterministically rejects the frame.
            self.stats.garbled += 1;
            let mut frame = Vec::new();
            write_frame(&mut frame, msg)?;
            let byte = self.rng.below(4) as usize;
            let bit = self.rng.below(8) as u8;
            frame[byte] ^= 1 << bit;
            return self.inner.send_raw(&frame);
        }
        self.stats.forwarded += 1;
        self.inner.send(msg)
    }

    fn recv(&mut self) -> ProtocolResult<Message> {
        self.inner.recv()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> ProtocolResult<bool> {
        self.inner.set_deadline(deadline)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> ProtocolResult<()> {
        self.inner.send_raw(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProtocolError;
    use crate::transport::ChannelTransport;

    fn plan() -> FaultPlan {
        FaultPlan::default()
    }

    #[test]
    fn clean_plan_is_transparent() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(a, plan());
        let msg = Message::QueryLoad;
        faulty.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
        assert_eq!(faulty.stats().forwarded, 1);
        assert_eq!(faulty.stats().dropped, 0);
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultPlan {
                drop_prob: 1.0,
                ..plan()
            },
        );
        for _ in 0..5 {
            faulty.send(&Message::QueryLoad).unwrap();
        }
        assert_eq!(faulty.stats().dropped, 5);
        b.set_deadline(Some(Duration::from_millis(20))).unwrap();
        assert!(b.recv().unwrap_err().is_timeout());
    }

    #[test]
    fn garbled_frame_rejected_by_framing() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultPlan {
                garble_prob: 1.0,
                ..plan()
            },
        );
        faulty.send(&Message::QueryLoad).unwrap();
        assert_eq!(faulty.stats().garbled, 1);
        match b.recv().unwrap_err() {
            ProtocolError::Frame(m) => assert!(m.contains("bad magic"), "got: {m}"),
            other => panic!("expected frame error, got {other}"),
        }
    }

    #[test]
    fn truncated_frame_fails_decode() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultPlan {
                truncate_prob: 1.0,
                seed: 7,
                ..plan()
            },
        );
        faulty
            .send(&Message::Invoke {
                routine: "ep".into(),
                args: vec![crate::Value::Int(4)],
                trace: None,
            })
            .unwrap();
        assert_eq!(faulty.stats().truncated, 1);
        // A strict prefix of a frame can never decode to a message.
        assert!(b.recv().is_err());
    }

    #[test]
    fn delay_holds_but_delivers() {
        let (a, mut b) = ChannelTransport::pair();
        let mut faulty = FaultyTransport::new(
            a,
            FaultPlan {
                delay_prob: 1.0,
                delay: Duration::from_millis(30),
                ..plan()
            },
        );
        let start = std::time::Instant::now();
        faulty.send(&Message::QueryLoad).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(b.recv().unwrap(), Message::QueryLoad);
        assert_eq!(faulty.stats().delayed, 1);
    }

    #[test]
    fn same_seed_replays_same_fault_sequence() {
        let run = |seed: u64| -> FaultStats {
            let (a, _b) = ChannelTransport::pair();
            let mut faulty = FaultyTransport::new(
                a,
                FaultPlan {
                    drop_prob: 0.3,
                    garble_prob: 0.3,
                    seed,
                    ..plan()
                },
            );
            for _ in 0..32 {
                let _ = faulty.send(&Message::QueryLoad);
            }
            faulty.stats()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_plan_rejected() {
        let (a, _b) = ChannelTransport::pair();
        let _ = FaultyTransport::new(
            a,
            FaultPlan {
                drop_prob: 0.7,
                garble_prob: 0.6,
                ..plan()
            },
        );
    }
}
