//! CRC-32C (Castagnoli) over frame payloads.
//!
//! The v2 frame header carries a CRC of the payload so that corruption on
//! the wire is rejected *before* any XDR decode runs. Castagnoli is chosen
//! over CRC-32/ISO because x86_64 carries it in hardware (`crc32` via
//! SSE 4.2), which keeps the integrity check off the critical path for
//! multi-megabyte matrix frames. When the instruction is unavailable a
//! slice-by-8 table fallback runs; both paths produce identical digests.

/// Reflected CRC-32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Slice-by-8 software CRC: eight table lookups per 8-byte chunk instead of
/// one lookup per byte.
fn update_sw(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
fn update_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut crc64 = u64::from(crc);
    for c in &mut chunks {
        let word = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        crc64 = _mm_crc32_u64(crc64, word);
    }
    let mut crc = crc64 as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

/// CRC-32C digest of `data` (init `!0`, final complement — the RFC 3720
/// parameterization, so `crc32c(b"123456789") == 0xE306_9283`).
pub fn crc32c(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: the `crc32` instruction was detected at runtime.
            return !unsafe { update_hw(!0, data) };
        }
    }
    !update_sw(!0, data)
}

/// Streaming CRC-32C: digest non-contiguous byte ranges (the v3 frame
/// checksum covers the call-id header field *and* the payload, which are
/// separated by the checksum word itself) without concatenating them.
/// `Crc32c::new().update(a).update(b).finish() == crc32c(a ++ b)`.
#[derive(Clone, Copy)]
pub struct Crc32c(u32);

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Fresh digest state.
    pub fn new() -> Self {
        Crc32c(!0)
    }

    /// Fold `data` into the digest.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse4.2") {
                // SAFETY: the `crc32` instruction was detected at runtime.
                self.0 = unsafe { update_hw(self.0, data) };
                return self;
            }
        }
        self.0 = update_sw(self.0, data);
        self
    }

    /// Final (complemented) digest.
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // iSCSI test vector: 32 zero bytes.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn software_path_matches_public_digest() {
        // On SSE4.2 hosts `crc32c` takes the hardware path; recomputing via
        // the table path must agree bit-for-bit, including on lengths that
        // exercise the 8-byte remainder handling.
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..n).map(|i| (i * 131 + 7) as u8).collect();
            assert_eq!(!update_sw(!0, &data), crc32c(&data), "length {n}");
        }
    }

    #[test]
    fn streaming_digest_matches_one_shot_at_any_split() {
        let data: Vec<u8> = (0..300).map(|i| (i * 53 + 11) as u8).collect();
        let whole = crc32c(&data);
        for split in [0usize, 1, 7, 8, 12, 100, 299, 300] {
            let mut h = Crc32c::new();
            h.update(&data[..split]).update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_always_changes_digest() {
        let data: Vec<u8> = (0..256).map(|i| (i * 37) as u8).collect();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
