//! Protocol messages and their XDR codecs.
//!
//! The codecs are *generated*: every struct and enum that crosses the wire
//! declares its layout once through [`crate::codec::impl_wire!`], and the
//! `Message` enum's whole encode/decode surface comes from one tag table
//! fed to `impl_message_codec!` at the bottom of this file. The payload
//! byte layout is unchanged from protocol v1 — only the frame header grew
//! a checksum word in v2.

use ninf_idl::CompiledInterface;
use ninf_obs::{MetricFrame, MetricKind, MetricSample, Span, TraceContext};
use ninf_xdr::{XdrDecoder, XdrEncoder};

use crate::codec::{impl_message_codec, impl_wire, Wire};
use crate::digest::Digest;
use crate::error::{ProtocolError, ProtocolResult};
use crate::value::Value;

/// A server load report (consumed by the metaserver, which "keeps track of
/// server load/availability, network bandwidth, etc.", paper §1).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Number of processing elements.
    pub pes: u32,
    /// Jobs currently running.
    pub running: u32,
    /// Jobs queued but not yet started.
    pub queued: u32,
    /// One-minute load average.
    pub load_average: f64,
    /// CPU utilization percent over the report window.
    pub cpu_utilization: f64,
}

impl_wire!(struct LoadReport {
    pes,
    running,
    queued,
    load_average,
    cpu_utilization,
});

/// One completed call as reported by the server's statistics sink, carrying
/// the §4.1 timestamp vocabulary (`T_submit`, `T_enqueue`, `T_dequeue`,
/// `T_complete`) over the wire so a measurement harness can join the
/// server-side view with its own client-side records.
#[derive(Debug, Clone, PartialEq)]
pub struct CallStat {
    /// Routine name.
    pub routine: String,
    /// First scalar input (matrix order `n` / EP exponent `m`), when any.
    pub n: Option<i64>,
    /// Request payload bytes (arrays only).
    pub request_bytes: u64,
    /// Reply payload bytes.
    pub reply_bytes: u64,
    /// Seconds since server start at submission.
    pub t_submit: f64,
    /// Seconds since server start at acceptance.
    pub t_enqueue: f64,
    /// Seconds since server start at executable invocation.
    pub t_dequeue: f64,
    /// Seconds since server start at completion.
    pub t_complete: f64,
}

impl_wire!(struct CallStat {
    routine,
    n,
    request_bytes,
    reply_bytes,
    t_submit,
    t_enqueue,
    t_dequeue,
    t_complete,
});

impl CallStat {
    /// `T_response = T_enqueue − T_submit`.
    pub fn response(&self) -> f64 {
        self.t_enqueue - self.t_submit
    }

    /// `T_wait = T_dequeue − T_enqueue`.
    pub fn wait(&self) -> f64 {
        self.t_dequeue - self.t_enqueue
    }

    /// Pure service time (execution).
    pub fn service(&self) -> f64 {
        self.t_complete - self.t_dequeue
    }

    /// End-to-end server-side time.
    pub fn total(&self) -> f64 {
        self.t_complete - self.t_submit
    }
}

impl_wire!(struct TraceContext {
    trace_id,
    span_id,
    parent_span_id,
});

impl_wire!(struct Span {
    trace_id,
    span_id,
    parent_span_id,
    name,
    process,
    start_us,
    dur_us,
    detail,
});

impl_wire!(struct Digest { hi, lo });

impl_wire!(unit_enum MetricKind {
    Counter = 0,
    Gauge = 1,
    Histogram = 2,
});

impl_wire!(struct MetricSample {
    name,
    kind,
    value,
    count,
});

impl_wire!(struct MetricFrame {
    window,
    t,
    samples,
});

/// One argument position of an [`Message::Invoke`]/[`Message::SubmitJob`]:
/// either the marshalled value inline, or a content digest naming a value
/// the server's arg store is expected to hold.
///
/// On the wire an inline arg is byte-identical to a bare [`Value`] — the
/// `Data` case delegates to the `Value` codec, whose tags occupy 0–7 — so
/// an all-inline call encodes exactly as it did before refs existed
/// (flag-day compatibility: old captures decode, old golden bytes hold).
/// `Ref` takes the next tag up.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// The marshalled value, shipped inline.
    Data(Value),
    /// Content digest of a value the server should already hold; a miss
    /// comes back as [`Message::NeedArg`] without executing the call.
    Ref(Digest),
}

/// `Arg::Ref`'s wire tag: one past the last `Value` tag (`VTAG_DOUBLE_ARR`).
const VTAG_ARG_REF: u32 = 8;

impl Arg {
    /// Wrap owned values as all-inline args (the pre-cache wire form).
    pub fn inline(values: Vec<Value>) -> Vec<Arg> {
        values.into_iter().map(Arg::Data).collect()
    }

    /// The inline value, if this arg carries one.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Arg::Data(v) => Some(v),
            Arg::Ref(_) => None,
        }
    }

    /// Unwrap an all-inline arg list back to values; `None` if any position
    /// is a ref.
    pub fn into_values(args: Vec<Arg>) -> Option<Vec<Value>> {
        args.into_iter()
            .map(|a| match a {
                Arg::Data(v) => Some(v),
                Arg::Ref(_) => None,
            })
            .collect()
    }
}

impl Wire for Arg {
    fn put(&self, enc: &mut XdrEncoder) {
        match self {
            // A bare Value image: its own tag word (0–7) then the body.
            Arg::Data(v) => v.put(enc),
            Arg::Ref(d) => {
                enc.put_u32(VTAG_ARG_REF);
                d.put(enc);
            }
        }
    }
    fn get(dec: &mut XdrDecoder<'_>) -> ProtocolResult<Self> {
        let tag = dec.get_u32()?;
        if tag == VTAG_ARG_REF {
            return Ok(Arg::Ref(Digest::get(dec)?));
        }
        match Value::wire_get_variant(tag, dec)? {
            Some(v) => Ok(Arg::Data(v)),
            None => Err(ProtocolError::Frame(format!("unknown Arg tag {tag}"))),
        }
    }
}

impl Wire for CompiledInterface {
    fn put(&self, enc: &mut XdrEncoder) {
        self.encode_xdr(enc);
    }
    fn get(dec: &mut XdrDecoder<'_>) -> ProtocolResult<Self> {
        Ok(CompiledInterface::decode_xdr(dec)?)
    }
}

/// All Ninf RPC messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Stage 1 request: which routine does the client want?
    QueryInterface {
        /// Registered routine name (possibly a `ninf://host/name` URL path
        /// tail — resolution happens client-side).
        routine: String,
    },
    /// Stage 1 reply: the compiled IDL the client will interpret.
    InterfaceReply {
        /// Compiled interface bytecode.
        interface: CompiledInterface,
    },
    /// Stage 2 request: marshalled input arguments, in declaration order,
    /// only `mode_in`/`mode_inout` parameters.
    Invoke {
        /// Routine to run (repeated for sanity checking).
        routine: String,
        /// Input arguments. Scalars first bind dimension variables; array
        /// extents must match the IDL layout. Each position ships either
        /// inline ([`Arg::Data`]) or as a content digest ([`Arg::Ref`])
        /// the server resolves from its arg store.
        args: Vec<Arg>,
        /// Caller's trace position; the server parents its spans under it.
        trace: Option<TraceContext>,
    },
    /// Stage 2 reply: `mode_out`/`mode_inout` values in declaration order.
    ResultData {
        /// Output values.
        results: Vec<Value>,
    },
    /// Any failure: unknown routine, argument mismatch, numerical error.
    Error {
        /// Human-readable reason, carried back to the caller.
        reason: String,
    },
    /// Metaserver monitoring probe.
    QueryLoad,
    /// Reply to [`Message::QueryLoad`].
    LoadStatus(LoadReport),
    /// Two-phase call, phase 1 (§5.1): ship the arguments, get a ticket,
    /// and *disconnect* while the server computes.
    SubmitJob {
        /// Routine to run.
        routine: String,
        /// Input arguments, as in [`Message::Invoke`].
        args: Vec<Arg>,
        /// Caller's trace position; the server parents its spans under it.
        trace: Option<TraceContext>,
    },
    /// Reply to [`Message::SubmitJob`].
    JobTicket {
        /// Server-assigned job id, valid across connections.
        job: u64,
    },
    /// Ask whether a submitted job has finished.
    PollJob {
        /// The ticket.
        job: u64,
    },
    /// Reply to [`Message::PollJob`].
    JobStatus {
        /// The ticket.
        job: u64,
        /// Current phase.
        state: JobPhase,
    },
    /// Two-phase call, phase 2: collect the results (server forgets the job).
    FetchResult {
        /// The ticket.
        job: u64,
        /// Caller's trace position, so the fetch leg parents into the same
        /// trace tree as the submit that minted the ticket.
        trace: Option<TraceContext>,
    },
    /// Ask the server which routines it exports (the paper's "server
    /// registry tools" surface).
    ListRoutines,
    /// Reply to [`Message::ListRoutines`]: names and one-line docs.
    RoutineList {
        /// `(name, doc)` pairs in sorted order.
        routines: Vec<(String, String)>,
    },
    /// `Ninf_query` (§2.2): a textual query against a Ninf *database*
    /// server ("Ninf computational and database servers", §2).
    DbQuery {
        /// Query text, e.g. `GET hilbert8`, `LIST const/`, `INFO pi`.
        query: String,
    },
    /// Reply to [`Message::DbQuery`].
    DbReply {
        /// Human-readable description of the result (shape, units, source).
        description: String,
        /// The numerical payload.
        values: Vec<Value>,
    },
    /// Ask the server for its completed-call records (§4.1 timelines),
    /// starting at record index `since` — so a harness can poll
    /// incrementally without re-shipping history.
    QueryStats {
        /// Index of the first record wanted (0 = from the beginning).
        since: u64,
    },
    /// Reply to [`Message::QueryStats`].
    StatsReply {
        /// Server clock (seconds since server start) when the reply was
        /// built; lets the consumer align epochs.
        now: f64,
        /// Total records the server holds (records[0..total]).
        total: u64,
        /// The records from `since` onward.
        records: Vec<CallStat>,
    },
    /// Ask a process for the contents of its flight recorder.
    QueryTrace {
        /// Trace to fetch, or 0 for every retained span.
        trace_id: u64,
    },
    /// Reply to [`Message::QueryTrace`].
    TraceReply {
        /// Logical process label of the responder (`server`, `metaserver`).
        process: String,
        /// Spans evicted from the ring to stay within capacity.
        dropped: u64,
        /// Retained spans matching the query.
        spans: Vec<Span>,
    },
    /// Typed miss reply to an [`Message::Invoke`]/[`Message::SubmitJob`]
    /// whose [`Arg::Ref`]s name digests the server's arg store no longer
    /// holds. The call was **not** executed; the client re-sends with those
    /// positions inline (exactly-once is preserved because nothing ran).
    NeedArg {
        /// Every referenced digest the store is missing.
        digests: Vec<Digest>,
    },
    /// Ask a process for its metric window series (time-resolved telemetry),
    /// starting at global window index `since` — the windowed analogue of
    /// [`Message::QueryStats`], polled incrementally by a sweep controller.
    QueryMetrics {
        /// Index of the first window wanted (0 = everything retained).
        since: u64,
    },
    /// Reply to [`Message::QueryMetrics`].
    MetricsReply {
        /// Logical process label of the responder (`server`, `metaserver`).
        process: String,
        /// Window clock (seconds since windows were armed) when the reply
        /// was built; paired with the poller's send/receive timestamps this
        /// yields the clock-skew offset for timeline alignment.
        now: f64,
        /// Configured window interval in seconds; 0 means windows are
        /// disarmed and the reply is necessarily empty.
        interval: f64,
        /// Windows ever closed on the responder.
        total: u64,
        /// Windows evicted from the ring (frames cover
        /// `max(since, dropped) .. total`).
        dropped: u64,
        /// Retained frames from the cursor onward, oldest first.
        frames: Vec<MetricFrame>,
    },
    /// One chunk of a parallel-stream bulk upload (WAN path): a slice of
    /// a large value's tagged XDR image, addressed by the *whole value's*
    /// content digest so reassembly lands directly in the arg store and a
    /// later [`Message::Invoke`] references it as [`Arg::Ref`]. Chunks
    /// fan out over N mux streams; each carries its own CRC so a corrupt
    /// chunk is rejected individually instead of poisoning the upload.
    PutArgChunk {
        /// Digest of the complete value image (the arg-store key).
        digest: Digest,
        /// Total image length in bytes — every chunk repeats it so any
        /// one chunk pins the geometry the rest must agree with.
        total_bytes: u64,
        /// Total number of chunks in the upload.
        total: u32,
        /// This chunk's 0-based sequence number.
        seq: u32,
        /// CRC-32C of this chunk's `bytes`.
        crc: u32,
        /// The image slice: bytes `[seq·ceil(total_bytes/total), …)`.
        bytes: Vec<u8>,
    },
    /// Per-chunk ack for [`Message::PutArgChunk`]. The final chunk's ack
    /// is sent only after the full image reassembled, verified against
    /// `digest`, and landed in the arg store.
    ChunkOk {
        /// Upload being acked.
        digest: Digest,
        /// Chunk being acked.
        seq: u32,
    },
}

/// Lifecycle state of a two-phase job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Queued or executing.
    Pending,
    /// Finished; results await a [`Message::FetchResult`].
    Done,
    /// Failed; the error awaits a fetch.
    Failed,
    /// No such ticket (never issued, or already fetched).
    Unknown,
}

impl_wire!(unit_enum JobPhase {
    Pending = 0,
    Done = 1,
    Failed = 2,
    Unknown = 3,
});

const VTAG_INT: u32 = 0;
const VTAG_LONG: u32 = 1;
const VTAG_FLOAT: u32 = 2;
const VTAG_DOUBLE: u32 = 3;
const VTAG_INT_ARR: u32 = 4;
const VTAG_LONG_ARR: u32 = 5;
const VTAG_FLOAT_ARR: u32 = 6;
const VTAG_DOUBLE_ARR: u32 = 7;

impl_wire!(
    enum Value {
        Int = VTAG_INT,
        Long = VTAG_LONG,
        Float = VTAG_FLOAT,
        Double = VTAG_DOUBLE,
        IntArray = VTAG_INT_ARR,
        LongArray = VTAG_LONG_ARR,
        FloatArray = VTAG_FLOAT_ARR,
        DoubleArray = VTAG_DOUBLE_ARR,
    }
);

const TAG_QUERY_INTERFACE: u32 = 1;
const TAG_INTERFACE_REPLY: u32 = 2;
const TAG_INVOKE: u32 = 3;
const TAG_RESULT_DATA: u32 = 4;
const TAG_ERROR: u32 = 5;
const TAG_QUERY_LOAD: u32 = 6;
const TAG_LOAD_STATUS: u32 = 7;
const TAG_SUBMIT_JOB: u32 = 8;
const TAG_JOB_TICKET: u32 = 9;
const TAG_POLL_JOB: u32 = 10;
const TAG_JOB_STATUS: u32 = 11;
const TAG_FETCH_RESULT: u32 = 12;
const TAG_LIST_ROUTINES: u32 = 13;
const TAG_ROUTINE_LIST: u32 = 14;
const TAG_DB_QUERY: u32 = 15;
const TAG_DB_REPLY: u32 = 16;
const TAG_QUERY_STATS: u32 = 17;
const TAG_STATS_REPLY: u32 = 18;
const TAG_QUERY_TRACE: u32 = 19;
const TAG_TRACE_REPLY: u32 = 20;
const TAG_NEED_ARG: u32 = 21;
const TAG_QUERY_METRICS: u32 = 22;
const TAG_METRICS_REPLY: u32 = 23;
const TAG_PUT_ARG_CHUNK: u32 = 24;
const TAG_CHUNK_OK: u32 = 25;

impl_message_codec! {
    units {
        QueryLoad = TAG_QUERY_LOAD,
        ListRoutines = TAG_LIST_ROUTINES,
    }
    newtypes {
        LoadStatus = TAG_LOAD_STATUS,
    }
    structs {
        QueryInterface = TAG_QUERY_INTERFACE => { routine },
        InterfaceReply = TAG_INTERFACE_REPLY => { interface },
        Invoke = TAG_INVOKE => { routine, args, trace },
        ResultData = TAG_RESULT_DATA => { results },
        Error = TAG_ERROR => { reason },
        SubmitJob = TAG_SUBMIT_JOB => { routine, args, trace },
        JobTicket = TAG_JOB_TICKET => { job },
        PollJob = TAG_POLL_JOB => { job },
        JobStatus = TAG_JOB_STATUS => { job, state },
        FetchResult = TAG_FETCH_RESULT => { job, trace },
        RoutineList = TAG_ROUTINE_LIST => { routines },
        DbQuery = TAG_DB_QUERY => { query },
        DbReply = TAG_DB_REPLY => { description, values },
        QueryStats = TAG_QUERY_STATS => { since },
        StatsReply = TAG_STATS_REPLY => { now, total, records },
        QueryTrace = TAG_QUERY_TRACE => { trace_id },
        TraceReply = TAG_TRACE_REPLY => { process, dropped, spans },
        NeedArg = TAG_NEED_ARG => { digests },
        QueryMetrics = TAG_QUERY_METRICS => { since },
        MetricsReply = TAG_METRICS_REPLY => { process, now, interval, total, dropped, frames },
        PutArgChunk = TAG_PUT_ARG_CHUNK => { digest, total_bytes, total, seq, crc, bytes },
        ChunkOk = TAG_CHUNK_OK => { digest, seq },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProtocolError;

    fn roundtrip(m: Message) {
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_query_interface() {
        roundtrip(Message::QueryInterface {
            routine: "linpack".into(),
        });
    }

    #[test]
    fn roundtrip_interface_reply() {
        for iface in ninf_idl::stdlib_interfaces() {
            roundtrip(Message::InterfaceReply { interface: iface });
        }
    }

    #[test]
    fn roundtrip_invoke_with_mixed_args() {
        roundtrip(Message::Invoke {
            routine: "dmmul".into(),
            args: Arg::inline(vec![
                Value::Int(3),
                Value::DoubleArray(vec![1.0; 9]),
                Value::DoubleArray(vec![2.0; 9]),
            ]),
            trace: None,
        });
        roundtrip(Message::Invoke {
            routine: "dmmul".into(),
            args: vec![Arg::Data(Value::Int(3))],
            trace: Some(TraceContext {
                trace_id: 0xdead_beef_cafe_f00d,
                span_id: 17,
                parent_span_id: 0,
            }),
        });
    }

    #[test]
    fn roundtrip_invoke_with_arg_refs() {
        let d = crate::digest::digest_value(&Value::DoubleArray(vec![0.25; 256]));
        roundtrip(Message::Invoke {
            routine: "dmmul".into(),
            args: vec![
                Arg::Data(Value::Int(16)),
                Arg::Ref(d),
                Arg::Data(Value::DoubleArray(vec![2.0; 256])),
            ],
            trace: None,
        });
        roundtrip(Message::NeedArg { digests: vec![d] });
        roundtrip(Message::NeedArg { digests: vec![] });
    }

    #[test]
    fn arg_helpers_roundtrip_inline_lists() {
        let values = vec![Value::Int(1), Value::DoubleArray(vec![2.0; 4])];
        let args = Arg::inline(values.clone());
        assert_eq!(args[0].as_value(), Some(&values[0]));
        assert_eq!(Arg::into_values(args), Some(values));
        let refd = vec![Arg::Ref(Digest { hi: 1, lo: 2 })];
        assert_eq!(refd[0].as_value(), None);
        assert_eq!(Arg::into_values(refd), None);
    }

    #[test]
    fn unknown_arg_tag_rejected() {
        // A raw Invoke whose single arg carries tag 9 (past Ref's 8).
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(3); // Invoke
        enc.put_string("f");
        enc.put_u32(1); // one arg
        enc.put_u32(9); // bogus arg tag
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn roundtrip_results_and_error() {
        roundtrip(Message::ResultData {
            results: vec![
                Value::DoubleArray(vec![0.5; 4]),
                Value::IntArray(vec![1, 0]),
            ],
        });
        roundtrip(Message::Error {
            reason: "matrix is singular".into(),
        });
    }

    #[test]
    fn roundtrip_load_messages() {
        roundtrip(Message::QueryLoad);
        roundtrip(Message::LoadStatus(LoadReport {
            pes: 4,
            running: 4,
            queued: 12,
            load_average: 16.64,
            cpu_utilization: 100.0,
        }));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(999);
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = Message::QueryLoad.encode().to_vec();
        wire.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            Message::decode(&wire),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn trailing_garbage_after_nontrivial_message_rejected() {
        // Regression: a frame whose payload parses as a complete message but
        // is not fully consumed must be rejected — valid-prefix corruption
        // is the residual hole even a payload CRC cannot catch once the
        // prefix itself checksums clean (e.g. a resynchronized stream).
        let msgs = [
            Message::Invoke {
                routine: "linpack".into(),
                args: Arg::inline(vec![Value::Int(600), Value::DoubleArray(vec![0.5; 16])]),
                trace: Some(TraceContext {
                    trace_id: 9,
                    span_id: 3,
                    parent_span_id: 1,
                }),
            },
            Message::ResultData {
                results: vec![Value::IntArray(vec![1, 2, 3])],
            },
            Message::StatsReply {
                now: 1.0,
                total: 0,
                records: vec![],
            },
        ];
        for msg in msgs {
            let mut wire = msg.encode().to_vec();
            wire.extend_from_slice(&7u32.to_be_bytes());
            match Message::decode(&wire) {
                Err(ProtocolError::Frame(m)) => {
                    assert!(m.contains("trailing"), "unexpected message: {m}")
                }
                other => panic!("expected trailing-bytes rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(Message::decode(&[]).is_err());
    }

    #[test]
    fn payload_encoding_is_v1_compatible() {
        // Golden bytes pinning the payload layout across the codec rewrite:
        // tag 3 (Invoke), "ep", one arg (VTAG_INT 24), absent trace.
        let msg = Message::Invoke {
            routine: "ep".into(),
            args: vec![Arg::Data(Value::Int(24))],
            trace: None,
        };
        let expected: Vec<u8> = [
            &3u32.to_be_bytes()[..],  // TAG_INVOKE
            &2u32.to_be_bytes()[..],  // strlen("ep")
            b"ep\0\0",                // padded routine name
            &1u32.to_be_bytes()[..],  // argc
            &0u32.to_be_bytes()[..],  // VTAG_INT
            &24i32.to_be_bytes()[..], // the scalar
            &0u32.to_be_bytes()[..],  // trace absent
        ]
        .concat();
        assert_eq!(&msg.encode()[..], &expected[..]);
    }

    #[test]
    fn roundtrip_two_phase_messages() {
        roundtrip(Message::SubmitJob {
            routine: "ep".into(),
            args: vec![Arg::Data(Value::Int(24))],
            trace: None,
        });
        roundtrip(Message::SubmitJob {
            routine: "ep".into(),
            args: vec![Arg::Data(Value::Int(24))],
            trace: Some(TraceContext {
                trace_id: 1,
                span_id: 2,
                parent_span_id: 3,
            }),
        });
        roundtrip(Message::JobTicket { job: 42 });
        roundtrip(Message::PollJob { job: 42 });
        for state in [
            JobPhase::Pending,
            JobPhase::Done,
            JobPhase::Failed,
            JobPhase::Unknown,
        ] {
            roundtrip(Message::JobStatus { job: 7, state });
        }
        roundtrip(Message::FetchResult {
            job: 42,
            trace: None,
        });
        roundtrip(Message::FetchResult {
            job: 42,
            trace: Some(TraceContext {
                trace_id: 4,
                span_id: 5,
                parent_span_id: 6,
            }),
        });
    }

    #[test]
    fn roundtrip_db_messages() {
        roundtrip(Message::DbQuery {
            query: "GET hilbert8".into(),
        });
        roundtrip(Message::DbReply {
            description: "8x8 Hilbert matrix, column-major".into(),
            values: vec![Value::DoubleArray(vec![1.0, 0.5, 0.5, 1.0 / 3.0])],
        });
    }

    #[test]
    fn roundtrip_routine_listing() {
        roundtrip(Message::ListRoutines);
        roundtrip(Message::RoutineList {
            routines: vec![
                ("dmmul".into(), "double precision matrix multiply".into()),
                ("ep".into(), "embarrassingly parallel trials".into()),
            ],
        });
    }

    #[test]
    fn roundtrip_stats_messages() {
        roundtrip(Message::QueryStats { since: 0 });
        roundtrip(Message::QueryStats { since: 123456 });
        roundtrip(Message::StatsReply {
            now: 42.5,
            total: 2,
            records: vec![
                CallStat {
                    routine: "linpack".into(),
                    n: Some(600),
                    request_bytes: 2_892_000,
                    reply_bytes: 4_800,
                    t_submit: 1.0,
                    t_enqueue: 1.5,
                    t_dequeue: 3.0,
                    t_complete: 10.0,
                },
                CallStat {
                    routine: "ep".into(),
                    n: None,
                    request_bytes: 0,
                    reply_bytes: 16,
                    t_submit: 2.0,
                    t_enqueue: 2.0,
                    t_dequeue: 2.5,
                    t_complete: 2.75,
                },
            ],
        });
        roundtrip(Message::StatsReply {
            now: 0.0,
            total: 0,
            records: vec![],
        });
    }

    #[test]
    fn call_stat_derived_times_match_paper_definitions() {
        let s = CallStat {
            routine: "linpack".into(),
            n: Some(600),
            request_bytes: 0,
            reply_bytes: 0,
            t_submit: 1.0,
            t_enqueue: 1.5,
            t_dequeue: 3.0,
            t_complete: 10.0,
        };
        assert!((s.response() - 0.5).abs() < 1e-12);
        assert!((s.wait() - 1.5).abs() < 1e-12);
        assert!((s.service() - 7.0).abs() < 1e-12);
        assert!((s.total() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn bad_call_stat_presence_flag_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(18); // StatsReply
        enc.put_f64(0.0);
        enc.put_u64(1);
        enc.put_u32(1); // one record
        enc.put_string("f");
        enc.put_u32(7); // bogus n-presence flag
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn bad_job_phase_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(11); // JobStatus
        enc.put_u64(1);
        enc.put_u32(99); // bogus phase
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn all_value_variants_roundtrip_in_invoke() {
        roundtrip(Message::Invoke {
            routine: "f".into(),
            args: Arg::inline(vec![
                Value::Int(1),
                Value::Long(2),
                Value::Float(3.0),
                Value::Double(4.0),
                Value::IntArray(vec![5]),
                Value::LongArray(vec![6]),
                Value::FloatArray(vec![7.0]),
                Value::DoubleArray(vec![8.0]),
            ]),
            trace: None,
        });
    }

    #[test]
    fn roundtrip_trace_messages() {
        roundtrip(Message::QueryTrace { trace_id: 0 });
        roundtrip(Message::QueryTrace { trace_id: u64::MAX });
        roundtrip(Message::TraceReply {
            process: "server".into(),
            dropped: 3,
            spans: vec![
                Span {
                    trace_id: 0xabc,
                    span_id: 0xdef,
                    parent_span_id: 0,
                    name: "request".into(),
                    process: "server".into(),
                    start_us: 1_700_000_000_000_000,
                    dur_us: 12_345,
                    detail: "routine=linpack".into(),
                },
                Span {
                    trace_id: 0xabc,
                    span_id: 0x123,
                    parent_span_id: 0xdef,
                    name: "exec".into(),
                    process: "server".into(),
                    start_us: 1_700_000_000_001_000,
                    dur_us: 10_000,
                    detail: String::new(),
                },
            ],
        });
        roundtrip(Message::TraceReply {
            process: "metaserver".into(),
            dropped: 0,
            spans: vec![],
        });
    }

    #[test]
    fn roundtrip_metrics_messages() {
        roundtrip(Message::QueryMetrics { since: 0 });
        roundtrip(Message::QueryMetrics { since: u64::MAX });
        roundtrip(Message::MetricsReply {
            process: "server".into(),
            now: 12.75,
            interval: 0.25,
            total: 51,
            dropped: 3,
            frames: vec![
                MetricFrame {
                    window: 49,
                    t: 12.25,
                    samples: vec![
                        MetricSample {
                            name: "ninf_server_calls_total".into(),
                            kind: MetricKind::Counter,
                            value: 17.0,
                            count: 17,
                        },
                        MetricSample {
                            name: "ninf_server_queued".into(),
                            kind: MetricKind::Gauge,
                            value: 3.0,
                            count: 0,
                        },
                        MetricSample {
                            name: "ninf_server_call_seconds".into(),
                            kind: MetricKind::Histogram,
                            value: 0.482,
                            count: 17,
                        },
                    ],
                },
                MetricFrame {
                    window: 50,
                    t: 12.5,
                    samples: vec![],
                },
            ],
        });
        // A disarmed responder's reply: interval 0, nothing else.
        roundtrip(Message::MetricsReply {
            process: "metaserver".into(),
            now: 0.0,
            interval: 0.0,
            total: 0,
            dropped: 0,
            frames: vec![],
        });
    }

    #[test]
    fn roundtrip_chunk_messages() {
        let d = Digest { hi: 7, lo: 9 };
        roundtrip(Message::PutArgChunk {
            digest: d,
            total_bytes: 1 << 20,
            total: 64,
            seq: 63,
            crc: 0xdead_beef,
            bytes: vec![0xAB; 1021], // non-multiple of 4: exercises opaque padding
        });
        roundtrip(Message::PutArgChunk {
            digest: d,
            total_bytes: 1,
            total: 1,
            seq: 0,
            crc: 1,
            bytes: vec![0x42],
        });
        roundtrip(Message::ChunkOk { digest: d, seq: 0 });
    }

    #[test]
    fn bad_trace_presence_flag_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(3); // Invoke
        enc.put_string("f");
        enc.put_u32(0); // zero args
        enc.put_u32(9); // bogus trace presence flag
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn message_tag_matches_decode_table() {
        // tag() is generated from the same table as decode; a fresh decode
        // of each encoded message must agree on the leading word.
        let msgs = [
            Message::QueryLoad,
            Message::ListRoutines,
            Message::JobTicket { job: 1 },
            Message::QueryStats { since: 0 },
        ];
        for m in msgs {
            let wire = m.encode();
            let mut dec = ninf_xdr::XdrDecoder::new(&wire);
            assert_eq!(dec.get_u32().unwrap(), m.tag(), "{}", m.kind());
        }
    }
}
