//! Protocol messages and their XDR codecs.

use ninf_idl::CompiledInterface;
use ninf_obs::{Span, TraceContext};
use ninf_xdr::{XdrDecoder, XdrEncoder};

use crate::error::{ProtocolError, ProtocolResult};
use crate::value::Value;

/// A server load report (consumed by the metaserver, which "keeps track of
/// server load/availability, network bandwidth, etc.", paper §1).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Number of processing elements.
    pub pes: u32,
    /// Jobs currently running.
    pub running: u32,
    /// Jobs queued but not yet started.
    pub queued: u32,
    /// One-minute load average.
    pub load_average: f64,
    /// CPU utilization percent over the report window.
    pub cpu_utilization: f64,
}

/// One completed call as reported by the server's statistics sink, carrying
/// the §4.1 timestamp vocabulary (`T_submit`, `T_enqueue`, `T_dequeue`,
/// `T_complete`) over the wire so a measurement harness can join the
/// server-side view with its own client-side records.
#[derive(Debug, Clone, PartialEq)]
pub struct CallStat {
    /// Routine name.
    pub routine: String,
    /// First scalar input (matrix order `n` / EP exponent `m`), when any.
    pub n: Option<i64>,
    /// Request payload bytes (arrays only).
    pub request_bytes: u64,
    /// Reply payload bytes.
    pub reply_bytes: u64,
    /// Seconds since server start at submission.
    pub t_submit: f64,
    /// Seconds since server start at acceptance.
    pub t_enqueue: f64,
    /// Seconds since server start at executable invocation.
    pub t_dequeue: f64,
    /// Seconds since server start at completion.
    pub t_complete: f64,
}

impl CallStat {
    /// `T_response = T_enqueue − T_submit`.
    pub fn response(&self) -> f64 {
        self.t_enqueue - self.t_submit
    }

    /// `T_wait = T_dequeue − T_enqueue`.
    pub fn wait(&self) -> f64 {
        self.t_dequeue - self.t_enqueue
    }

    /// Pure service time (execution).
    pub fn service(&self) -> f64 {
        self.t_complete - self.t_dequeue
    }

    /// End-to-end server-side time.
    pub fn total(&self) -> f64 {
        self.t_complete - self.t_submit
    }

    fn encode_xdr(&self, enc: &mut XdrEncoder) {
        enc.put_string(&self.routine);
        match self.n {
            Some(n) => {
                enc.put_u32(1);
                enc.put_i64(n);
            }
            None => enc.put_u32(0),
        }
        enc.put_u64(self.request_bytes);
        enc.put_u64(self.reply_bytes);
        enc.put_f64(self.t_submit);
        enc.put_f64(self.t_enqueue);
        enc.put_f64(self.t_dequeue);
        enc.put_f64(self.t_complete);
    }

    fn decode_xdr(dec: &mut XdrDecoder<'_>) -> ProtocolResult<Self> {
        let routine = dec.get_string()?;
        let n = match dec.get_u32()? {
            0 => None,
            1 => Some(dec.get_i64()?),
            other => {
                return Err(ProtocolError::Frame(format!(
                    "bad CallStat n-presence flag {other}"
                )))
            }
        };
        Ok(CallStat {
            routine,
            n,
            request_bytes: dec.get_u64()?,
            reply_bytes: dec.get_u64()?,
            t_submit: dec.get_f64()?,
            t_enqueue: dec.get_f64()?,
            t_dequeue: dec.get_f64()?,
            t_complete: dec.get_f64()?,
        })
    }
}

/// All Ninf RPC messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Stage 1 request: which routine does the client want?
    QueryInterface {
        /// Registered routine name (possibly a `ninf://host/name` URL path
        /// tail — resolution happens client-side).
        routine: String,
    },
    /// Stage 1 reply: the compiled IDL the client will interpret.
    InterfaceReply {
        /// Compiled interface bytecode.
        interface: CompiledInterface,
    },
    /// Stage 2 request: marshalled input arguments, in declaration order,
    /// only `mode_in`/`mode_inout` parameters.
    Invoke {
        /// Routine to run (repeated for sanity checking).
        routine: String,
        /// Input values. Scalars first bind dimension variables; array
        /// extents must match the IDL layout.
        args: Vec<Value>,
        /// Caller's trace position; the server parents its spans under it.
        trace: Option<TraceContext>,
    },
    /// Stage 2 reply: `mode_out`/`mode_inout` values in declaration order.
    ResultData {
        /// Output values.
        results: Vec<Value>,
    },
    /// Any failure: unknown routine, argument mismatch, numerical error.
    Error {
        /// Human-readable reason, carried back to the caller.
        reason: String,
    },
    /// Metaserver monitoring probe.
    QueryLoad,
    /// Reply to [`Message::QueryLoad`].
    LoadStatus(LoadReport),
    /// Two-phase call, phase 1 (§5.1): ship the arguments, get a ticket,
    /// and *disconnect* while the server computes.
    SubmitJob {
        /// Routine to run.
        routine: String,
        /// Input values, as in [`Message::Invoke`].
        args: Vec<Value>,
        /// Caller's trace position; the server parents its spans under it.
        trace: Option<TraceContext>,
    },
    /// Reply to [`Message::SubmitJob`].
    JobTicket {
        /// Server-assigned job id, valid across connections.
        job: u64,
    },
    /// Ask whether a submitted job has finished.
    PollJob {
        /// The ticket.
        job: u64,
    },
    /// Reply to [`Message::PollJob`].
    JobStatus {
        /// The ticket.
        job: u64,
        /// Current phase.
        state: JobPhase,
    },
    /// Two-phase call, phase 2: collect the results (server forgets the job).
    FetchResult {
        /// The ticket.
        job: u64,
    },
    /// Ask the server which routines it exports (the paper's "server
    /// registry tools" surface).
    ListRoutines,
    /// Reply to [`Message::ListRoutines`]: names and one-line docs.
    RoutineList {
        /// `(name, doc)` pairs in sorted order.
        routines: Vec<(String, String)>,
    },
    /// `Ninf_query` (§2.2): a textual query against a Ninf *database*
    /// server ("Ninf computational and database servers", §2).
    DbQuery {
        /// Query text, e.g. `GET hilbert8`, `LIST const/`, `INFO pi`.
        query: String,
    },
    /// Reply to [`Message::DbQuery`].
    DbReply {
        /// Human-readable description of the result (shape, units, source).
        description: String,
        /// The numerical payload.
        values: Vec<Value>,
    },
    /// Ask the server for its completed-call records (§4.1 timelines),
    /// starting at record index `since` — so a harness can poll
    /// incrementally without re-shipping history.
    QueryStats {
        /// Index of the first record wanted (0 = from the beginning).
        since: u64,
    },
    /// Reply to [`Message::QueryStats`].
    StatsReply {
        /// Server clock (seconds since server start) when the reply was
        /// built; lets the consumer align epochs.
        now: f64,
        /// Total records the server holds (records[0..total]).
        total: u64,
        /// The records from `since` onward.
        records: Vec<CallStat>,
    },
    /// Ask a process for the contents of its flight recorder.
    QueryTrace {
        /// Trace to fetch, or 0 for every retained span.
        trace_id: u64,
    },
    /// Reply to [`Message::QueryTrace`].
    TraceReply {
        /// Logical process label of the responder (`server`, `metaserver`).
        process: String,
        /// Spans evicted from the ring to stay within capacity.
        dropped: u64,
        /// Retained spans matching the query.
        spans: Vec<Span>,
    },
}

fn encode_trace_ctx(enc: &mut XdrEncoder, trace: &Option<TraceContext>) {
    match trace {
        Some(ctx) => {
            enc.put_u32(1);
            enc.put_u64(ctx.trace_id);
            enc.put_u64(ctx.span_id);
            enc.put_u64(ctx.parent_span_id);
        }
        None => enc.put_u32(0),
    }
}

fn decode_trace_ctx(dec: &mut XdrDecoder<'_>) -> ProtocolResult<Option<TraceContext>> {
    match dec.get_u32()? {
        0 => Ok(None),
        1 => Ok(Some(TraceContext {
            trace_id: dec.get_u64()?,
            span_id: dec.get_u64()?,
            parent_span_id: dec.get_u64()?,
        })),
        other => Err(ProtocolError::Frame(format!(
            "bad trace-context presence flag {other}"
        ))),
    }
}

fn encode_span(enc: &mut XdrEncoder, span: &Span) {
    enc.put_u64(span.trace_id);
    enc.put_u64(span.span_id);
    enc.put_u64(span.parent_span_id);
    enc.put_string(&span.name);
    enc.put_string(&span.process);
    enc.put_u64(span.start_us);
    enc.put_u64(span.dur_us);
    enc.put_string(&span.detail);
}

fn decode_span(dec: &mut XdrDecoder<'_>) -> ProtocolResult<Span> {
    Ok(Span {
        trace_id: dec.get_u64()?,
        span_id: dec.get_u64()?,
        parent_span_id: dec.get_u64()?,
        name: dec.get_string()?,
        process: dec.get_string()?,
        start_us: dec.get_u64()?,
        dur_us: dec.get_u64()?,
        detail: dec.get_string()?,
    })
}

/// Lifecycle state of a two-phase job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Queued or executing.
    Pending,
    /// Finished; results await a [`Message::FetchResult`].
    Done,
    /// Failed; the error awaits a fetch.
    Failed,
    /// No such ticket (never issued, or already fetched).
    Unknown,
}

impl JobPhase {
    fn tag(self) -> u32 {
        match self {
            JobPhase::Pending => 0,
            JobPhase::Done => 1,
            JobPhase::Failed => 2,
            JobPhase::Unknown => 3,
        }
    }

    fn from_tag(t: u32) -> Result<Self, ProtocolError> {
        Ok(match t {
            0 => JobPhase::Pending,
            1 => JobPhase::Done,
            2 => JobPhase::Failed,
            3 => JobPhase::Unknown,
            other => return Err(ProtocolError::Frame(format!("unknown job phase {other}"))),
        })
    }
}

const TAG_QUERY_INTERFACE: u32 = 1;
const TAG_INTERFACE_REPLY: u32 = 2;
const TAG_INVOKE: u32 = 3;
const TAG_RESULT_DATA: u32 = 4;
const TAG_ERROR: u32 = 5;
const TAG_QUERY_LOAD: u32 = 6;
const TAG_LOAD_STATUS: u32 = 7;
const TAG_SUBMIT_JOB: u32 = 8;
const TAG_JOB_TICKET: u32 = 9;
const TAG_POLL_JOB: u32 = 10;
const TAG_JOB_STATUS: u32 = 11;
const TAG_FETCH_RESULT: u32 = 12;
const TAG_LIST_ROUTINES: u32 = 13;
const TAG_ROUTINE_LIST: u32 = 14;
const TAG_DB_QUERY: u32 = 15;
const TAG_DB_REPLY: u32 = 16;
const TAG_QUERY_STATS: u32 = 17;
const TAG_STATS_REPLY: u32 = 18;
const TAG_QUERY_TRACE: u32 = 19;
const TAG_TRACE_REPLY: u32 = 20;

impl Message {
    /// Short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::QueryInterface { .. } => "QueryInterface",
            Message::InterfaceReply { .. } => "InterfaceReply",
            Message::Invoke { .. } => "Invoke",
            Message::ResultData { .. } => "ResultData",
            Message::Error { .. } => "Error",
            Message::QueryLoad => "QueryLoad",
            Message::LoadStatus(_) => "LoadStatus",
            Message::SubmitJob { .. } => "SubmitJob",
            Message::JobTicket { .. } => "JobTicket",
            Message::PollJob { .. } => "PollJob",
            Message::JobStatus { .. } => "JobStatus",
            Message::FetchResult { .. } => "FetchResult",
            Message::ListRoutines => "ListRoutines",
            Message::RoutineList { .. } => "RoutineList",
            Message::DbQuery { .. } => "DbQuery",
            Message::DbReply { .. } => "DbReply",
            Message::QueryStats { .. } => "QueryStats",
            Message::StatsReply { .. } => "StatsReply",
            Message::QueryTrace { .. } => "QueryTrace",
            Message::TraceReply { .. } => "TraceReply",
        }
    }

    /// Encode to XDR payload bytes (without frame header).
    pub fn encode(&self) -> bytes::Bytes {
        let mut enc = XdrEncoder::new();
        match self {
            Message::QueryInterface { routine } => {
                enc.put_u32(TAG_QUERY_INTERFACE);
                enc.put_string(routine);
            }
            Message::InterfaceReply { interface } => {
                enc.put_u32(TAG_INTERFACE_REPLY);
                interface.encode_xdr(&mut enc);
            }
            Message::Invoke {
                routine,
                args,
                trace,
            } => {
                enc.put_u32(TAG_INVOKE);
                enc.put_string(routine);
                enc.put_u32(args.len() as u32);
                for v in args {
                    encode_tagged_value(&mut enc, v);
                }
                encode_trace_ctx(&mut enc, trace);
            }
            Message::ResultData { results } => {
                enc.put_u32(TAG_RESULT_DATA);
                enc.put_u32(results.len() as u32);
                for v in results {
                    encode_tagged_value(&mut enc, v);
                }
            }
            Message::Error { reason } => {
                enc.put_u32(TAG_ERROR);
                enc.put_string(reason);
            }
            Message::SubmitJob {
                routine,
                args,
                trace,
            } => {
                enc.put_u32(TAG_SUBMIT_JOB);
                enc.put_string(routine);
                enc.put_u32(args.len() as u32);
                for v in args {
                    encode_tagged_value(&mut enc, v);
                }
                encode_trace_ctx(&mut enc, trace);
            }
            Message::JobTicket { job } => {
                enc.put_u32(TAG_JOB_TICKET);
                enc.put_u64(*job);
            }
            Message::PollJob { job } => {
                enc.put_u32(TAG_POLL_JOB);
                enc.put_u64(*job);
            }
            Message::JobStatus { job, state } => {
                enc.put_u32(TAG_JOB_STATUS);
                enc.put_u64(*job);
                enc.put_u32(state.tag());
            }
            Message::FetchResult { job } => {
                enc.put_u32(TAG_FETCH_RESULT);
                enc.put_u64(*job);
            }
            Message::DbQuery { query } => {
                enc.put_u32(TAG_DB_QUERY);
                enc.put_string(query);
            }
            Message::DbReply {
                description,
                values,
            } => {
                enc.put_u32(TAG_DB_REPLY);
                enc.put_string(description);
                enc.put_u32(values.len() as u32);
                for v in values {
                    encode_tagged_value(&mut enc, v);
                }
            }
            Message::ListRoutines => enc.put_u32(TAG_LIST_ROUTINES),
            Message::RoutineList { routines } => {
                enc.put_u32(TAG_ROUTINE_LIST);
                enc.put_u32(routines.len() as u32);
                for (name, doc) in routines {
                    enc.put_string(name);
                    enc.put_string(doc);
                }
            }
            Message::QueryStats { since } => {
                enc.put_u32(TAG_QUERY_STATS);
                enc.put_u64(*since);
            }
            Message::StatsReply {
                now,
                total,
                records,
            } => {
                enc.put_u32(TAG_STATS_REPLY);
                enc.put_f64(*now);
                enc.put_u64(*total);
                enc.put_u32(records.len() as u32);
                for r in records {
                    r.encode_xdr(&mut enc);
                }
            }
            Message::QueryTrace { trace_id } => {
                enc.put_u32(TAG_QUERY_TRACE);
                enc.put_u64(*trace_id);
            }
            Message::TraceReply {
                process,
                dropped,
                spans,
            } => {
                enc.put_u32(TAG_TRACE_REPLY);
                enc.put_string(process);
                enc.put_u64(*dropped);
                enc.put_u32(spans.len() as u32);
                for s in spans {
                    encode_span(&mut enc, s);
                }
            }
            Message::QueryLoad => enc.put_u32(TAG_QUERY_LOAD),
            Message::LoadStatus(r) => {
                enc.put_u32(TAG_LOAD_STATUS);
                enc.put_u32(r.pes);
                enc.put_u32(r.running);
                enc.put_u32(r.queued);
                enc.put_f64(r.load_average);
                enc.put_f64(r.cpu_utilization);
            }
        }
        enc.finish()
    }

    /// Decode from XDR payload bytes.
    pub fn decode(payload: &[u8]) -> ProtocolResult<Message> {
        let mut dec = XdrDecoder::new(payload);
        let tag = dec.get_u32()?;
        let msg = match tag {
            TAG_QUERY_INTERFACE => Message::QueryInterface {
                routine: dec.get_string()?,
            },
            TAG_INTERFACE_REPLY => Message::InterfaceReply {
                interface: CompiledInterface::decode_xdr(&mut dec)?,
            },
            TAG_INVOKE => {
                let routine = dec.get_string()?;
                let n = dec.get_u32()? as usize;
                let mut args = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    args.push(decode_tagged_value(&mut dec)?);
                }
                let trace = decode_trace_ctx(&mut dec)?;
                Message::Invoke {
                    routine,
                    args,
                    trace,
                }
            }
            TAG_RESULT_DATA => {
                let n = dec.get_u32()? as usize;
                let mut results = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    results.push(decode_tagged_value(&mut dec)?);
                }
                Message::ResultData { results }
            }
            TAG_ERROR => Message::Error {
                reason: dec.get_string()?,
            },
            TAG_SUBMIT_JOB => {
                let routine = dec.get_string()?;
                let n = dec.get_u32()? as usize;
                let mut args = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    args.push(decode_tagged_value(&mut dec)?);
                }
                let trace = decode_trace_ctx(&mut dec)?;
                Message::SubmitJob {
                    routine,
                    args,
                    trace,
                }
            }
            TAG_JOB_TICKET => Message::JobTicket {
                job: dec.get_u64()?,
            },
            TAG_POLL_JOB => Message::PollJob {
                job: dec.get_u64()?,
            },
            TAG_JOB_STATUS => Message::JobStatus {
                job: dec.get_u64()?,
                state: JobPhase::from_tag(dec.get_u32()?)?,
            },
            TAG_FETCH_RESULT => Message::FetchResult {
                job: dec.get_u64()?,
            },
            TAG_DB_QUERY => Message::DbQuery {
                query: dec.get_string()?,
            },
            TAG_DB_REPLY => {
                let description = dec.get_string()?;
                let n = dec.get_u32()? as usize;
                let mut values = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    values.push(decode_tagged_value(&mut dec)?);
                }
                Message::DbReply {
                    description,
                    values,
                }
            }
            TAG_LIST_ROUTINES => Message::ListRoutines,
            TAG_ROUTINE_LIST => {
                let n = dec.get_u32()? as usize;
                let mut routines = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    routines.push((dec.get_string()?, dec.get_string()?));
                }
                Message::RoutineList { routines }
            }
            TAG_QUERY_STATS => Message::QueryStats {
                since: dec.get_u64()?,
            },
            TAG_STATS_REPLY => {
                let now = dec.get_f64()?;
                let total = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                let mut records = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    records.push(CallStat::decode_xdr(&mut dec)?);
                }
                Message::StatsReply {
                    now,
                    total,
                    records,
                }
            }
            TAG_QUERY_TRACE => Message::QueryTrace {
                trace_id: dec.get_u64()?,
            },
            TAG_TRACE_REPLY => {
                let process = dec.get_string()?;
                let dropped = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                let mut spans = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    spans.push(decode_span(&mut dec)?);
                }
                Message::TraceReply {
                    process,
                    dropped,
                    spans,
                }
            }
            TAG_QUERY_LOAD => Message::QueryLoad,
            TAG_LOAD_STATUS => Message::LoadStatus(LoadReport {
                pes: dec.get_u32()?,
                running: dec.get_u32()?,
                queued: dec.get_u32()?,
                load_average: dec.get_f64()?,
                cpu_utilization: dec.get_f64()?,
            }),
            other => return Err(ProtocolError::Frame(format!("unknown message tag {other}"))),
        };
        if !dec.is_empty() {
            return Err(ProtocolError::Frame(format!(
                "{} trailing bytes after {}",
                dec.remaining(),
                msg.kind()
            )));
        }
        Ok(msg)
    }
}

const VTAG_INT: u32 = 0;
const VTAG_LONG: u32 = 1;
const VTAG_FLOAT: u32 = 2;
const VTAG_DOUBLE: u32 = 3;
const VTAG_INT_ARR: u32 = 4;
const VTAG_LONG_ARR: u32 = 5;
const VTAG_FLOAT_ARR: u32 = 6;
const VTAG_DOUBLE_ARR: u32 = 7;

fn encode_tagged_value(enc: &mut XdrEncoder, v: &Value) {
    match v {
        Value::Int(x) => {
            enc.put_u32(VTAG_INT);
            enc.put_i32(*x);
        }
        Value::Long(x) => {
            enc.put_u32(VTAG_LONG);
            enc.put_i64(*x);
        }
        Value::Float(x) => {
            enc.put_u32(VTAG_FLOAT);
            enc.put_f32(*x);
        }
        Value::Double(x) => {
            enc.put_u32(VTAG_DOUBLE);
            enc.put_f64(*x);
        }
        Value::IntArray(x) => {
            enc.put_u32(VTAG_INT_ARR);
            enc.put_i32_array(x);
        }
        Value::LongArray(x) => {
            enc.put_u32(VTAG_LONG_ARR);
            enc.put_u32(x.len() as u32);
            for &e in x {
                enc.put_i64(e);
            }
        }
        Value::FloatArray(x) => {
            enc.put_u32(VTAG_FLOAT_ARR);
            enc.put_f32_array(x);
        }
        Value::DoubleArray(x) => {
            enc.put_u32(VTAG_DOUBLE_ARR);
            enc.put_f64_array(x);
        }
    }
}

fn decode_tagged_value(dec: &mut XdrDecoder<'_>) -> ProtocolResult<Value> {
    Ok(match dec.get_u32()? {
        VTAG_INT => Value::Int(dec.get_i32()?),
        VTAG_LONG => Value::Long(dec.get_i64()?),
        VTAG_FLOAT => Value::Float(dec.get_f32()?),
        VTAG_DOUBLE => Value::Double(dec.get_f64()?),
        VTAG_INT_ARR => Value::IntArray(dec.get_i32_array()?),
        VTAG_LONG_ARR => {
            let n = dec.get_u32()? as usize;
            if n.checked_mul(8).is_none_or(|b| b > dec.remaining()) {
                return Err(ProtocolError::Frame("long array overruns frame".into()));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(dec.get_i64()?);
            }
            Value::LongArray(v)
        }
        VTAG_FLOAT_ARR => Value::FloatArray(dec.get_f32_array()?),
        VTAG_DOUBLE_ARR => Value::DoubleArray(dec.get_f64_array()?),
        t => return Err(ProtocolError::Frame(format!("unknown value tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let wire = m.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_query_interface() {
        roundtrip(Message::QueryInterface {
            routine: "linpack".into(),
        });
    }

    #[test]
    fn roundtrip_interface_reply() {
        for iface in ninf_idl::stdlib_interfaces() {
            roundtrip(Message::InterfaceReply { interface: iface });
        }
    }

    #[test]
    fn roundtrip_invoke_with_mixed_args() {
        roundtrip(Message::Invoke {
            routine: "dmmul".into(),
            args: vec![
                Value::Int(3),
                Value::DoubleArray(vec![1.0; 9]),
                Value::DoubleArray(vec![2.0; 9]),
            ],
            trace: None,
        });
        roundtrip(Message::Invoke {
            routine: "dmmul".into(),
            args: vec![Value::Int(3)],
            trace: Some(TraceContext {
                trace_id: 0xdead_beef_cafe_f00d,
                span_id: 17,
                parent_span_id: 0,
            }),
        });
    }

    #[test]
    fn roundtrip_results_and_error() {
        roundtrip(Message::ResultData {
            results: vec![
                Value::DoubleArray(vec![0.5; 4]),
                Value::IntArray(vec![1, 0]),
            ],
        });
        roundtrip(Message::Error {
            reason: "matrix is singular".into(),
        });
    }

    #[test]
    fn roundtrip_load_messages() {
        roundtrip(Message::QueryLoad);
        roundtrip(Message::LoadStatus(LoadReport {
            pes: 4,
            running: 4,
            queued: 12,
            load_average: 16.64,
            cpu_utilization: 100.0,
        }));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(999);
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut wire = Message::QueryLoad.encode().to_vec();
        wire.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            Message::decode(&wire),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(Message::decode(&[]).is_err());
    }

    #[test]
    fn roundtrip_two_phase_messages() {
        roundtrip(Message::SubmitJob {
            routine: "ep".into(),
            args: vec![Value::Int(24)],
            trace: None,
        });
        roundtrip(Message::SubmitJob {
            routine: "ep".into(),
            args: vec![Value::Int(24)],
            trace: Some(TraceContext {
                trace_id: 1,
                span_id: 2,
                parent_span_id: 3,
            }),
        });
        roundtrip(Message::JobTicket { job: 42 });
        roundtrip(Message::PollJob { job: 42 });
        for state in [
            JobPhase::Pending,
            JobPhase::Done,
            JobPhase::Failed,
            JobPhase::Unknown,
        ] {
            roundtrip(Message::JobStatus { job: 7, state });
        }
        roundtrip(Message::FetchResult { job: 42 });
    }

    #[test]
    fn roundtrip_db_messages() {
        roundtrip(Message::DbQuery {
            query: "GET hilbert8".into(),
        });
        roundtrip(Message::DbReply {
            description: "8x8 Hilbert matrix, column-major".into(),
            values: vec![Value::DoubleArray(vec![1.0, 0.5, 0.5, 1.0 / 3.0])],
        });
    }

    #[test]
    fn roundtrip_routine_listing() {
        roundtrip(Message::ListRoutines);
        roundtrip(Message::RoutineList {
            routines: vec![
                ("dmmul".into(), "double precision matrix multiply".into()),
                ("ep".into(), "embarrassingly parallel trials".into()),
            ],
        });
    }

    #[test]
    fn roundtrip_stats_messages() {
        roundtrip(Message::QueryStats { since: 0 });
        roundtrip(Message::QueryStats { since: 123456 });
        roundtrip(Message::StatsReply {
            now: 42.5,
            total: 2,
            records: vec![
                CallStat {
                    routine: "linpack".into(),
                    n: Some(600),
                    request_bytes: 2_892_000,
                    reply_bytes: 4_800,
                    t_submit: 1.0,
                    t_enqueue: 1.5,
                    t_dequeue: 3.0,
                    t_complete: 10.0,
                },
                CallStat {
                    routine: "ep".into(),
                    n: None,
                    request_bytes: 0,
                    reply_bytes: 16,
                    t_submit: 2.0,
                    t_enqueue: 2.0,
                    t_dequeue: 2.5,
                    t_complete: 2.75,
                },
            ],
        });
        roundtrip(Message::StatsReply {
            now: 0.0,
            total: 0,
            records: vec![],
        });
    }

    #[test]
    fn call_stat_derived_times_match_paper_definitions() {
        let s = CallStat {
            routine: "linpack".into(),
            n: Some(600),
            request_bytes: 0,
            reply_bytes: 0,
            t_submit: 1.0,
            t_enqueue: 1.5,
            t_dequeue: 3.0,
            t_complete: 10.0,
        };
        assert!((s.response() - 0.5).abs() < 1e-12);
        assert!((s.wait() - 1.5).abs() < 1e-12);
        assert!((s.service() - 7.0).abs() < 1e-12);
        assert!((s.total() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn bad_call_stat_presence_flag_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(18); // StatsReply
        enc.put_f64(0.0);
        enc.put_u64(1);
        enc.put_u32(1); // one record
        enc.put_string("f");
        enc.put_u32(7); // bogus n-presence flag
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn bad_job_phase_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(11); // JobStatus
        enc.put_u64(1);
        enc.put_u32(99); // bogus phase
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }

    #[test]
    fn all_value_variants_roundtrip_in_invoke() {
        roundtrip(Message::Invoke {
            routine: "f".into(),
            args: vec![
                Value::Int(1),
                Value::Long(2),
                Value::Float(3.0),
                Value::Double(4.0),
                Value::IntArray(vec![5]),
                Value::LongArray(vec![6]),
                Value::FloatArray(vec![7.0]),
                Value::DoubleArray(vec![8.0]),
            ],
            trace: None,
        });
    }

    #[test]
    fn roundtrip_trace_messages() {
        roundtrip(Message::QueryTrace { trace_id: 0 });
        roundtrip(Message::QueryTrace { trace_id: u64::MAX });
        roundtrip(Message::TraceReply {
            process: "server".into(),
            dropped: 3,
            spans: vec![
                Span {
                    trace_id: 0xabc,
                    span_id: 0xdef,
                    parent_span_id: 0,
                    name: "request".into(),
                    process: "server".into(),
                    start_us: 1_700_000_000_000_000,
                    dur_us: 12_345,
                    detail: "routine=linpack".into(),
                },
                Span {
                    trace_id: 0xabc,
                    span_id: 0x123,
                    parent_span_id: 0xdef,
                    name: "exec".into(),
                    process: "server".into(),
                    start_us: 1_700_000_000_001_000,
                    dur_us: 10_000,
                    detail: String::new(),
                },
            ],
        });
        roundtrip(Message::TraceReply {
            process: "metaserver".into(),
            dropped: 0,
            spans: vec![],
        });
    }

    #[test]
    fn bad_trace_presence_flag_rejected() {
        let mut enc = ninf_xdr::XdrEncoder::new();
        enc.put_u32(3); // Invoke
        enc.put_string("f");
        enc.put_u32(0); // zero args
        enc.put_u32(9); // bogus trace presence flag
        assert!(matches!(
            Message::decode(&enc.finish()),
            Err(ProtocolError::Frame(_))
        ));
    }
}
