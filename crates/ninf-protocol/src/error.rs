//! Protocol error type.

use std::fmt;

/// Errors from framing, message codecs, or transports.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// XDR-level decode failure.
    Xdr(ninf_xdr::XdrError),
    /// Compiled-IDL decode failure.
    Idl(ninf_idl::IdlError),
    /// Frame-level violation (bad magic, oversized frame, trailing bytes).
    Frame(String),
    /// The frame payload failed its CRC-32C integrity check: the bytes were
    /// corrupted in flight. The stream is desynchronized after this; the
    /// connection must be torn down.
    Checksum {
        /// Digest the frame header promised.
        expected: u32,
        /// Digest of the payload that actually arrived.
        got: u32,
    },
    /// The peer speaks a different frame version. Deterministic per peer:
    /// retrying the same endpoint cannot succeed.
    UnsupportedVersion {
        /// Version word the peer sent.
        got: u32,
        /// Version this implementation speaks.
        want: u32,
    },
    /// Unknown or out-of-order message for the current protocol state.
    UnexpectedMessage {
        /// What the caller was waiting for.
        expected: &'static str,
        /// What arrived instead.
        got: String,
    },
    /// The remote side reported an error (e.g. unknown routine, singular
    /// matrix, argument mismatch).
    Remote(String),
    /// The in-process channel peer disappeared.
    Disconnected,
    /// A configured deadline elapsed before the operation completed. The
    /// connection is desynchronized after this (a late reply may still be in
    /// flight); callers must reconnect before retrying.
    Timeout {
        /// Which operation hit the deadline ("connect", "read", "write").
        operation: &'static str,
        /// The deadline that elapsed.
        after: std::time::Duration,
    },
}

impl ProtocolError {
    /// Whether this is a deadline expiry.
    pub fn is_timeout(&self) -> bool {
        matches!(self, ProtocolError::Timeout { .. })
    }

    /// Whether retrying the operation on a *fresh connection* could succeed.
    /// Remote application errors and version mismatches are deterministic
    /// and excluded; checksum failures are transient wire corruption and
    /// *are* retryable once reconnected.
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            ProtocolError::Remote(_) | ProtocolError::UnsupportedVersion { .. }
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "I/O error: {e}"),
            ProtocolError::Xdr(e) => write!(f, "XDR error: {e}"),
            ProtocolError::Idl(e) => write!(f, "IDL error: {e}"),
            ProtocolError::Frame(m) => write!(f, "frame error: {m}"),
            ProtocolError::Checksum { expected, got } => write!(
                f,
                "checksum mismatch: header promised crc32c {expected:#010x}, payload has {got:#010x}"
            ),
            ProtocolError::UnsupportedVersion { got, want } => {
                write!(f, "unsupported frame version {got} (this peer speaks v{want})")
            }
            ProtocolError::UnexpectedMessage { expected, got } => {
                write!(f, "protocol violation: expected {expected}, got {got}")
            }
            ProtocolError::Remote(m) => write!(f, "remote error: {m}"),
            ProtocolError::Disconnected => write!(f, "peer disconnected"),
            ProtocolError::Timeout { operation, after } => {
                write!(f, "timeout: {operation} deadline of {after:?} elapsed")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Xdr(e) => Some(e),
            ProtocolError::Idl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<ninf_xdr::XdrError> for ProtocolError {
    fn from(e: ninf_xdr::XdrError) -> Self {
        ProtocolError::Xdr(e)
    }
}

impl From<ninf_idl::IdlError> for ProtocolError {
    fn from(e: ninf_idl::IdlError) -> Self {
        ProtocolError::Idl(e)
    }
}

/// Convenience alias.
pub type ProtocolResult<T> = Result<T, ProtocolError>;
