//! The Ninf RPC wire protocol.
//!
//! Ninf RPC is "tailored for the needs of high-performance numerical
//! computing" (paper §2): Sun XDR on TCP/IP, matrices shipped as flat arrays,
//! and a *two-stage* call. One `Ninf_call` proceeds over a single connection:
//!
//! ```text
//! client                                server
//!   |  QueryInterface("linpack")          |
//!   |------------------------------------>|
//!   |  InterfaceReply(compiled IDL)       |   stage 1: "returns the compiled
//!   |<------------------------------------|   IDL information as
//!   |  Invoke(args marshalled per IDL)    |   interpretable code"
//!   |------------------------------------>|
//!   |          ... execution ...          |   stage 2: interpret, marshal,
//!   |  ResultData(out args)               |   execute, return
//!   |<------------------------------------|
//! ```
//!
//! No client-side stubs, headers, or linking are needed — the client learns
//! argument layouts at call time (§2.3).
//!
//! The crate provides the message set ([`message::Message`]), the typed
//! argument values ([`value::Value`]), binary framing, and two transports:
//! real TCP ([`transport::TcpTransport`]) and an in-process channel pair
//! ([`transport::ChannelTransport`]) for tests and benchmarks.

pub mod chunk;
pub mod codec;
pub mod crc;
pub mod digest;
pub mod error;
pub mod fault;
pub mod frame;
pub mod marshal;
pub mod message;
pub mod shape;
pub mod transport;
pub mod value;

pub use chunk::{
    chunk_count, chunk_span, split as split_chunks, ChunkError, Reassembly, CHUNK_THRESHOLD,
    DEFAULT_CHUNK_BYTES,
};
pub use codec::Wire;
pub use crc::{crc32c, Crc32c};
pub use digest::{cacheable, digest_value, value_image, Digest, ARG_CACHE_MIN_BYTES};
pub use error::{ProtocolError, ProtocolResult};
pub use fault::{
    fault_schedule, planned_fault, FaultHistory, FaultKind, FaultPlan, FaultStats, FaultyTransport,
};
pub use frame::{
    check_frame_payload, encode_frame, parse_frame_header, read_frame, read_frame_mux, write_frame,
    write_frame_mux, FrameHeader, FRAME_HEADER_BYTES, FRAME_MAGIC, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use marshal::{
    reply_payload_bytes, request_payload_bytes, validate_call_args, validate_results,
};
pub use message::{Arg, CallStat, JobPhase, LoadReport, Message};
pub use ninf_obs::{MetricFrame, MetricKind, MetricSample, Span, TraceContext, WindowsSnapshot};
pub use shape::{
    eff_loss_ppm, link_for, planned_shape, shape_fingerprint, shape_schedule, LinkShape, ShapeKind,
    ShapeStats, ShapedTransport, SharedLink,
};
pub use transport::{ChannelTransport, TcpTransport, Transport};
pub use value::Value;
