//! The live TCP database server.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ninf_protocol::{Message, ProtocolError, ProtocolResult, TcpTransport, Transport};

use crate::query::execute;
use crate::store::DataStore;

/// A running Ninf database server; stop with [`DbServer::shutdown`].
pub struct DbServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl DbServer {
    /// Serve `store` on `addr` (use port 0 for ephemeral).
    pub fn start(addr: &str, store: DataStore) -> ProtocolResult<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::new(store);
        let accept_thread = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let store = store.clone();
                    std::thread::spawn(move || {
                        let _ = serve(stream, &store);
                    });
                }
            })
        };
        Ok(Self {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve(stream: TcpStream, store: &DataStore) -> ProtocolResult<()> {
    let mut transport = TcpTransport::new(stream)?;
    loop {
        let msg = match transport.recv() {
            Ok(m) => m,
            Err(ProtocolError::Io(_)) | Err(ProtocolError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            Message::DbQuery { query } => {
                let reply = match execute(store, &query) {
                    Ok((description, values)) => Message::DbReply {
                        description,
                        values,
                    },
                    Err(reason) => Message::Error { reason },
                };
                transport.send(&reply)?;
            }
            other => {
                transport.send(&Message::Error {
                    reason: format!("database server: unexpected {}", other.kind()),
                })?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin_datasets;
    use crate::query::ninf_query;
    use ninf_protocol::Value;

    #[test]
    fn query_over_the_wire() {
        let server = DbServer::start("127.0.0.1:0", builtin_datasets()).unwrap();
        let addr = server.addr().to_string();

        let (desc, values) = ninf_query(&addr, "GET matrix/hilbert4").unwrap();
        assert!(desc.contains("Hilbert"));
        assert_eq!(values[0], Value::IntArray(vec![4, 4]));
        let Value::DoubleArray(d) = &values[1] else {
            panic!()
        };
        assert_eq!(d.len(), 16);

        // Errors travel as Error messages.
        let err = ninf_query(&addr, "GET nothing/here").unwrap_err();
        assert!(err.contains("no dataset"));

        server.shutdown();
    }

    #[test]
    fn listing_over_the_wire() {
        let server = DbServer::start("127.0.0.1:0", builtin_datasets()).unwrap();
        let (names, _) = ninf_query(&server.addr().to_string(), "LIST const/").unwrap();
        assert!(names.contains("const/pi"));
        server.shutdown();
    }

    #[test]
    fn rejects_non_db_messages() {
        let server = DbServer::start("127.0.0.1:0", builtin_datasets()).unwrap();
        let mut t = TcpTransport::connect(&server.addr().to_string()).unwrap();
        t.send(&Message::QueryLoad).unwrap();
        match t.recv().unwrap() {
            Message::Error { reason } => assert!(reason.contains("unexpected")),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn fetched_hilbert_solves_with_linpack_kernels() {
        // End-to-end database -> computation: pull a matrix from the DB
        // server and solve it locally.
        let server = DbServer::start("127.0.0.1:0", builtin_datasets()).unwrap();
        let (_, values) = ninf_query(&server.addr().to_string(), "GET matrix/hilbert4").unwrap();
        let Value::DoubleArray(data) = &values[1] else {
            panic!()
        };
        let mut a = ninf_exec::Matrix::from_col_major(4, 4, data.clone());
        let orig = a.clone();
        let b = orig.matvec(&[1.0; 4]);
        let mut rhs = b.clone();
        let x = ninf_exec::solve(&mut a, &mut rhs).unwrap();
        assert!(ninf_exec::residual_check(&orig, &x, &b) < 100.0);
        server.shutdown();
    }
}
