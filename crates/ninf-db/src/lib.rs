//! The Ninf numerical database server.
//!
//! Besides computational servers, "the client can make use of various
//! computing library and *database* resources via server processes" (paper
//! §2), through the `Ninf_query` client API (§2.2). This crate provides the
//! database side:
//!
//! * [`store::DataStore`] — named numerical datasets (scalars, vectors,
//!   column-major matrices) with descriptions;
//! * [`query`] — the tiny `Ninf_query` language: `GET name [SUB r0 r1 c0 c1]`,
//!   `LIST [prefix]`, `INFO name`, `DIMS name`;
//! * [`server::DbServer`] — a live TCP server answering
//!   [`ninf_protocol::Message::DbQuery`] (the §5.1 two-phase idea was first
//!   deployed for exactly these database queries);
//! * [`builtin_datasets`] — mathematical constants, test matrices, and the
//!   Linpack benchmark generator as a queryable dataset.
//!
//! ```
//! use ninf_db::{builtin_datasets, query::execute};
//!
//! let store = builtin_datasets();
//! let (desc, values) = execute(&store, "GET const/pi").unwrap();
//! assert!(desc.contains("scalar"));
//! # let _ = values;
//! ```

pub mod query;
pub mod server;
pub mod store;

pub use query::{execute, ninf_query};
pub use server::DbServer;
pub use store::{DataSet, DataStore};

/// A store pre-loaded with useful numerical data: mathematical constants
/// under `const/`, classic test matrices under `matrix/`.
pub fn builtin_datasets() -> DataStore {
    let mut store = DataStore::new();
    store.insert(DataSet::scalar(
        "const/pi",
        "circle constant pi",
        std::f64::consts::PI,
    ));
    store.insert(DataSet::scalar(
        "const/e",
        "Euler's number",
        std::f64::consts::E,
    ));
    store.insert(DataSet::scalar(
        "const/sqrt2",
        "square root of two",
        std::f64::consts::SQRT_2,
    ));
    store.insert(DataSet::vector(
        "const/powers-of-two",
        "2^0 .. 2^15",
        (0..16).map(|i| (1u32 << i) as f64).collect(),
    ));

    // Hilbert matrices: famously ill-conditioned solve fodder.
    for n in [4usize, 8, 12] {
        let mut data = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                data[j * n + i] = 1.0 / ((i + j + 1) as f64);
            }
        }
        store.insert(DataSet::matrix(
            format!("matrix/hilbert{n}"),
            format!("{n}x{n} Hilbert matrix (ill-conditioned)"),
            n,
            n,
            data,
        ));
    }
    // The Linpack benchmark matrix at a handy size.
    let (a, b) = ninf_exec::matgen(100);
    store.insert(DataSet::matrix(
        "matrix/linpack100",
        "Linpack benchmark matrix, n=100 (matgen)",
        100,
        100,
        a.into_vec(),
    ));
    store.insert(DataSet::vector(
        "matrix/linpack100-rhs",
        "b = A*ones for linpack100",
        b,
    ));
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_store_is_queryable() {
        let store = builtin_datasets();
        assert!(store.get("const/pi").is_some());
        assert!(store.get("matrix/hilbert8").is_some());
        assert!(store.list("const/").len() >= 4);
    }

    #[test]
    fn hilbert_is_symmetric() {
        let store = builtin_datasets();
        let ds = store.get("matrix/hilbert8").unwrap();
        let (r, c) = (ds.rows, ds.cols);
        assert_eq!((r, c), (8, 8));
        for i in 0..r {
            for j in 0..c {
                assert_eq!(ds.data[j * r + i], ds.data[i * r + j]);
            }
        }
    }
}
