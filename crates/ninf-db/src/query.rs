//! The `Ninf_query` language and executor.
//!
//! Queries are one-line commands:
//!
//! * `GET <name>` — fetch a dataset (dims as ints, payload as doubles);
//! * `GET <name> SUB <r0> <r1> <c0> <c1>` — fetch a sub-matrix (half-open
//!   ranges), so a client can pull a block without shipping the whole thing;
//! * `INFO <name>` — description and shape only, no payload;
//! * `DIMS <name>` — just the dimensions;
//! * `LIST [prefix]` — dataset names (encoded as a doc string).

use ninf_protocol::Value;

use crate::store::{DataSet, DataStore};

/// Execute a query against a store: `(description, values)` on success, a
/// human-readable error otherwise.
pub fn execute(store: &DataStore, query: &str) -> Result<(String, Vec<Value>), String> {
    let tokens: Vec<&str> = query.split_whitespace().collect();
    match tokens.as_slice() {
        ["GET", name] => {
            let ds = lookup(store, name)?;
            Ok((describe(ds), payload(ds)))
        }
        ["GET", name, "SUB", r0, r1, c0, c1] => {
            let ds = lookup(store, name)?;
            let (r0, r1, c0, c1) = (parse(r0)?, parse(r1)?, parse(c0)?, parse(c1)?);
            let sub = ds.submatrix(r0, r1, c0, c1).ok_or_else(|| {
                format!(
                    "range [{r0}..{r1}, {c0}..{c1}] out of bounds for {}",
                    ds.shape()
                )
            })?;
            Ok((describe(&sub), payload(&sub)))
        }
        ["INFO", name] => {
            let ds = lookup(store, name)?;
            Ok((describe(ds), vec![]))
        }
        ["DIMS", name] => {
            let ds = lookup(store, name)?;
            Ok((
                ds.shape(),
                vec![Value::IntArray(vec![ds.rows as i32, ds.cols as i32])],
            ))
        }
        ["LIST"] => Ok((
            store.list("").join("\n"),
            vec![Value::Int(store.len() as i32)],
        )),
        ["LIST", prefix] => {
            let names = store.list(prefix);
            Ok((names.join("\n"), vec![Value::Int(names.len() as i32)]))
        }
        [] => Err("empty query".into()),
        [verb, ..] => Err(format!(
            "unknown query `{verb}` (expected GET/INFO/DIMS/LIST)"
        )),
    }
}

fn lookup<'a>(store: &'a DataStore, name: &str) -> Result<&'a DataSet, String> {
    store
        .get(name)
        .ok_or_else(|| format!("no dataset `{name}` (try LIST)"))
}

fn parse(tok: &str) -> Result<usize, String> {
    tok.parse()
        .map_err(|_| format!("`{tok}` is not a valid index"))
}

fn describe(ds: &DataSet) -> String {
    format!("{} — {} ({})", ds.name, ds.description, ds.shape())
}

fn payload(ds: &DataSet) -> Vec<Value> {
    vec![
        Value::IntArray(vec![ds.rows as i32, ds.cols as i32]),
        Value::DoubleArray(ds.data.clone()),
    ]
}

/// `Ninf_query` over the wire: connect, ask, return `(description, values)`.
pub fn ninf_query(addr: &str, query: &str) -> Result<(String, Vec<Value>), String> {
    use ninf_protocol::{Message, TcpTransport, Transport};
    let mut t = TcpTransport::connect(addr).map_err(|e| e.to_string())?;
    t.send(&Message::DbQuery {
        query: query.to_owned(),
    })
    .map_err(|e| e.to_string())?;
    match t.recv().map_err(|e| e.to_string())? {
        Message::DbReply {
            description,
            values,
        } => Ok((description, values)),
        Message::Error { reason } => Err(reason),
        other => Err(format!("unexpected {}", other.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin_datasets;

    #[test]
    fn get_scalar() {
        let store = builtin_datasets();
        let (desc, values) = execute(&store, "GET const/pi").unwrap();
        assert!(desc.contains("pi"));
        assert_eq!(values[0], Value::IntArray(vec![1, 1]));
        let Value::DoubleArray(d) = &values[1] else {
            panic!()
        };
        assert_eq!(d[0], std::f64::consts::PI);
    }

    #[test]
    fn get_submatrix() {
        let store = builtin_datasets();
        let (_, values) = execute(&store, "GET matrix/hilbert8 SUB 0 2 0 2").unwrap();
        assert_eq!(values[0], Value::IntArray(vec![2, 2]));
        let Value::DoubleArray(d) = &values[1] else {
            panic!()
        };
        // top-left 2x2 of Hilbert: [1, 1/2; 1/2, 1/3] column-major
        assert_eq!(d, &vec![1.0, 0.5, 0.5, 1.0 / 3.0]);
    }

    #[test]
    fn info_has_no_payload() {
        let store = builtin_datasets();
        let (desc, values) = execute(&store, "INFO matrix/hilbert12").unwrap();
        assert!(desc.contains("matrix[12x12]"));
        assert!(values.is_empty());
    }

    #[test]
    fn dims_only() {
        let store = builtin_datasets();
        let (_, values) = execute(&store, "DIMS matrix/linpack100").unwrap();
        assert_eq!(values[0], Value::IntArray(vec![100, 100]));
    }

    #[test]
    fn list_with_prefix() {
        let store = builtin_datasets();
        let (names, count) = execute(&store, "LIST matrix/").unwrap();
        assert!(names.contains("matrix/hilbert4"));
        assert!(!names.contains("const/pi"));
        let Value::Int(n) = count[0] else { panic!() };
        assert!(n >= 4);
    }

    #[test]
    fn errors_are_helpful() {
        let store = builtin_datasets();
        assert!(execute(&store, "GET nope").unwrap_err().contains("LIST"));
        assert!(execute(&store, "FROB x")
            .unwrap_err()
            .contains("unknown query"));
        assert!(execute(&store, "").unwrap_err().contains("empty"));
        assert!(execute(&store, "GET matrix/hilbert4 SUB 0 9 0 9")
            .unwrap_err()
            .contains("out of bounds"));
        assert!(execute(&store, "GET matrix/hilbert4 SUB a b c d")
            .unwrap_err()
            .contains("not a valid"));
    }
}
