//! Named numerical datasets.

use std::collections::BTreeMap;

/// One dataset: a scalar, vector, or column-major matrix of doubles.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSet {
    /// Hierarchical name, e.g. `matrix/hilbert8`.
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Rows (1 for scalars and row vectors).
    pub rows: usize,
    /// Columns (1 for scalars and column vectors).
    pub cols: usize,
    /// Column-major payload; `rows * cols` entries.
    pub data: Vec<f64>,
}

impl DataSet {
    /// A scalar dataset.
    pub fn scalar(name: impl Into<String>, description: impl Into<String>, value: f64) -> Self {
        Self {
            name: name.into(),
            description: description.into(),
            rows: 1,
            cols: 1,
            data: vec![value],
        }
    }

    /// A column-vector dataset.
    pub fn vector(name: impl Into<String>, description: impl Into<String>, data: Vec<f64>) -> Self {
        let rows = data.len();
        Self {
            name: name.into(),
            description: description.into(),
            rows,
            cols: 1,
            data,
        }
    }

    /// A matrix dataset (column-major).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn matrix(
        name: impl Into<String>,
        description: impl Into<String>,
        rows: usize,
        cols: usize,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self {
            name: name.into(),
            description: description.into(),
            rows,
            cols,
            data,
        }
    }

    /// Extract the sub-matrix rows `[r0, r1)` × cols `[c0, c1)`.
    ///
    /// Returns `None` when the range is empty or out of bounds.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Option<DataSet> {
        if r0 >= r1 || c0 >= c1 || r1 > self.rows || c1 > self.cols {
            return None;
        }
        let mut data = Vec::with_capacity((r1 - r0) * (c1 - c0));
        for j in c0..c1 {
            for i in r0..r1 {
                data.push(self.data[j * self.rows + i]);
            }
        }
        Some(DataSet {
            name: format!("{}[{}..{}, {}..{}]", self.name, r0, r1, c0, c1),
            description: self.description.clone(),
            rows: r1 - r0,
            cols: c1 - c0,
            data,
        })
    }

    /// Short shape label: `scalar`, `vector[n]`, or `matrix[r x c]`.
    pub fn shape(&self) -> String {
        match (self.rows, self.cols) {
            (1, 1) => "scalar".into(),
            (r, 1) => format!("vector[{r}]"),
            (r, c) => format!("matrix[{r}x{c}]"),
        }
    }
}

/// An in-memory name → dataset map with prefix listing.
#[derive(Debug, Default, Clone)]
pub struct DataStore {
    sets: BTreeMap<String, DataSet>,
}

impl DataStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a dataset.
    pub fn insert(&mut self, set: DataSet) {
        self.sets.insert(set.name.clone(), set);
    }

    /// Fetch by exact name.
    pub fn get(&self, name: &str) -> Option<&DataSet> {
        self.sets.get(name)
    }

    /// All names with the given prefix (empty prefix lists everything),
    /// sorted.
    pub fn list(&self, prefix: &str) -> Vec<&str> {
        self.sets
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataStore {
        let mut s = DataStore::new();
        s.insert(DataSet::scalar("c/pi", "pi", 3.5));
        s.insert(DataSet::vector("v/ones", "ones", vec![1.0; 4]));
        s.insert(DataSet::matrix(
            "m/a",
            "2x3",
            2,
            3,
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ));
        s
    }

    #[test]
    fn insert_get_list() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("c/pi").unwrap().data, vec![3.5]);
        assert_eq!(s.list("v/"), vec!["v/ones"]);
        assert_eq!(s.list(""), vec!["c/pi", "m/a", "v/ones"]);
        assert!(s.list("zzz").is_empty());
    }

    #[test]
    fn shapes() {
        let s = sample();
        assert_eq!(s.get("c/pi").unwrap().shape(), "scalar");
        assert_eq!(s.get("v/ones").unwrap().shape(), "vector[4]");
        assert_eq!(s.get("m/a").unwrap().shape(), "matrix[2x3]");
    }

    #[test]
    fn submatrix_extracts_column_major() {
        let s = sample();
        let m = s.get("m/a").unwrap();
        // m (2x3, column-major [1,2 | 3,4 | 5,6]) -> row 1, cols 1..3 = [4, 6]
        let sub = m.submatrix(1, 2, 1, 3).unwrap();
        assert_eq!((sub.rows, sub.cols), (1, 2));
        assert_eq!(sub.data, vec![4.0, 6.0]);
    }

    #[test]
    fn submatrix_bounds_checked() {
        let s = sample();
        let m = s.get("m/a").unwrap();
        assert!(m.submatrix(0, 3, 0, 1).is_none()); // too many rows
        assert!(m.submatrix(1, 1, 0, 1).is_none()); // empty
        assert!(m.submatrix(0, 1, 2, 5).is_none()); // cols out of range
    }

    #[test]
    fn replacement_overwrites() {
        let mut s = sample();
        s.insert(DataSet::scalar("c/pi", "better pi", std::f64::consts::PI));
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("c/pi").unwrap().data[0], std::f64::consts::PI);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_matrix_shape_panics() {
        let _ = DataSet::matrix("x", "bad", 2, 2, vec![0.0; 3]);
    }
}
