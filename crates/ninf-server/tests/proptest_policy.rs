//! Property tests on the shared scheduling policies: whatever a policy
//! picks must be startable, and each policy's defining invariant must hold
//! on arbitrary queues.

use ninf_server::{JobInfo, SchedPolicy};
use proptest::prelude::*;

fn arb_queue() -> impl Strategy<Value = Vec<JobInfo>> {
    proptest::collection::vec((0.01f64..100.0, 1usize..=8), 0..24).prop_map(|jobs| {
        jobs.into_iter()
            .enumerate()
            .map(|(i, (cost, pes))| JobInfo {
                arrival_seq: i as u64,
                estimated_cost: cost,
                pes_required: pes,
            })
            .collect()
    })
}

proptest! {
    /// Whatever any policy picks fits the free PEs.
    #[test]
    fn picks_always_fit(queue in arb_queue(), free in 0usize..=8) {
        for policy in SchedPolicy::all() {
            if let Some(i) = policy.pick(&queue, free) {
                prop_assert!(i < queue.len());
                prop_assert!(queue[i].pes_required <= free, "{} overpicked", policy.name());
            }
        }
    }

    /// FCFS only ever starts the head of the queue.
    #[test]
    fn fcfs_is_head_only(queue in arb_queue(), free in 0usize..=8) {
        match SchedPolicy::Fcfs.pick(&queue, free) {
            Some(i) => prop_assert_eq!(i, 0),
            None => {
                if let Some(head) = queue.first() {
                    prop_assert!(head.pes_required > free);
                }
            }
        }
    }

    /// FPFS picks the earliest fitting job.
    #[test]
    fn fpfs_is_earliest_fit(queue in arb_queue(), free in 0usize..=8) {
        match SchedPolicy::Fpfs.pick(&queue, free) {
            Some(i) => {
                for j in &queue[..i] {
                    prop_assert!(j.pes_required > free);
                }
                prop_assert!(queue[i].pes_required <= free);
            }
            None => prop_assert!(queue.iter().all(|j| j.pes_required > free)),
        }
    }

    /// SJF picks a fitting job with globally minimal cost.
    #[test]
    fn sjf_is_minimal_cost(queue in arb_queue(), free in 0usize..=8) {
        if let Some(i) = SchedPolicy::Sjf.pick(&queue, free) {
            let min_fit = queue
                .iter()
                .filter(|j| j.pes_required <= free)
                .map(|j| j.estimated_cost)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(queue[i].estimated_cost <= min_fit + 1e-12);
        }
    }

    /// FPMPFS picks a fitting job with maximal width.
    #[test]
    fn fpmpfs_is_maximal_width(queue in arb_queue(), free in 0usize..=8) {
        if let Some(i) = SchedPolicy::Fpmpfs.pick(&queue, free) {
            let max_fit = queue
                .iter()
                .filter(|j| j.pes_required <= free)
                .map(|j| j.pes_required)
                .max()
                .unwrap();
            prop_assert_eq!(queue[i].pes_required, max_fit);
        }
    }

    /// If any job fits, the backfilling policies never return None.
    #[test]
    fn backfillers_are_work_conserving(queue in arb_queue(), free in 1usize..=8) {
        let any_fit = queue.iter().any(|j| j.pes_required <= free);
        for policy in [SchedPolicy::Sjf, SchedPolicy::Fpfs, SchedPolicy::Fpmpfs] {
            prop_assert_eq!(
                policy.pick(&queue, free).is_some(),
                any_fit,
                "{} not work-conserving",
                policy.name()
            );
        }
    }
}
