//! Two-phase call support (paper §5.1).
//!
//! "an alternative is to modify Ninf_call to become a two-phase transaction,
//! where remote argument transfer takes place in the first phase, whereupon
//! the communication is terminated, and after the server computation is
//! over, the client is notified so that it may receive the results in the
//! second phase. We have already implemented such a two-phase protocol for
//! database queries in Ninf." — here it is for computations: the client
//! submits and disconnects; the server computes under the same gate as
//! ordinary calls; any later connection can poll and fetch by ticket.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

use ninf_protocol::{JobPhase, Value};

/// Outcome storage of one submitted job.
#[derive(Debug, Clone)]
enum JobState {
    Pending,
    Done(Vec<Value>),
    Failed(String),
}

/// Thread-safe ticket → job-state table.
#[derive(Debug, Default)]
pub struct JobTable {
    next: AtomicU64,
    jobs: Mutex<HashMap<u64, JobState>>,
    cv: Condvar,
}

impl JobTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a ticket in the pending state.
    pub fn submit(&self) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().insert(id, JobState::Pending);
        id
    }

    /// Record a finished job.
    pub fn complete(&self, job: u64, outcome: Result<Vec<Value>, String>) {
        let state = match outcome {
            Ok(v) => JobState::Done(v),
            Err(e) => JobState::Failed(e),
        };
        self.jobs.lock().insert(job, state);
        self.cv.notify_all();
    }

    /// Current phase of a ticket.
    pub fn poll(&self, job: u64) -> JobPhase {
        match self.jobs.lock().get(&job) {
            None => JobPhase::Unknown,
            Some(JobState::Pending) => JobPhase::Pending,
            Some(JobState::Done(_)) => JobPhase::Done,
            Some(JobState::Failed(_)) => JobPhase::Failed,
        }
    }

    /// Remove and return a finished job's outcome; `None` while pending or
    /// for unknown tickets.
    pub fn fetch(&self, job: u64) -> Option<Result<Vec<Value>, String>> {
        let mut jobs = self.jobs.lock();
        match jobs.get(&job) {
            Some(JobState::Pending) | None => None,
            Some(_) => match jobs.remove(&job) {
                Some(JobState::Done(v)) => Some(Ok(v)),
                Some(JobState::Failed(e)) => Some(Err(e)),
                _ => unreachable!("checked above"),
            },
        }
    }

    /// Number of tickets currently tracked.
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.lock().is_empty()
    }

    /// Block until `job` leaves the pending state (test helper; real clients
    /// poll over the network).
    pub fn wait_done(&self, job: u64) {
        let mut jobs = self.jobs.lock();
        while matches!(jobs.get(&job), Some(JobState::Pending)) {
            self.cv.wait(&mut jobs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifecycle_pending_done_fetch() {
        let t = JobTable::new();
        let id = t.submit();
        assert_eq!(t.poll(id), JobPhase::Pending);
        assert!(t.fetch(id).is_none(), "cannot fetch a pending job");
        t.complete(id, Ok(vec![Value::Int(7)]));
        assert_eq!(t.poll(id), JobPhase::Done);
        assert_eq!(t.fetch(id), Some(Ok(vec![Value::Int(7)])));
        // Fetch consumes the ticket.
        assert_eq!(t.poll(id), JobPhase::Unknown);
        assert!(t.fetch(id).is_none());
    }

    #[test]
    fn failures_carry_the_reason() {
        let t = JobTable::new();
        let id = t.submit();
        t.complete(id, Err("singular matrix".into()));
        assert_eq!(t.poll(id), JobPhase::Failed);
        assert_eq!(t.fetch(id), Some(Err("singular matrix".into())));
    }

    #[test]
    fn unknown_tickets() {
        let t = JobTable::new();
        assert_eq!(t.poll(999), JobPhase::Unknown);
        assert!(t.fetch(999).is_none());
    }

    #[test]
    fn tickets_are_unique() {
        let t = JobTable::new();
        let a = t.submit();
        let b = t.submit();
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn wait_done_blocks_until_completion() {
        let t = Arc::new(JobTable::new());
        let id = t.submit();
        let t2 = t.clone();
        let worker = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            t2.complete(id, Ok(vec![]));
        });
        t.wait_done(id);
        assert_eq!(t.poll(id), JobPhase::Done);
        worker.join().unwrap();
    }
}
