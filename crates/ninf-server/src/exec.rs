//! Execution-mode gate: how many PEs one `Ninf_call` occupies, and which
//! queued call starts next.
//!
//! The paper's central server-side design question (§1, §4.1): "distribute
//! the computing resources amongst different client requests in a *task
//! parallel manner*, or allocate all the processors to each client task in a
//! *data parallel manner* in sequence". [`ExecMode`] picks the width;
//! [`JobGate`] enforces it with a [`SchedPolicy`]-driven admission queue.

use parking_lot::{Condvar, Mutex};

use crate::policy::{JobInfo, SchedPolicy};

/// How a server maps one call onto its PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// One PE per call; up to `pes` calls run concurrently (the 1-PE rows of
    /// Tables 3/6; how "typical non-numerical server tasks (such as WWW HTTPD
    /// service)" behave, §4.1).
    TaskParallel,
    /// All PEs per call, calls serialized (the 4-PE libSci rows of Tables
    /// 4/7).
    DataParallel,
}

impl ExecMode {
    /// PEs one call occupies on a machine with `pes` processors.
    pub fn pes_per_call(&self, pes: usize) -> usize {
        match self {
            ExecMode::TaskParallel => 1,
            ExecMode::DataParallel => pes,
        }
    }

    /// Display name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::TaskParallel => "task-parallel (1-PE)",
            ExecMode::DataParallel => "data-parallel (all-PE)",
        }
    }
}

#[derive(Debug)]
struct GateState {
    free_pes: usize,
    /// Queue in arrival order; `u64` is the ticket identifying the waiter.
    queue: Vec<(u64, JobInfo)>,
    next_ticket: u64,
}

/// Blocking admission gate shared by all connection threads of a live
/// server.
#[derive(Debug)]
pub struct JobGate {
    state: Mutex<GateState>,
    cv: Condvar,
    policy: SchedPolicy,
    pes: usize,
}

impl JobGate {
    /// Gate for a machine with `pes` processors under `policy`.
    pub fn new(pes: usize, policy: SchedPolicy) -> Self {
        assert!(pes > 0);
        Self {
            state: Mutex::new(GateState {
                free_pes: pes,
                queue: Vec::new(),
                next_ticket: 0,
            }),
            cv: Condvar::new(),
            policy,
            pes,
        }
    }

    /// Total PEs.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Currently queued (not yet running) jobs.
    pub fn queued(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// PEs currently in use.
    pub fn busy_pes(&self) -> usize {
        self.pes - self.state.lock().free_pes
    }

    /// Block until the policy admits this job; returns a guard that releases
    /// the PEs on drop.
    ///
    /// # Panics
    /// Panics if the job requests more PEs than the machine has (it could
    /// never start).
    pub fn acquire(&self, mut job: JobInfo) -> JobGuard<'_> {
        assert!(
            job.pes_required <= self.pes,
            "job wants {} PEs, machine has {}",
            job.pes_required,
            self.pes
        );
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        job.arrival_seq = ticket;
        st.queue.push((ticket, job));
        loop {
            let infos: Vec<JobInfo> = st.queue.iter().map(|&(_, j)| j).collect();
            if let Some(idx) = self.policy.pick(&infos, st.free_pes) {
                if st.queue[idx].0 == ticket {
                    st.queue.remove(idx);
                    st.free_pes -= job.pes_required;
                    drop(st);
                    // The admitted job changed the state; others re-evaluate.
                    self.cv.notify_all();
                    return JobGuard {
                        gate: self,
                        pes: job.pes_required,
                    };
                }
                // Someone else was picked — make sure they wake up.
                self.cv.notify_all();
            }
            self.cv.wait(&mut st);
        }
    }
}

/// RAII release of acquired PEs.
#[derive(Debug)]
pub struct JobGuard<'a> {
    gate: &'a JobGate,
    pes: usize,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock();
        st.free_pes += self.pes;
        drop(st);
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn job(pes: usize) -> JobInfo {
        JobInfo {
            arrival_seq: 0,
            estimated_cost: 1.0,
            pes_required: pes,
        }
    }

    #[test]
    fn exec_mode_widths() {
        assert_eq!(ExecMode::TaskParallel.pes_per_call(4), 1);
        assert_eq!(ExecMode::DataParallel.pes_per_call(4), 4);
    }

    #[test]
    fn task_parallel_allows_concurrency_up_to_pes() {
        let gate = Arc::new(JobGate::new(4, SchedPolicy::Fcfs));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let gate = gate.clone();
            let peak = peak.clone();
            let current = current.clone();
            handles.push(std::thread::spawn(move || {
                let _guard = gate.acquire(job(1));
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                current.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 4);
        assert!(peak.load(Ordering::SeqCst) >= 2, "should have overlapped");
    }

    #[test]
    fn data_parallel_serializes() {
        let gate = Arc::new(JobGate::new(4, SchedPolicy::Fcfs));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gate = gate.clone();
            let peak = peak.clone();
            let current = current.clone();
            handles.push(std::thread::spawn(move || {
                let _guard = gate.acquire(job(4));
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(10));
                current.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn guard_drop_frees_pes() {
        let gate = JobGate::new(2, SchedPolicy::Fcfs);
        {
            let _g1 = gate.acquire(job(2));
            assert_eq!(gate.busy_pes(), 2);
        }
        assert_eq!(gate.busy_pes(), 0);
    }

    #[test]
    #[should_panic(expected = "PEs")]
    fn oversized_job_panics() {
        let gate = JobGate::new(2, SchedPolicy::Fcfs);
        let _ = gate.acquire(job(3));
    }

    #[test]
    fn mixed_widths_under_fpfs_do_not_deadlock() {
        let gate = Arc::new(JobGate::new(4, SchedPolicy::Fpfs));
        let mut handles = Vec::new();
        for i in 0..12 {
            let gate = gate.clone();
            let width = if i % 3 == 0 { 4 } else { 1 };
            handles.push(std::thread::spawn(move || {
                let _guard = gate.acquire(job(width));
                std::thread::sleep(Duration::from_millis(3));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gate.busy_pes(), 0);
        assert_eq!(gate.queued(), 0);
    }
}
