//! The Ninf executable registry.
//!
//! Registration takes an IDL `Define` plus a handler closure — the moral
//! equivalent of the paper's stub generator binding a library symbol to the
//! RPC layer ("Binaries of computing libraries and applications are
//! registered on the server process as Ninf executables, which can be
//! semi-automatically generated with IDL descriptions", §2.1).

use std::collections::BTreeMap;
use std::sync::Arc;

use ninf_idl::{CompiledInterface, IdlError, Mode};
use ninf_protocol::Value;

/// A handler receives the `mode_in`/`mode_inout` values (declaration order)
/// and returns the `mode_out`/`mode_inout` values (declaration order), or a
/// human-readable error shipped back to the client.
pub type Handler = Arc<dyn Fn(&[Value]) -> Result<Vec<Value>, String> + Send + Sync>;

/// One registered routine.
#[derive(Clone)]
pub struct NinfExecutable {
    /// Compiled interface shipped to clients in RPC stage 1.
    pub interface: CompiledInterface,
    /// The computation.
    pub handler: Handler,
}

impl std::fmt::Debug for NinfExecutable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NinfExecutable")
            .field("interface", &self.interface.name)
            .finish()
    }
}

/// Name → executable map.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    entries: BTreeMap<String, NinfExecutable>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse `idl_src`, compile it, and register `handler` under the
    /// `Define`d name. Re-registering a name replaces the previous entry
    /// (mirroring server-side library upgrades).
    pub fn register(&mut self, idl_src: &str, handler: Handler) -> Result<(), IdlError> {
        let def = ninf_idl::parse_one(idl_src)?;
        let interface = CompiledInterface::compile(&def)?;
        self.entries
            .insert(def.name.clone(), NinfExecutable { interface, handler });
        Ok(())
    }

    /// Register an already-compiled interface.
    pub fn register_compiled(&mut self, interface: CompiledInterface, handler: Handler) {
        self.entries.insert(
            interface.name.clone(),
            NinfExecutable { interface, handler },
        );
    }

    /// Find an executable by routine name. Accepts bare names and
    /// `ninf://host/name` URLs (the paper's `Ninf_call("http://.../dmmul")`
    /// form) by taking the final path segment.
    pub fn lookup(&self, routine: &str) -> Option<&NinfExecutable> {
        let name = routine.rsplit('/').next().unwrap_or(routine);
        self.entries.get(name)
    }

    /// Registered routine names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered executables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Validate `args` (the client's `mode_in`/`mode_inout` values) against the
/// interface and return the resolved per-parameter layout.
///
/// Scalar integer inputs are bound to the IDL dimension variables; every
/// array argument must then match its computed extent exactly.
pub fn validate_invoke(
    interface: &CompiledInterface,
    args: &[Value],
) -> Result<Vec<ninf_idl::compile::ParamLayout>, String> {
    // Bind scalar inputs by walking sends() params against args.
    let send_params: Vec<_> = interface.params.iter().filter(|p| p.mode.sends()).collect();
    if send_params.len() != args.len() {
        return Err(format!(
            "{} takes {} input arguments, got {}",
            interface.name,
            send_params.len(),
            args.len()
        ));
    }
    let mut scalars: Vec<(&str, i64)> = Vec::new();
    for (p, v) in send_params.iter().zip(args) {
        if p.is_scalar() {
            let Some(x) = v.as_scalar_i64() else {
                if !matches!(p.mode, Mode::In | Mode::InOut) {
                    continue;
                }
                // Non-integer scalars are legal arguments but cannot size arrays.
                continue;
            };
            if interface.scalar_table.iter().any(|s| s == &p.name) {
                scalars.push((p.name.as_str(), x));
            }
        }
    }
    let layout = interface.layout(&scalars).map_err(|e| e.to_string())?;

    // Validate each input value against its layout slot.
    let send_layout: Vec<_> = layout.iter().filter(|l| l.mode.sends()).collect();
    for ((l, v), p) in send_layout.iter().zip(args).zip(&send_params) {
        v.conforms(l.base, l.count, p.is_scalar())
            .map_err(|e| e.to_string())?;
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler() -> Handler {
        Arc::new(|args: &[Value]| Ok(args.to_vec()))
    }

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        r.register(ninf_idl::stdlib()[0], echo_handler()).unwrap();
        assert!(r.lookup("dmmul").is_some());
        assert!(r.lookup("nope").is_none());
        assert_eq!(r.names(), vec!["dmmul"]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn url_form_resolves_to_name() {
        let mut r = Registry::new();
        r.register(ninf_idl::stdlib()[0], echo_handler()).unwrap();
        assert!(r.lookup("ninf://etl.go.jp/dmmul").is_some());
        assert!(r.lookup("http://phase.etl.go.jp/ninf/dmmul").is_some());
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = Registry::new();
        r.register(ninf_idl::stdlib()[0], echo_handler()).unwrap();
        r.register(ninf_idl::stdlib()[0], echo_handler()).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn bad_idl_rejected() {
        let mut r = Registry::new();
        assert!(r.register("Defin oops(", echo_handler()).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn validate_accepts_conforming_args() {
        let iface = ninf_idl::stdlib_interfaces().remove(0); // dmmul
        let n = 4usize;
        let args = vec![
            Value::Int(n as i32),
            Value::DoubleArray(vec![1.0; n * n]),
            Value::DoubleArray(vec![2.0; n * n]),
        ];
        let layout = validate_invoke(&iface, &args).unwrap();
        assert_eq!(layout.len(), 4);
        assert_eq!(layout[3].count, n * n); // C out
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let iface = ninf_idl::stdlib_interfaces().remove(0);
        let err = validate_invoke(&iface, &[Value::Int(4)]).unwrap_err();
        assert!(err.contains("input arguments"));
    }

    #[test]
    fn validate_rejects_wrong_extent() {
        let iface = ninf_idl::stdlib_interfaces().remove(0);
        let args = vec![
            Value::Int(4),
            Value::DoubleArray(vec![1.0; 16]),
            Value::DoubleArray(vec![2.0; 15]), // off by one
        ];
        assert!(validate_invoke(&iface, &args).is_err());
    }

    #[test]
    fn validate_rejects_wrong_type() {
        let iface = ninf_idl::stdlib_interfaces().remove(0);
        let args = vec![
            Value::Int(2),
            Value::FloatArray(vec![1.0; 4]),
            Value::DoubleArray(vec![2.0; 4]),
        ];
        assert!(validate_invoke(&iface, &args).is_err());
    }
}
