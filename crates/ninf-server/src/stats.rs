//! Per-call measurement records: the timestamps and derived metrics of §4.1.
//!
//! "for each client Ninf_call task, we measured the throughput and various
//! timings: time of task submission T_submit, time when the Ninf_call task
//! was accepted at the server T_enqueue, time when the corresponding Ninf
//! executable was invoked T_dequeue, and the time at which Ninf_call was
//! completed T_complete." — with `T_response = T_enqueue − T_submit` and
//! `T_wait = T_dequeue − T_enqueue`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use ninf_protocol::{CallStat, LoadReport};

/// Default cap on retained [`CallRecord`]s. A long-lived server keeps a
/// bounded window of recent history instead of growing without limit; the
/// monotone record index (`base`) keeps incremental stats queries correct
/// across eviction.
pub const DEFAULT_RECORD_CAPACITY: usize = 65_536;

/// One completed `Ninf_call` as observed by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Routine name.
    pub routine: String,
    /// First scalar input (the matrix order `n` / EP exponent `m`), for
    /// grouping results into table rows.
    pub n: Option<i64>,
    /// Request payload bytes (arrays only, per the paper's convention).
    pub request_bytes: usize,
    /// Reply payload bytes.
    pub reply_bytes: usize,
    /// Seconds since server start at each lifecycle point.
    pub t_submit: f64,
    /// See above.
    pub t_enqueue: f64,
    /// See above.
    pub t_dequeue: f64,
    /// See above.
    pub t_complete: f64,
}

impl CallRecord {
    /// `T_response = T_enqueue − T_submit`.
    pub fn response(&self) -> f64 {
        self.t_enqueue - self.t_submit
    }

    /// `T_wait = T_dequeue − T_enqueue`.
    pub fn wait(&self) -> f64 {
        self.t_dequeue - self.t_enqueue
    }

    /// Pure service time (execution).
    pub fn service(&self) -> f64 {
        self.t_complete - self.t_dequeue
    }

    /// End-to-end server-side time.
    pub fn total(&self) -> f64 {
        self.t_complete - self.t_submit
    }

    /// The wire form of this record (for [`ninf_protocol::Message::StatsReply`]).
    pub fn to_wire(&self) -> CallStat {
        CallStat {
            routine: self.routine.clone(),
            n: self.n,
            request_bytes: self.request_bytes as u64,
            reply_bytes: self.reply_bytes as u64,
            t_submit: self.t_submit,
            t_enqueue: self.t_enqueue,
            t_dequeue: self.t_dequeue,
            t_complete: self.t_complete,
        }
    }
}

/// Bounded record history: a ring of the most recent records plus the
/// monotone index of the oldest retained one, so global record indices
/// (`base..base+buf.len()`) stay stable as old entries are evicted.
#[derive(Debug)]
struct RecordRing {
    buf: VecDeque<CallRecord>,
    /// Global index of `buf[0]`; equivalently, how many records have been
    /// evicted so far.
    base: u64,
    cap: usize,
}

impl RecordRing {
    fn push(&mut self, record: CallRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.base += 1;
        }
        self.buf.push_back(record);
    }

    /// Total records ever completed (retained + evicted).
    fn total(&self) -> u64 {
        self.base + self.buf.len() as u64
    }
}

/// Shared, thread-safe statistics sink of a live server.
#[derive(Debug)]
pub struct ServerStats {
    start: Instant,
    records: Mutex<RecordRing>,
    running: AtomicUsize,
    queued: AtomicUsize,
    pes: usize,
}

impl ServerStats {
    /// New sink for a machine with `pes` PEs; the clock starts now.
    pub fn new(pes: usize) -> Self {
        Self::with_capacity(pes, DEFAULT_RECORD_CAPACITY)
    }

    /// New sink retaining at most `capacity` recent records.
    pub fn with_capacity(pes: usize, capacity: usize) -> Self {
        Self {
            start: Instant::now(),
            records: Mutex::new(RecordRing {
                buf: VecDeque::with_capacity(capacity.min(DEFAULT_RECORD_CAPACITY)),
                base: 0,
                cap: capacity.max(1),
            }),
            running: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            pes,
        }
    }

    /// Seconds since server start.
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Mark a job queued (between enqueue and dequeue).
    pub fn job_queued(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a job moved from queue to execution.
    pub fn job_started(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.running.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a job finished and store its record (evicting the oldest retained
    /// record once the ring is full).
    pub fn job_finished(&self, record: CallRecord) {
        self.running.fetch_sub(1, Ordering::Relaxed);
        self.records.lock().push(record);
    }

    /// Copy of all *retained* records (the most recent window).
    pub fn snapshot(&self) -> Vec<CallRecord> {
        self.records.lock().buf.iter().cloned().collect()
    }

    /// Incremental wire snapshot for a stats query: records from global index
    /// `since` onward, the total count ever completed, and the server clock
    /// now — so a polling harness ships only new history on each probe.
    /// `since` below the retention window is clamped up to the oldest
    /// retained record (the evicted prefix is gone, never re-sent), so a
    /// cursor-driven poller sees every retained record exactly once.
    pub fn snapshot_since(&self, since: u64) -> (f64, u64, Vec<CallStat>) {
        let records = self.records.lock();
        let total = records.total();
        let from = since.clamp(records.base, total);
        let wire = records
            .buf
            .iter()
            .skip((from - records.base) as usize)
            .map(CallRecord::to_wire)
            .collect();
        (self.now(), total, wire)
    }

    /// Number of completed calls over the server's lifetime (including
    /// records already evicted from the bounded ring).
    pub fn completed(&self) -> usize {
        self.records.lock().total() as usize
    }

    /// Number of records currently retained (bounded by the ring capacity).
    pub fn retained(&self) -> usize {
        self.records.lock().buf.len()
    }

    /// Current load report for the metaserver.
    pub fn load_report(&self) -> LoadReport {
        let running = self.running.load(Ordering::Relaxed) as u32;
        let queued = self.queued.load(Ordering::Relaxed) as u32;
        LoadReport {
            pes: self.pes as u32,
            running,
            queued,
            // The live server reports instantaneous runnable count as its
            // load proxy; the simulator computes the true damped average.
            load_average: (running + queued) as f64,
            cpu_utilization: 100.0 * running.min(self.pes as u32) as f64 / self.pes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(submit: f64, enqueue: f64, dequeue: f64, complete: f64) -> CallRecord {
        CallRecord {
            routine: "linpack".into(),
            n: Some(600),
            request_bytes: 100,
            reply_bytes: 50,
            t_submit: submit,
            t_enqueue: enqueue,
            t_dequeue: dequeue,
            t_complete: complete,
        }
    }

    #[test]
    fn derived_times_match_paper_definitions() {
        let r = record(1.0, 1.5, 3.0, 10.0);
        assert!((r.response() - 0.5).abs() < 1e-12);
        assert!((r.wait() - 1.5).abs() < 1e-12);
        assert!((r.service() - 7.0).abs() < 1e-12);
        assert!((r.total() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn lifecycle_counters() {
        let s = ServerStats::new(4);
        s.job_queued();
        s.job_queued();
        assert_eq!(s.load_report().queued, 2);
        s.job_started();
        let rep = s.load_report();
        assert_eq!(rep.queued, 1);
        assert_eq!(rep.running, 1);
        assert_eq!(rep.pes, 4);
        s.job_finished(record(0.0, 0.0, 0.0, 1.0));
        assert_eq!(s.load_report().running, 0);
        assert_eq!(s.completed(), 1);
    }

    #[test]
    fn utilization_caps_at_100() {
        let s = ServerStats::new(1);
        s.job_queued();
        s.job_started();
        s.job_queued();
        s.job_started();
        assert_eq!(s.load_report().cpu_utilization, 100.0);
    }

    #[test]
    fn clock_is_monotone() {
        let s = ServerStats::new(1);
        let a = s.now();
        let b = s.now();
        assert!(b >= a);
    }

    /// A long run stays memory-flat: the ring never retains more than its
    /// capacity, while the lifetime total keeps counting.
    #[test]
    fn record_history_is_bounded() {
        let cap = 8;
        let s = ServerStats::with_capacity(2, cap);
        for i in 0..10 * cap {
            s.job_queued();
            s.job_started();
            s.job_finished(record(i as f64, i as f64, i as f64, i as f64 + 1.0));
            assert!(s.retained() <= cap);
        }
        assert_eq!(s.completed(), 10 * cap);
        assert_eq!(s.retained(), cap);
        // The retained window is the most recent `cap` records.
        let snap = s.snapshot();
        assert_eq!(snap.len(), cap);
        assert_eq!(snap[0].t_submit, (10 * cap - cap) as f64);
        assert_eq!(snap[cap - 1].t_submit, (10 * cap - 1) as f64);
    }

    /// A cursor-driven incremental poller sees each record exactly once,
    /// even when eviction removes records between polls.
    #[test]
    fn incremental_queries_are_exactly_once_across_eviction() {
        let cap = 4;
        let s = ServerStats::with_capacity(1, cap);
        let mut cursor = 0u64;
        let mut seen = Vec::new();
        let push = |s: &ServerStats, i: usize| {
            s.job_queued();
            s.job_started();
            s.job_finished(record(i as f64, i as f64, i as f64, i as f64));
        };
        // Poll faster than eviction: nothing lost, nothing duplicated.
        for i in 0..6 {
            push(&s, i);
            if i % 2 == 1 {
                let (_, total, batch) = s.snapshot_since(cursor);
                seen.extend(batch.iter().map(|r| r.t_submit as usize));
                cursor = total;
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);

        // Now fall behind: 10 more records through a 4-slot ring evicts the
        // middle. The poller gets only the retained tail — no duplicates,
        // and the total accounts for the evicted gap.
        for i in 6..16 {
            push(&s, i);
        }
        let (_, total, batch) = s.snapshot_since(cursor);
        assert_eq!(total, 16);
        let tail: Vec<usize> = batch.iter().map(|r| r.t_submit as usize).collect();
        assert_eq!(tail, vec![12, 13, 14, 15]);
        cursor = total;
        // Fully drained: the same cursor now yields an empty, stable reply.
        let (_, total, batch) = s.snapshot_since(cursor);
        assert_eq!(total, 16);
        assert!(batch.is_empty());
        // A stale cursor (before the window) is clamped, not wrapped.
        let (_, _, batch) = s.snapshot_since(0);
        assert_eq!(batch.len(), cap);
    }
}
