//! Per-call measurement records: the timestamps and derived metrics of §4.1.
//!
//! "for each client Ninf_call task, we measured the throughput and various
//! timings: time of task submission T_submit, time when the Ninf_call task
//! was accepted at the server T_enqueue, time when the corresponding Ninf
//! executable was invoked T_dequeue, and the time at which Ninf_call was
//! completed T_complete." — with `T_response = T_enqueue − T_submit` and
//! `T_wait = T_dequeue − T_enqueue`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use ninf_protocol::{CallStat, LoadReport};

/// One completed `Ninf_call` as observed by the server.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Routine name.
    pub routine: String,
    /// First scalar input (the matrix order `n` / EP exponent `m`), for
    /// grouping results into table rows.
    pub n: Option<i64>,
    /// Request payload bytes (arrays only, per the paper's convention).
    pub request_bytes: usize,
    /// Reply payload bytes.
    pub reply_bytes: usize,
    /// Seconds since server start at each lifecycle point.
    pub t_submit: f64,
    /// See above.
    pub t_enqueue: f64,
    /// See above.
    pub t_dequeue: f64,
    /// See above.
    pub t_complete: f64,
}

impl CallRecord {
    /// `T_response = T_enqueue − T_submit`.
    pub fn response(&self) -> f64 {
        self.t_enqueue - self.t_submit
    }

    /// `T_wait = T_dequeue − T_enqueue`.
    pub fn wait(&self) -> f64 {
        self.t_dequeue - self.t_enqueue
    }

    /// Pure service time (execution).
    pub fn service(&self) -> f64 {
        self.t_complete - self.t_dequeue
    }

    /// End-to-end server-side time.
    pub fn total(&self) -> f64 {
        self.t_complete - self.t_submit
    }

    /// The wire form of this record (for [`ninf_protocol::Message::StatsReply`]).
    pub fn to_wire(&self) -> CallStat {
        CallStat {
            routine: self.routine.clone(),
            n: self.n,
            request_bytes: self.request_bytes as u64,
            reply_bytes: self.reply_bytes as u64,
            t_submit: self.t_submit,
            t_enqueue: self.t_enqueue,
            t_dequeue: self.t_dequeue,
            t_complete: self.t_complete,
        }
    }
}

/// Shared, thread-safe statistics sink of a live server.
#[derive(Debug)]
pub struct ServerStats {
    start: Instant,
    records: Mutex<Vec<CallRecord>>,
    running: AtomicUsize,
    queued: AtomicUsize,
    pes: usize,
}

impl ServerStats {
    /// New sink for a machine with `pes` PEs; the clock starts now.
    pub fn new(pes: usize) -> Self {
        Self {
            start: Instant::now(),
            records: Mutex::new(Vec::new()),
            running: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            pes,
        }
    }

    /// Seconds since server start.
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Mark a job queued (between enqueue and dequeue).
    pub fn job_queued(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a job moved from queue to execution.
    pub fn job_started(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.running.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a job finished and store its record.
    pub fn job_finished(&self, record: CallRecord) {
        self.running.fetch_sub(1, Ordering::Relaxed);
        self.records.lock().push(record);
    }

    /// Copy of all records so far.
    pub fn snapshot(&self) -> Vec<CallRecord> {
        self.records.lock().clone()
    }

    /// Incremental wire snapshot for a stats query: records from index
    /// `since` onward (clamped), the total count, and the server clock now —
    /// so a polling harness ships only new history on each probe.
    pub fn snapshot_since(&self, since: u64) -> (f64, u64, Vec<CallStat>) {
        let records = self.records.lock();
        let total = records.len();
        let from = (since as usize).min(total);
        let wire = records[from..].iter().map(CallRecord::to_wire).collect();
        (self.now(), total as u64, wire)
    }

    /// Number of completed calls.
    pub fn completed(&self) -> usize {
        self.records.lock().len()
    }

    /// Current load report for the metaserver.
    pub fn load_report(&self) -> LoadReport {
        let running = self.running.load(Ordering::Relaxed) as u32;
        let queued = self.queued.load(Ordering::Relaxed) as u32;
        LoadReport {
            pes: self.pes as u32,
            running,
            queued,
            // The live server reports instantaneous runnable count as its
            // load proxy; the simulator computes the true damped average.
            load_average: (running + queued) as f64,
            cpu_utilization: 100.0 * running.min(self.pes as u32) as f64 / self.pes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(submit: f64, enqueue: f64, dequeue: f64, complete: f64) -> CallRecord {
        CallRecord {
            routine: "linpack".into(),
            n: Some(600),
            request_bytes: 100,
            reply_bytes: 50,
            t_submit: submit,
            t_enqueue: enqueue,
            t_dequeue: dequeue,
            t_complete: complete,
        }
    }

    #[test]
    fn derived_times_match_paper_definitions() {
        let r = record(1.0, 1.5, 3.0, 10.0);
        assert!((r.response() - 0.5).abs() < 1e-12);
        assert!((r.wait() - 1.5).abs() < 1e-12);
        assert!((r.service() - 7.0).abs() < 1e-12);
        assert!((r.total() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn lifecycle_counters() {
        let s = ServerStats::new(4);
        s.job_queued();
        s.job_queued();
        assert_eq!(s.load_report().queued, 2);
        s.job_started();
        let rep = s.load_report();
        assert_eq!(rep.queued, 1);
        assert_eq!(rep.running, 1);
        assert_eq!(rep.pes, 4);
        s.job_finished(record(0.0, 0.0, 0.0, 1.0));
        assert_eq!(s.load_report().running, 0);
        assert_eq!(s.completed(), 1);
    }

    #[test]
    fn utilization_caps_at_100() {
        let s = ServerStats::new(1);
        s.job_queued();
        s.job_started();
        s.job_queued();
        s.job_started();
        assert_eq!(s.load_report().cpu_utilization, 100.0);
    }

    #[test]
    fn clock_is_monotone() {
        let s = ServerStats::new(1);
        let a = s.now();
        let b = s.now();
        assert!(b >= a);
    }
}
