//! Job admission policies.
//!
//! The production Ninf server of the paper runs FCFS ("merely fork & execs a
//! Ninf executable in a First-Come-First-Served (FCFS) manner, causing longer
//! response time and possibly lower CPU utilization", §5.2). The paper then
//! proposes SJF using predicted computation/communication time, and — for
//! multi-PE scheduling — Fit Processors First Served (FPFS) and Fit
//! Processors Most Processors First Served (FPMPFS) (§5.3, citing Aida et
//! al.). All four are implemented here, shared verbatim between the live
//! server and the discrete-event simulator so ablation A1/A3 exercises the
//! same code the real server runs.

/// Scheduling-relevant metadata of one queued job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobInfo {
    /// Monotone arrival sequence number (FCFS order).
    pub arrival_seq: u64,
    /// Predicted cost in seconds (from IDL sizes + server trace, §5.2). Only
    /// SJF consults it.
    pub estimated_cost: f64,
    /// PEs the job needs (1 for task-parallel calls, all for data-parallel).
    pub pes_required: usize,
}

/// Admission policy: given the queue (in arrival order) and the number of
/// free PEs, choose which job starts next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Strict arrival order; the head of the queue blocks everyone behind it
    /// until enough PEs free up.
    Fcfs,
    /// Shortest predicted job first, among jobs that fit the free PEs.
    Sjf,
    /// First job (in arrival order) that fits the free PEs.
    Fpfs,
    /// Among jobs that fit, the one requesting the most PEs; ties by arrival.
    Fpmpfs,
}

impl SchedPolicy {
    /// Index into `queue` of the job to start now, or `None` if no job may
    /// start (queue empty, or policy blocks).
    pub fn pick(&self, queue: &[JobInfo], free_pes: usize) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        match self {
            SchedPolicy::Fcfs => {
                if queue[0].pes_required <= free_pes {
                    Some(0)
                } else {
                    None
                }
            }
            SchedPolicy::Sjf => queue
                .iter()
                .enumerate()
                .filter(|(_, j)| j.pes_required <= free_pes)
                .min_by(|(_, a), (_, b)| {
                    a.estimated_cost
                        .total_cmp(&b.estimated_cost)
                        .then(a.arrival_seq.cmp(&b.arrival_seq))
                })
                .map(|(i, _)| i),
            SchedPolicy::Fpfs => queue.iter().position(|j| j.pes_required <= free_pes),
            SchedPolicy::Fpmpfs => queue
                .iter()
                .enumerate()
                .filter(|(_, j)| j.pes_required <= free_pes)
                .max_by(|(_, a), (_, b)| {
                    a.pes_required
                        .cmp(&b.pes_required)
                        .then(b.arrival_seq.cmp(&a.arrival_seq))
                })
                .map(|(i, _)| i),
        }
    }

    /// All policies, for exhaustive ablation sweeps.
    pub fn all() -> [SchedPolicy; 4] {
        [
            SchedPolicy::Fcfs,
            SchedPolicy::Sjf,
            SchedPolicy::Fpfs,
            SchedPolicy::Fpmpfs,
        ]
    }

    /// Display name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fcfs => "FCFS",
            SchedPolicy::Sjf => "SJF",
            SchedPolicy::Fpfs => "FPFS",
            SchedPolicy::Fpmpfs => "FPMPFS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64, cost: f64, pes: usize) -> JobInfo {
        JobInfo {
            arrival_seq: seq,
            estimated_cost: cost,
            pes_required: pes,
        }
    }

    #[test]
    fn empty_queue_picks_nothing() {
        for p in SchedPolicy::all() {
            assert_eq!(p.pick(&[], 4), None);
        }
    }

    #[test]
    fn fcfs_respects_arrival_order() {
        let q = [job(0, 9.0, 1), job(1, 1.0, 1)];
        assert_eq!(SchedPolicy::Fcfs.pick(&q, 4), Some(0));
    }

    #[test]
    fn fcfs_head_of_line_blocks() {
        // Head wants 4 PEs, only 2 free: FCFS starts nothing even though the
        // second job would fit.
        let q = [job(0, 1.0, 4), job(1, 1.0, 1)];
        assert_eq!(SchedPolicy::Fcfs.pick(&q, 2), None);
    }

    #[test]
    fn fpfs_skips_blocked_head() {
        let q = [job(0, 1.0, 4), job(1, 1.0, 1)];
        assert_eq!(SchedPolicy::Fpfs.pick(&q, 2), Some(1));
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        let q = [job(0, 9.0, 1), job(1, 1.0, 1), job(2, 5.0, 1)];
        assert_eq!(SchedPolicy::Sjf.pick(&q, 1), Some(1));
    }

    #[test]
    fn sjf_only_considers_fitting_jobs() {
        let q = [job(0, 1.0, 4), job(1, 5.0, 2)];
        assert_eq!(SchedPolicy::Sjf.pick(&q, 2), Some(1));
    }

    #[test]
    fn sjf_ties_break_by_arrival() {
        let q = [job(0, 2.0, 1), job(1, 2.0, 1)];
        assert_eq!(SchedPolicy::Sjf.pick(&q, 1), Some(0));
    }

    #[test]
    fn fpmpfs_prefers_wide_jobs() {
        let q = [job(0, 1.0, 1), job(1, 1.0, 3), job(2, 1.0, 2)];
        assert_eq!(SchedPolicy::Fpmpfs.pick(&q, 4), Some(1));
    }

    #[test]
    fn fpmpfs_ignores_oversized_jobs() {
        let q = [job(0, 1.0, 8), job(1, 1.0, 2)];
        assert_eq!(SchedPolicy::Fpmpfs.pick(&q, 4), Some(1));
    }

    #[test]
    fn fpmpfs_ties_break_by_arrival() {
        let q = [job(0, 1.0, 2), job(1, 1.0, 2)];
        assert_eq!(SchedPolicy::Fpmpfs.pick(&q, 4), Some(0));
    }

    #[test]
    fn no_policy_starts_oversized_job() {
        let q = [job(0, 1.0, 9)];
        for p in SchedPolicy::all() {
            assert_eq!(p.pick(&q, 4), None, "{}", p.name());
        }
    }
}
