//! The live TCP Ninf computational server.
//!
//! Two connection cores serve the same per-message protocol logic:
//!
//! * [`ServerCore::Reactor`] (default) — one event-loop thread owns every
//!   nonblocking socket and a bounded worker pool runs the handlers, so one
//!   ninfd sustains thousands of multiplexed client streams (the C10k path);
//! * [`ServerCore::ThreadPerConnection`] — the original accept-loop /
//!   thread-per-socket baseline, kept for A/B benchmarking.
//!
//! Either way, every call funnels through the [`JobGate`], so the
//! task-parallel/data-parallel tradeoff and the admission policy behave
//! exactly as in the paper's server.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ninf_obs::log::Level;
use ninf_obs::{logkv, recorder, Counter, Gauge, LogHistogram, MetricsRegistry};
use ninf_protocol::chunk::{ChunkError, Reassembly};
use ninf_protocol::{
    read_frame_mux, write_frame_mux, Arg, Digest, LinkShape, Message, ProtocolError,
    ProtocolResult, SharedLink, Span, TraceContext, Value, Wire, FRAME_HEADER_BYTES,
};
use ninf_reactor::{Handler, Reactor, ReactorConfig, ReactorHandle, ReactorHooks};

use crate::argstore::{ArgStore, DEFAULT_ARG_CACHE_BYTES};
use crate::exec::{ExecMode, JobGate};
use crate::policy::{JobInfo, SchedPolicy};
use crate::registry::{validate_invoke, Registry};
use crate::stats::{CallRecord, ServerStats};
use crate::trace::CostModel;
use crate::twophase::JobTable;

/// Which connection core owns the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// Event-driven core: a reactor thread plus `workers` handler threads.
    /// Invoke handlers block in the PE gate, so the effective pool is sized
    /// at least `pes + 4` to keep queries flowing under compute saturation.
    Reactor {
        /// Handler threads (floor; see above).
        workers: usize,
    },
    /// One detached thread per accepted connection (the pre-reactor
    /// baseline, kept for the connections-vs-throughput benchmark).
    ThreadPerConnection,
}

impl Default for ServerCore {
    fn default() -> Self {
        ServerCore::Reactor { workers: 8 }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of PEs the gate manages (the J90 has 4).
    pub pes: usize,
    /// Task-parallel vs data-parallel execution (§4.1).
    pub mode: ExecMode,
    /// Admission policy (§5.2–5.3); the paper's server runs FCFS.
    pub policy: SchedPolicy,
    /// Connection core (reactor by default).
    pub core: ServerCore,
    /// Resident-byte budget of the content-addressed argument store
    /// ([`crate::argstore::ArgStore`]); 0 disables server-side caching, so
    /// every `Arg::Ref` comes back as `NeedArg`.
    pub arg_cache_bytes: usize,
    /// Outbound WAN shape: replies pace through one process-wide
    /// [`SharedLink`] bottleneck plus propagation delay. Loss is
    /// deliberately *not* applied server-side — a vanished ack would be
    /// indistinguishable from a vanished chunk, so the lossy direction
    /// lives in the client's [`ninf_protocol::ShapedTransport`] wrapper.
    /// Honored by the thread-per-connection core only (the reactor's
    /// workers must not sleep); `ninfd --wan` enforces `--core threaded`.
    pub wan: Option<LinkShape>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            pes: 4,
            mode: ExecMode::TaskParallel,
            policy: SchedPolicy::Fcfs,
            core: ServerCore::default(),
            arg_cache_bytes: DEFAULT_ARG_CACHE_BYTES,
            wan: None,
        }
    }
}

/// Pre-resolved metric handles for the per-call hot path, backed by a
/// [`MetricsRegistry`] the process can expose over HTTP.
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    calls: Counter,
    errors: Counter,
    rejected_frames: Counter,
    latency: Arc<parking_lot::Mutex<LogHistogram>>,
    running: Gauge,
    queued: Gauge,
    open_connections: Gauge,
    inflight_calls: Gauge,
    argcache_hits: Counter,
    argcache_misses: Counter,
    argcache_evictions: Counter,
    argcache_bytes_saved: Counter,
    chunks: Counter,
    chunk_rejects: Counter,
    chunk_uploads: Counter,
    chunk_bytes: Counter,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let calls = registry.counter(
            "ninf_server_calls_total",
            "Ninf_call invocations completed (including errors)",
        );
        let errors = registry.counter(
            "ninf_server_errors_total",
            "Ninf_call invocations that returned an error",
        );
        let rejected_frames = registry.counter(
            "ninf_server_rejected_frames_total",
            "inbound frames rejected before decode (bad magic/version/checksum)",
        );
        let latency = registry.histogram(
            "ninf_server_call_seconds",
            "server-side Ninf_call time from submit to complete",
        );
        let running = registry.gauge("ninf_server_running", "calls executing now");
        let queued = registry.gauge("ninf_server_queued", "calls waiting for a PE");
        let open_connections = registry.gauge(
            "ninf_server_open_connections",
            "client connections currently open",
        );
        let inflight_calls = registry.gauge(
            "ninf_server_inflight_calls",
            "calls received but not yet replied to",
        );
        let argcache_hits = registry.counter(
            "ninf_server_argcache_hits_total",
            "argument refs resolved from the content-addressed store",
        );
        let argcache_misses = registry.counter(
            "ninf_server_argcache_misses_total",
            "argument refs the store could not resolve (NeedArg replies)",
        );
        let argcache_evictions = registry.counter(
            "ninf_server_argcache_evictions_total",
            "argument store entries evicted to stay within the byte budget",
        );
        let argcache_bytes_saved = registry.counter(
            "ninf_server_argcache_bytes_saved_total",
            "request payload bytes the client did not re-ship (resolved refs)",
        );
        let chunks = registry.counter(
            "ninf_server_chunks_total",
            "bulk-upload chunks accepted into a reassembly",
        );
        let chunk_rejects = registry.counter(
            "ninf_server_chunk_rejects_total",
            "bulk-upload chunks refused (bad CRC, geometry lie, conflict)",
        );
        let chunk_uploads = registry.counter(
            "ninf_server_chunk_uploads_total",
            "bulk uploads completed, digest-verified, and landed in the arg store",
        );
        let chunk_bytes = registry.counter(
            "ninf_server_chunk_bytes_total",
            "payload bytes accepted over the chunked bulk path",
        );
        Self {
            registry,
            calls,
            errors,
            rejected_frames,
            latency,
            running,
            queued,
            open_connections,
            inflight_calls,
            argcache_hits,
            argcache_misses,
            argcache_evictions,
            argcache_bytes_saved,
            chunks,
            chunk_rejects,
            chunk_uploads,
            chunk_bytes,
        }
    }

    /// The backing registry (serve it with `ninf_obs::http::serve_metrics`).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Argument-cache counters `(hits, misses, evictions, bytes_saved)` —
    /// the same values the Prometheus endpoint exposes, for tests and CLIs.
    pub fn argcache(&self) -> (u64, u64, u64, u64) {
        (
            self.argcache_hits.get(),
            self.argcache_misses.get(),
            self.argcache_evictions.get(),
            self.argcache_bytes_saved.get(),
        )
    }

    /// Chunked bulk-upload counters
    /// `(chunks, rejects, uploads_completed, bytes)`.
    pub fn chunked(&self) -> (u64, u64, u64, u64) {
        (
            self.chunks.get(),
            self.chunk_rejects.get(),
            self.chunk_uploads.get(),
            self.chunk_bytes.get(),
        )
    }
}

/// The shared per-call context both connection cores hand to the message
/// handler.
struct CallContext {
    registry: Arc<Registry>,
    stats: Arc<ServerStats>,
    gate: Arc<JobGate>,
    jobs: Arc<JobTable>,
    cost: Arc<CostModel>,
    metrics: Arc<ServerMetrics>,
    args: Arc<ArgStore>,
    mode: ExecMode,
    /// In-flight chunked bulk uploads, keyed by the target value's digest.
    /// Bounded at [`MAX_INFLIGHT_UPLOADS`]; completed uploads move into
    /// `args` and leave this table.
    chunks: parking_lot::Mutex<HashMap<Digest, Reassembly>>,
    /// Outbound reply shaping (threaded core only); see
    /// [`ServerConfig::wan`].
    wan: Option<Arc<SharedLink>>,
    /// Threaded-core bookkeeping behind the `ninf_server_inflight_calls`
    /// gauge (the reactor core tracks this in its event loop instead).
    threaded_inflight: AtomicI64,
}

/// The running connection core behind a [`NinfServer`].
enum CoreHandle {
    Reactor(Option<ReactorHandle>),
    Threaded {
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
    },
}

/// Handle to a running server. Prefer [`NinfServer::shutdown`]; dropping the
/// handle tears the reactor core down without a drain window (the threaded
/// core's detached connection threads outlive the handle either way).
pub struct NinfServer {
    addr: std::net::SocketAddr,
    stats: Arc<ServerStats>,
    gate: Arc<JobGate>,
    jobs: Arc<JobTable>,
    cost: Arc<CostModel>,
    metrics: Arc<ServerMetrics>,
    args: Arc<ArgStore>,
    core: CoreHandle,
}

impl NinfServer {
    /// Bind `addr` (use `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `registry` under `config`.
    pub fn start(addr: &str, registry: Registry, config: ServerConfig) -> ProtocolResult<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new(config.pes));
        let gate = Arc::new(JobGate::new(config.pes, config.policy));
        let jobs = Arc::new(JobTable::new());
        let cost = Arc::new(CostModel::new());
        let metrics = Arc::new(ServerMetrics::new());
        let args = Arc::new(ArgStore::new(config.arg_cache_bytes));
        if config.wan.is_some() && !matches!(config.core, ServerCore::ThreadPerConnection) {
            logkv!(
                Level::Warn,
                "server",
                "wan_shape_ignored",
                why = "reply shaping needs the thread-per-connection core"
            );
        }
        let ctx = Arc::new(CallContext {
            registry: Arc::new(registry),
            stats: stats.clone(),
            gate: gate.clone(),
            jobs: jobs.clone(),
            cost: cost.clone(),
            metrics: metrics.clone(),
            args: args.clone(),
            mode: config.mode,
            chunks: parking_lot::Mutex::new(HashMap::new()),
            wan: config.wan.map(|shape| Arc::new(SharedLink::new(shape))),
            threaded_inflight: AtomicI64::new(0),
        });

        let core = match config.core {
            ServerCore::Reactor { workers } => {
                let handler: Handler = {
                    let ctx = ctx.clone();
                    Arc::new(move |req: ninf_reactor::Request| {
                        Some(handle_message(&ctx, req.message))
                    })
                };
                let hooks = ReactorHooks {
                    open_connections: Some(metrics.open_connections.clone()),
                    inflight_calls: Some(metrics.inflight_calls.clone()),
                    rejected_frames: Some(metrics.rejected_frames.clone()),
                };
                let reactor_config = ReactorConfig {
                    // Invoke handlers block in the gate; keep headroom so
                    // load/stats queries are served while PEs are saturated.
                    workers: workers.max(config.pes + 4),
                    ..ReactorConfig::default()
                };
                let handle = Reactor::start(listener, reactor_config, handler, hooks)?;
                CoreHandle::Reactor(Some(handle))
            }
            ServerCore::ThreadPerConnection => {
                let stop = Arc::new(AtomicBool::new(false));
                let accept_thread = {
                    let ctx = ctx.clone();
                    let stop = stop.clone();
                    let open = Arc::new(AtomicI64::new(0));
                    std::thread::spawn(move || {
                        for stream in listener.incoming() {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = stream else { continue };
                            let ctx = ctx.clone();
                            let open = open.clone();
                            // Connection threads are detached: a client that
                            // keeps its connection open (normal for Ninf RPC,
                            // §5.1) must not block shutdown. The thread exits
                            // when its peer hangs up.
                            std::thread::spawn(move || {
                                let n = open.fetch_add(1, Ordering::SeqCst) + 1;
                                ctx.metrics.open_connections.set(n as f64);
                                let _ = serve_connection(stream, &ctx);
                                let n = open.fetch_sub(1, Ordering::SeqCst) - 1;
                                ctx.metrics.open_connections.set(n as f64);
                            });
                        }
                    })
                };
                CoreHandle::Threaded {
                    stop,
                    accept_thread: Some(accept_thread),
                }
            }
        };

        Ok(Self {
            addr: local,
            stats,
            gate,
            jobs,
            cost,
            metrics,
            args,
            core,
        })
    }

    /// The bound address (connect clients here).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Statistics sink.
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// PEs currently executing calls.
    pub fn busy_pes(&self) -> usize {
        self.gate.busy_pes()
    }

    /// The two-phase job table (observable in tests).
    pub fn jobs(&self) -> &Arc<JobTable> {
        &self.jobs
    }

    /// The execution-trace cost model feeding SJF predictions (§5.2).
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Per-process metric handles (counters, gauges, latency summary).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The content-addressed argument store (tests force evictions here).
    pub fn arg_store(&self) -> &Arc<ArgStore> {
        &self.args
    }

    /// Stop accepting and join the accept thread, draining briefly (2 s) so
    /// in-flight calls finish instead of being cut off mid-reply.
    pub fn shutdown(self) {
        self.shutdown_with_drain(std::time::Duration::from_secs(2));
    }

    /// Graceful shutdown: stop accepting new connections, then wait up to
    /// `drain` for in-flight calls to finish before returning. Returns
    /// `true` if the server drained fully, `false` if work was still running
    /// when the window closed. Nothing is torn down mid-execution either
    /// way — the reactor core serves out dispatched calls before its sockets
    /// close, and the threaded core's detached connection threads keep going
    /// until their clients hang up — but the caller knows whether the fleet
    /// was quiesced in time.
    pub fn shutdown_with_drain(mut self, drain: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + drain;
        match &mut self.core {
            CoreHandle::Reactor(handle) => {
                let handle = handle.take().expect("reactor core running");
                handle.stop_accepting();
                let drained = loop {
                    if self.gate.busy_pes() == 0 && self.metrics.inflight_calls.get() == 0.0 {
                        break true;
                    }
                    if std::time::Instant::now() >= deadline {
                        break false;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                };
                handle.shutdown();
                drained
            }
            CoreHandle::Threaded {
                stop,
                accept_thread,
            } => {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept() call.
                let _ = TcpStream::connect(self.addr);
                if let Some(t) = accept_thread.take() {
                    let _ = t.join();
                }
                while self.gate.busy_pes() > 0 {
                    if std::time::Instant::now() >= deadline {
                        return false;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                true
            }
        }
    }
}

/// Serve one client connection until it closes (thread-per-connection
/// core). Mux-aware: each request frame's call id is echoed on its reply,
/// so multiplexed clients work against the baseline too — though replies
/// are produced in request order, one at a time.
fn serve_connection(stream: TcpStream, ctx: &Arc<CallContext>) -> ProtocolResult<()> {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".into());
    logkv!(Level::Debug, "server", "accept", peer = peer);
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let (call_id, msg) = match read_frame_mux(&mut reader) {
            Ok(x) => x,
            // Normal client hang-up between calls.
            Err(ProtocolError::Io(_)) | Err(ProtocolError::Disconnected) => return Ok(()),
            // Anything else means the wire carried a frame this server
            // must not act on — bad magic, wrong version, checksum
            // mismatch, malformed payload. Count it, say why, and tear
            // the connection down: the stream is desynchronized.
            Err(e) => {
                ctx.metrics.rejected_frames.inc();
                logkv!(
                    Level::Warn,
                    "server",
                    "frame_rejected",
                    peer = peer,
                    why = e
                );
                return Err(e);
            }
        };
        let n = ctx.threaded_inflight.fetch_add(1, Ordering::SeqCst) + 1;
        ctx.metrics.inflight_calls.set(n as f64);
        let reply = handle_message(ctx, msg);
        let n = ctx.threaded_inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        ctx.metrics.inflight_calls.set(n as f64);
        // Outbound WAN shaping: the reply serializes through the
        // process-wide bottleneck and crosses the propagation delay
        // before it goes on the wire (lossless — see ServerConfig::wan).
        if let Some(link) = &ctx.wan {
            link.transmit(FRAME_HEADER_BYTES + 4 + reply.encode().len());
            let delay = link.shape().delay_us;
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_micros(delay));
            }
        }
        write_frame_mux(&mut writer, call_id, &reply)?;
        writer.flush()?;
    }
}

/// The protocol state machine, shared by both connection cores: one request
/// message in, one reply message out. Every message kind replies exactly
/// once; SubmitJob's compute runs detached after its ticket is returned.
fn handle_message(ctx: &Arc<CallContext>, msg: Message) -> Message {
    match msg {
        Message::QueryInterface { routine } => match ctx.registry.lookup(&routine) {
            Some(exe) => Message::InterfaceReply {
                interface: exe.interface.clone(),
            },
            None => {
                logkv!(Level::Warn, "server", "unknown_routine", routine = routine);
                Message::Error {
                    reason: format!("unknown routine `{routine}`"),
                }
            }
        },
        Message::Invoke {
            routine,
            args,
            trace,
        } => {
            let t_submit = ctx.stats.now();
            logkv!(
                Level::Info,
                "server",
                "invoke",
                routine = routine,
                args = args.len()
            );
            // Refs resolve against the arg store *before* anything runs: a
            // miss replies NeedArg without touching the gate or the
            // handler, so the client's re-send cannot double-execute.
            let args = match resolve_args(ctx, args) {
                Ok(values) => values,
                Err(digests) => return Message::NeedArg { digests },
            };
            let reply = execute_invoke(
                &routine,
                &args,
                &ctx.registry,
                &ctx.stats,
                &ctx.gate,
                &ctx.cost,
                ctx.mode,
                t_submit,
                trace,
                &ctx.metrics,
            );
            // The reply leg gets its own span, a sibling of the invoke span
            // under the caller's rpc position, stamped as the reply is
            // handed to the connection core.
            if let Some(parent) = trace.filter(|_| recorder::global().enabled()) {
                let start = ninf_obs::now_us();
                recorder::global().record(Span::at(parent.child(), "reply", "server", start));
            }
            reply
        }
        Message::SubmitJob {
            routine,
            args,
            trace,
        } => {
            // Two-phase, phase 1 (§5.1): ticket now, compute detached —
            // the client may disconnect immediately. Refs resolve before
            // the ticket exists, so a store miss is a NeedArg, not a job
            // that can never run.
            let args = match resolve_args(ctx, args) {
                Ok(values) => values,
                Err(digests) => return Message::NeedArg { digests },
            };
            let ticket = ctx.jobs.submit();
            logkv!(
                Level::Info,
                "server",
                "submit_job",
                routine = routine,
                job = ticket
            );
            let ctx = ctx.clone();
            std::thread::spawn(move || {
                let t_submit = ctx.stats.now();
                let reply = execute_invoke(
                    &routine,
                    &args,
                    &ctx.registry,
                    &ctx.stats,
                    &ctx.gate,
                    &ctx.cost,
                    ctx.mode,
                    t_submit,
                    trace,
                    &ctx.metrics,
                );
                let outcome = match reply {
                    Message::ResultData { results } => Ok(results),
                    Message::Error { reason } => Err(reason),
                    other => Err(format!("internal: unexpected {}", other.kind())),
                };
                ctx.jobs.complete(ticket, outcome);
            });
            Message::JobTicket { job: ticket }
        }
        Message::PollJob { job } => Message::JobStatus {
            job,
            state: ctx.jobs.poll(job),
        },
        Message::FetchResult { job, trace } => {
            // The fetch leg joins the submit's trace tree instead of being
            // an orphan: one span under the caller's rpc position.
            if let Some(parent) = trace.filter(|_| recorder::global().enabled()) {
                let start = ninf_obs::now_us();
                recorder::global().record(Span::at(parent.child(), "fetch", "server", start));
            }
            match ctx.jobs.fetch(job) {
                Some(Ok(results)) => Message::ResultData { results },
                Some(Err(reason)) => Message::Error { reason },
                None => Message::Error {
                    reason: format!("job {job} is not ready (or unknown)"),
                },
            }
        }
        Message::QueryLoad => Message::LoadStatus(ctx.stats.load_report()),
        Message::QueryStats { since } => {
            let (now, total, records) = ctx.stats.snapshot_since(since);
            Message::StatsReply {
                now,
                total,
                records,
            }
        }
        Message::QueryMetrics { since } => {
            // Window-series drain: per-interval metric deltas from the
            // bounded ring, incremental from the caller's cursor. Disarmed
            // registries answer interval 0 / no frames — "telemetry off",
            // distinguishable from "armed but idle".
            let s = ctx.metrics.registry().snapshot_windows(since);
            Message::MetricsReply {
                process: "server".into(),
                now: s.now,
                interval: s.interval,
                total: s.total,
                dropped: s.dropped,
                frames: s.frames,
            }
        }
        Message::QueryTrace { trace_id } => {
            // Flight-recorder drain: the spans this process recorded for
            // `trace_id` (0 = everything retained), joined client-side
            // into one cross-process call tree.
            let rec = recorder::global();
            Message::TraceReply {
                process: "server".into(),
                dropped: rec.dropped(),
                spans: rec.snapshot(trace_id),
            }
        }
        Message::PutArgChunk {
            digest,
            total_bytes,
            total,
            seq,
            crc,
            bytes,
        } => handle_chunk(ctx, digest, total_bytes, total, seq, crc, &bytes),
        Message::ListRoutines => {
            let routines = ctx
                .registry
                .names()
                .into_iter()
                .map(|n| {
                    let doc = ctx
                        .registry
                        .lookup(n)
                        .map(|e| e.interface.doc.clone())
                        .unwrap_or_default();
                    (n.to_owned(), doc)
                })
                .collect();
            Message::RoutineList { routines }
        }
        other => Message::Error {
            reason: format!("unexpected message {}", other.kind()),
        },
    }
}

/// Cap on concurrently reassembling bulk uploads; a fresh digest beyond
/// it is refused so hostile clients cannot pin unbounded buffers.
const MAX_INFLIGHT_UPLOADS: usize = 64;

/// One [`Message::PutArgChunk`] through the reassembly table.
///
/// Retransmit-friendly without ever accepting conflicting bytes:
/// * a chunk for a digest the arg store already holds re-acks — the
///   whole upload completed earlier but its final ack was lost;
/// * a duplicate seq whose CRC matches what already landed re-acks —
///   the *chunk's* ack was lost;
/// * a duplicate seq with a *different* CRC, a bad CRC, or any geometry
///   lie is refused with a typed reason and counted.
fn handle_chunk(
    ctx: &CallContext,
    digest: Digest,
    total_bytes: u64,
    total: u32,
    seq: u32,
    crc: u32,
    bytes: &[u8],
) -> Message {
    if ctx.args.budget() == 0 {
        ctx.metrics.chunk_rejects.inc();
        return Message::Error {
            reason: "argument store disabled: chunked upload refused".into(),
        };
    }
    if ctx.args.contains(&digest) {
        return Message::ChunkOk { digest, seq };
    }
    let mut pending = ctx.chunks.lock();
    if !pending.contains_key(&digest) {
        if pending.len() >= MAX_INFLIGHT_UPLOADS {
            ctx.metrics.chunk_rejects.inc();
            return Message::Error {
                reason: format!("too many in-flight uploads ({MAX_INFLIGHT_UPLOADS})"),
            };
        }
        match Reassembly::new(digest, total_bytes, total) {
            Ok(r) => {
                pending.insert(digest, r);
            }
            Err(e) => {
                ctx.metrics.chunk_rejects.inc();
                return Message::Error {
                    reason: format!("chunk rejected: {e}"),
                };
            }
        }
    }
    let r = pending.get_mut(&digest).expect("just ensured present");
    match r.accept(total_bytes, total, seq, crc, bytes) {
        Ok(complete) => {
            ctx.metrics.chunks.inc();
            ctx.metrics.chunk_bytes.add(bytes.len() as u64);
            if complete {
                let r = pending.remove(&digest).expect("present");
                drop(pending);
                if let Err(reason) = finish_upload(ctx, digest, r) {
                    ctx.metrics.chunk_rejects.inc();
                    return Message::Error { reason };
                }
            }
            Message::ChunkOk { digest, seq }
        }
        Err(ChunkError::Duplicate { .. }) if r.seen_crc(seq) == Some(crc) => {
            Message::ChunkOk { digest, seq }
        }
        Err(e) => {
            ctx.metrics.chunk_rejects.inc();
            logkv!(Level::Warn, "server", "chunk_rejected", seq = seq, why = e);
            Message::Error {
                reason: format!("chunk rejected: {e}"),
            }
        }
    }
}

/// A completed reassembly: verify the image digest, decode the value,
/// and land it in the arg store under the digest a later `Arg::Ref`
/// will name.
fn finish_upload(ctx: &CallContext, digest: Digest, r: Reassembly) -> Result<(), String> {
    let image = r.into_image().map_err(|e| format!("upload failed: {e}"))?;
    let mut dec = ninf_xdr::XdrDecoder::new(&image);
    let value = Value::get(&mut dec).map_err(|e| format!("upload image does not decode: {e}"))?;
    if dec.remaining() != 0 {
        return Err("upload image has trailing bytes".into());
    }
    let evicted = ctx.args.insert(digest, value);
    ctx.metrics.argcache_evictions.add(evicted as u64);
    ctx.metrics.chunk_uploads.inc();
    logkv!(
        Level::Info,
        "server",
        "chunk_upload_complete",
        digest = digest,
        bytes = image.len()
    );
    Ok(())
}

/// Resolve wire args to concrete values against the arg store.
///
/// Inline values come through as-is — and cache-worthy ones (large flat
/// arrays) are captured into the store, since the client will start
/// ref'ing them once the call succeeds. Refs are looked up; if *any* is
/// missing the whole call fails closed with the missing digests and no
/// hit/bytes-saved accounting, because the client will re-ship everything
/// inline anyway.
fn resolve_args(ctx: &CallContext, args: Vec<Arg>) -> Result<Vec<Value>, Vec<Digest>> {
    let mut out = Vec::with_capacity(args.len());
    let mut missing = Vec::new();
    let mut hits = 0u64;
    let mut bytes_saved = 0u64;
    for arg in args {
        match arg {
            Arg::Data(v) => {
                if ninf_protocol::cacheable(&v) && ctx.args.budget() > 0 {
                    let evicted = ctx.args.insert(ninf_protocol::digest_value(&v), v.clone());
                    ctx.metrics.argcache_evictions.add(evicted as u64);
                }
                out.push(v);
            }
            Arg::Ref(d) => match ctx.args.get(&d) {
                Some(v) => {
                    hits += 1;
                    bytes_saved += v.wire_bytes() as u64;
                    out.push(v);
                }
                None => missing.push(d),
            },
        }
    }
    if !missing.is_empty() {
        ctx.metrics.argcache_misses.add(missing.len() as u64);
        logkv!(
            Level::Info,
            "server",
            "argcache_miss",
            missing = missing.len()
        );
        return Err(missing);
    }
    ctx.metrics.argcache_hits.add(hits);
    ctx.metrics.argcache_bytes_saved.add(bytes_saved);
    Ok(out)
}

#[allow(clippy::too_many_arguments)] // the call context really has this many parts
fn execute_invoke(
    routine: &str,
    args: &[ninf_protocol::Value],
    registry: &Registry,
    stats: &ServerStats,
    gate: &JobGate,
    cost: &CostModel,
    mode: ExecMode,
    t_submit: f64,
    trace: Option<TraceContext>,
    metrics: &ServerMetrics,
) -> Message {
    // The caller's rpc span is the parent; this invoke gets its own span with
    // queue_wait and exec nested inside it.
    let ctx = trace
        .filter(|_| recorder::global().enabled())
        .map(|parent| parent.child());
    let entry_us = ctx.map(|_| ninf_obs::now_us());
    let Some(exe) = registry.lookup(routine) else {
        metrics.calls.inc();
        metrics.errors.inc();
        return Message::Error {
            reason: format!("unknown routine `{routine}`"),
        };
    };
    let layout = match validate_invoke(&exe.interface, args) {
        Ok(l) => l,
        Err(reason) => {
            metrics.calls.inc();
            metrics.errors.inc();
            logkv!(
                Level::Warn,
                "server",
                "invoke_rejected",
                routine = routine,
                reason = reason
            );
            return Message::Error { reason };
        }
    };
    let request_bytes: usize = layout
        .iter()
        .filter(|l| l.mode.sends() && l.count > 1)
        .map(|l| l.bytes)
        .sum();
    let reply_bytes: usize = layout
        .iter()
        .filter(|l| l.mode.receives() && l.count > 1)
        .map(|l| l.bytes)
        .sum();
    let n = args.first().and_then(|v| v.as_scalar_i64());

    let t_enqueue = stats.now();
    stats.job_queued();
    // SJF's cost estimate (§5.2): the execution trace's power-law fit when
    // available, else the IDL-derived data volume as a first-call proxy.
    let estimated_cost = n
        .and_then(|n| cost.predict(routine, n))
        .unwrap_or((request_bytes + reply_bytes) as f64 * 1e-9);
    let enqueue_us = ctx.map(|_| ninf_obs::now_us());
    let guard = gate.acquire(JobInfo {
        arrival_seq: 0, // assigned by the gate
        estimated_cost,
        pes_required: mode.pes_per_call(gate.pes()),
    });
    let t_dequeue = stats.now();
    stats.job_started();
    let dequeue_us = ctx.map(|_| ninf_obs::now_us());

    let result = (exe.handler)(args);
    let t_complete = stats.now();
    drop(guard);
    let complete_us = ctx.map(|_| ninf_obs::now_us());
    if let Some(n) = n {
        cost.record(routine, n, t_complete - t_dequeue);
    }

    stats.job_finished(CallRecord {
        routine: routine.to_owned(),
        n,
        request_bytes,
        reply_bytes,
        t_submit,
        t_enqueue,
        t_dequeue,
        t_complete,
    });
    metrics.calls.inc();
    if result.is_err() {
        metrics.errors.inc();
    }
    metrics.latency.lock().record(t_complete - t_submit);
    let load = stats.load_report();
    metrics.running.set(load.running as f64);
    metrics.queued.set(load.queued as f64);

    if let (Some(ctx), Some(entry), Some(enq), Some(deq), Some(done)) =
        (ctx, entry_us, enqueue_us, dequeue_us, complete_us)
    {
        let rec = recorder::global();
        let wait = ctx.child();
        rec.record(Span {
            trace_id: wait.trace_id,
            span_id: wait.span_id,
            parent_span_id: wait.parent_span_id,
            name: "queue_wait".into(),
            process: "server".into(),
            start_us: enq,
            dur_us: deq.saturating_sub(enq),
            detail: String::new(),
        });
        let exec = ctx.child();
        rec.record(Span {
            trace_id: exec.trace_id,
            span_id: exec.span_id,
            parent_span_id: exec.parent_span_id,
            name: "exec".into(),
            process: "server".into(),
            start_us: deq,
            dur_us: done.saturating_sub(deq),
            detail: match n {
                Some(n) => format!("routine={routine} n={n}"),
                None => format!("routine={routine}"),
            },
        });
        rec.record(Span {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: ctx.parent_span_id,
            name: "invoke".into(),
            process: "server".into(),
            start_us: entry,
            dur_us: done.saturating_sub(entry),
            detail: format!("routine={routine} ok={}", result.is_ok()),
        });
    }

    match result {
        Ok(results) => Message::ResultData { results },
        Err(reason) => {
            logkv!(
                Level::Warn,
                "server",
                "invoke_failed",
                routine = routine,
                reason = reason
            );
            Message::Error { reason }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::register_stdlib;
    use ninf_protocol::{TcpTransport, Transport, Value};

    fn start_test_server_on(mode: ExecMode, core: ServerCore) -> NinfServer {
        let mut registry = Registry::new();
        register_stdlib(&mut registry, matches!(mode, ExecMode::DataParallel));
        NinfServer::start(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                pes: 2,
                mode,
                policy: SchedPolicy::Fcfs,
                core,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    fn start_test_server(mode: ExecMode) -> NinfServer {
        start_test_server_on(mode, ServerCore::default())
    }

    fn raw_call(addr: &str, routine: &str, args: Vec<Value>) -> Message {
        let mut t = TcpTransport::connect(addr).unwrap();
        t.send(&Message::QueryInterface {
            routine: routine.into(),
        })
        .unwrap();
        match t.recv().unwrap() {
            Message::InterfaceReply { .. } => {}
            other => return other,
        }
        t.send(&Message::Invoke {
            routine: routine.into(),
            args: Arg::inline(args),
            trace: None,
        })
        .unwrap();
        t.recv().unwrap()
    }

    #[test]
    fn serves_two_stage_call() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let n = 8usize;
        let (a, b) = ninf_exec::matgen(n);
        let reply = raw_call(
            &addr,
            "linpack",
            vec![
                Value::Int(n as i32),
                Value::DoubleArray(a.as_slice().to_vec()),
                Value::DoubleArray(b),
            ],
        );
        match reply {
            Message::ResultData { results } => {
                let Value::DoubleArray(x) = &results[0] else {
                    panic!()
                };
                for xi in x {
                    assert!((xi - 1.0).abs() < 1e-8);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().completed(), 1);
        let rec = &server.stats().snapshot()[0];
        assert_eq!(rec.routine, "linpack");
        assert_eq!(rec.n, Some(8));
        assert!(rec.t_complete >= rec.t_dequeue);
        server.shutdown();
    }

    #[test]
    fn unknown_routine_yields_error() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let mut t = TcpTransport::connect(&addr).unwrap();
        t.send(&Message::QueryInterface {
            routine: "fft".into(),
        })
        .unwrap();
        match t.recv().unwrap() {
            Message::Error { reason } => assert!(reason.contains("unknown routine")),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn invalid_args_yield_error_not_crash() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let reply = raw_call(
            &addr,
            "linpack",
            vec![
                Value::Int(4),
                Value::DoubleArray(vec![0.0; 3]),
                Value::DoubleArray(vec![0.0; 4]),
            ],
        );
        assert!(matches!(reply, Message::Error { .. }));
        // Server still alive for the next call.
        let reply = raw_call(&addr, "ep", vec![Value::Int(8)]);
        assert!(matches!(reply, Message::ResultData { .. }));
        server.shutdown();
    }

    #[test]
    fn load_query_reports_pes() {
        let server = start_test_server(ExecMode::TaskParallel);
        let mut t = TcpTransport::connect(&server.addr().to_string()).unwrap();
        t.send(&Message::QueryLoad).unwrap();
        match t.recv().unwrap() {
            Message::LoadStatus(rep) => assert_eq!(rep.pes, 2),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stats_query_returns_call_timelines_incrementally() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        for m in [8, 9] {
            let reply = raw_call(&addr, "ep", vec![Value::Int(m)]);
            assert!(matches!(reply, Message::ResultData { .. }));
        }
        let mut t = TcpTransport::connect(&addr).unwrap();
        t.send(&Message::QueryStats { since: 0 }).unwrap();
        let (now, total, records) = match t.recv().unwrap() {
            Message::StatsReply {
                now,
                total,
                records,
            } => (now, total, records),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(total, 2);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.routine, "ep");
            assert!(r.t_submit <= r.t_enqueue);
            assert!(r.t_enqueue <= r.t_dequeue);
            assert!(r.t_dequeue <= r.t_complete);
            assert!(r.t_complete <= now);
            assert!(r.wait() >= 0.0 && r.response() >= 0.0);
        }
        // Incremental poll: everything before `since` is elided.
        t.send(&Message::QueryStats { since: 1 }).unwrap();
        match t.recv().unwrap() {
            Message::StatsReply { total, records, .. } => {
                assert_eq!(total, 2);
                assert_eq!(records.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A `since` past the end yields an empty, well-formed reply.
        t.send(&Message::QueryStats { since: 99 }).unwrap();
        match t.recv().unwrap() {
            Message::StatsReply { total, records, .. } => {
                assert_eq!(total, 2);
                assert!(records.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn metrics_query_serves_window_series_over_the_wire() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();

        // Disarmed: the reply is the typed "telemetry off" shape.
        let mut t = TcpTransport::connect(&addr).unwrap();
        t.send(&Message::QueryMetrics { since: 0 }).unwrap();
        match t.recv().unwrap() {
            Message::MetricsReply {
                process,
                interval,
                total,
                frames,
                ..
            } => {
                assert_eq!(process, "server");
                assert_eq!(interval, 0.0);
                assert_eq!(total, 0);
                assert!(frames.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }

        // Armed: calls land in window deltas drained incrementally.
        let registry = server.metrics().registry().clone();
        registry.arm_windows(std::time::Duration::from_millis(100));
        let reply = raw_call(&addr, "ep", vec![Value::Int(8)]);
        assert!(matches!(reply, Message::ResultData { .. }));
        registry.capture_window();
        t.send(&Message::QueryMetrics { since: 0 }).unwrap();
        let frames = match t.recv().unwrap() {
            Message::MetricsReply {
                interval,
                total,
                dropped,
                frames,
                ..
            } => {
                assert!((interval - 0.1).abs() < 1e-9);
                assert_eq!(total, 1);
                assert_eq!(dropped, 0);
                frames
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(frames.len(), 1);
        let calls = frames[0]
            .samples
            .iter()
            .find(|s| s.name == "ninf_server_calls_total")
            .expect("calls counter sampled");
        assert_eq!(calls.count, 1);
        // Cursor advanced past the end: well-formed empty reply.
        t.send(&Message::QueryMetrics { since: 1 }).unwrap();
        match t.recv().unwrap() {
            Message::MetricsReply { total, frames, .. } => {
                assert_eq!(total, 1);
                assert!(frames.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_succeed() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for _ in 0..6 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let reply = raw_call(&addr, "ep", vec![Value::Int(10)]);
                assert!(matches!(reply, Message::ResultData { .. }));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().completed(), 6);
        server.shutdown();
    }

    #[test]
    fn data_parallel_mode_also_serves() {
        let server = start_test_server(ExecMode::DataParallel);
        let addr = server.addr().to_string();
        let reply = raw_call(&addr, "ep", vec![Value::Int(10)]);
        assert!(matches!(reply, Message::ResultData { .. }));
        server.shutdown();
    }

    #[test]
    fn thread_per_connection_baseline_still_serves() {
        let server = start_test_server_on(ExecMode::TaskParallel, ServerCore::ThreadPerConnection);
        let addr = server.addr().to_string();
        let reply = raw_call(&addr, "ep", vec![Value::Int(10)]);
        assert!(matches!(reply, Message::ResultData { .. }));
        assert_eq!(server.stats().completed(), 1);
        server.shutdown();
    }

    #[test]
    fn reactor_core_exposes_connection_gauges() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let t = TcpTransport::connect(&addr).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.metrics().open_connections.get() < 1.0 {
            assert!(std::time::Instant::now() < deadline, "gauge never rose");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let text = server.metrics().registry().render_prometheus();
        assert!(text.contains("ninf_server_open_connections"), "{text}");
        assert!(text.contains("ninf_server_inflight_calls"), "{text}");
        drop(t);
        while server.metrics().open_connections.get() > 0.0 {
            assert!(std::time::Instant::now() < deadline, "gauge never fell");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        server.shutdown();
    }

    /// A server with one deliberately slow routine, for drain tests.
    fn start_slow_server(sleep_ms: u64) -> NinfServer {
        let mut registry = Registry::new();
        registry
            .register(
                r#"Define slow(mode_in int n, mode_out int m[1])
                   "sleeps, then echoes n",
                   Required "libslow.o"
                   Calls "C" slow(n, m);"#,
                Arc::new(move |args: &[Value]| {
                    std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                    let n = args[0].as_scalar_i64().unwrap() as i32;
                    Ok(vec![Value::IntArray(vec![n])])
                }),
            )
            .unwrap();
        NinfServer::start(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                pes: 2,
                mode: ExecMode::TaskParallel,
                policy: SchedPolicy::Fcfs,
                core: ServerCore::default(),
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    /// Spin until the server reports an executing call (bounded).
    fn await_busy(server: &NinfServer) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while server.busy_pes() == 0 {
            assert!(std::time::Instant::now() < deadline, "call never started");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    #[test]
    fn shutdown_drains_in_flight_call() {
        let server = start_slow_server(300);
        let addr = server.addr().to_string();
        let client = std::thread::spawn(move || raw_call(&addr, "slow", vec![Value::Int(7)]));
        await_busy(&server);
        // Drain must wait for the running call, then report a clean quiesce.
        assert!(server.shutdown_with_drain(std::time::Duration::from_secs(5)));
        match client.join().unwrap() {
            Message::ResultData { results } => {
                assert_eq!(results, vec![Value::IntArray(vec![7])]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shutdown_drain_window_reports_leftover_work() {
        let server = start_slow_server(800);
        let addr = server.addr().to_string();
        let client = std::thread::spawn(move || raw_call(&addr, "slow", vec![Value::Int(3)]));
        await_busy(&server);
        // A window shorter than the call: drain returns false, but the
        // detached connection thread still finishes the reply.
        assert!(!server.shutdown_with_drain(std::time::Duration::from_millis(50)));
        assert!(matches!(client.join().unwrap(), Message::ResultData { .. }));
    }

    #[test]
    fn arg_refs_resolve_from_the_store_and_misses_reply_need_arg() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let n = 16usize; // 8·16·16 = 2048-byte matrix: cacheable
        let (a, b) = ninf_exec::matgen(n);
        let matrix = Value::DoubleArray(a.as_slice().to_vec());
        let rhs = Value::DoubleArray(b.clone());
        let args = vec![Value::Int(n as i32), matrix.clone(), rhs.clone()];

        // Cold call ships everything inline; the matrix (≥ the cache
        // threshold) is captured, the 128-byte rhs is not.
        let reply = raw_call(&addr, "linpack", args);
        assert!(matches!(reply, Message::ResultData { .. }));
        assert_eq!(server.arg_store().len(), 1);
        let d = ninf_protocol::digest_value(&matrix);
        assert!(server.arg_store().contains(&d));

        // Warm call refs the matrix; the store resolves it.
        let mut t = TcpTransport::connect(&addr).unwrap();
        let warm = Message::Invoke {
            routine: "linpack".into(),
            args: vec![
                Arg::Data(Value::Int(n as i32)),
                Arg::Ref(d),
                Arg::Data(rhs.clone()),
            ],
            trace: None,
        };
        t.send(&warm).unwrap();
        assert!(matches!(t.recv().unwrap(), Message::ResultData { .. }));
        let (hits, misses, _, bytes_saved) = server.metrics().argcache();
        assert_eq!((hits, misses), (1, 0));
        assert_eq!(bytes_saved, (8 * n * n) as u64);

        // Evict everything: the same ref must come back as NeedArg naming
        // the digest, with nothing executed.
        let completed_before = server.stats().completed();
        server.arg_store().clear();
        t.send(&warm).unwrap();
        match t.recv().unwrap() {
            Message::NeedArg { digests } => assert_eq!(digests, vec![d]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().completed(), completed_before);
        let (_, misses, _, _) = server.metrics().argcache();
        assert_eq!(misses, 1);

        // The client's refill (all inline) then succeeds, exactly once.
        t.send(&Message::Invoke {
            routine: "linpack".into(),
            args: Arg::inline(vec![Value::Int(n as i32), matrix, rhs]),
            trace: None,
        })
        .unwrap();
        assert!(matches!(t.recv().unwrap(), Message::ResultData { .. }));
        assert_eq!(server.stats().completed(), completed_before + 1);
        server.shutdown();
    }

    #[test]
    fn zero_budget_server_always_replies_need_arg_to_refs() {
        let mut registry = Registry::new();
        register_stdlib(&mut registry, false);
        let server = NinfServer::start(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                pes: 2,
                arg_cache_bytes: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let n = 16usize;
        let (a, b) = ninf_exec::matgen(n);
        let matrix = Value::DoubleArray(a.as_slice().to_vec());
        let reply = raw_call(
            &addr,
            "linpack",
            vec![Value::Int(n as i32), matrix.clone(), Value::DoubleArray(b)],
        );
        assert!(matches!(reply, Message::ResultData { .. }));
        assert!(
            server.arg_store().is_empty(),
            "nothing retained at budget 0"
        );
        let mut t = TcpTransport::connect(&addr).unwrap();
        t.send(&Message::Invoke {
            routine: "linpack".into(),
            args: vec![Arg::Ref(ninf_protocol::digest_value(&matrix))],
            trace: None,
        })
        .unwrap();
        assert!(matches!(t.recv().unwrap(), Message::NeedArg { .. }));
        server.shutdown();
    }

    #[test]
    fn chunked_upload_lands_in_the_store_and_refs_resolve() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let n = 16usize;
        let (a, b) = ninf_exec::matgen(n);
        let matrix = Value::DoubleArray(a.as_slice().to_vec());
        let image = ninf_protocol::value_image(&matrix);
        let digest = ninf_protocol::Digest::of(&image);

        // Fan the image in as 512-byte chunks; every chunk acks, and the
        // last one completes the upload into the arg store.
        let mut t = TcpTransport::connect(&addr).unwrap();
        let chunks = ninf_protocol::split_chunks(digest, &image, 512);
        assert!(chunks.len() > 2, "want a multi-chunk upload");
        for (i, c) in chunks.iter().enumerate() {
            t.send(c).unwrap();
            match t.recv().unwrap() {
                Message::ChunkOk { digest: d, seq } => {
                    assert_eq!((d, seq), (digest, i as u32));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(server.arg_store().contains(&digest));
        let (chunks_ok, rejects, uploads, bytes) = server.metrics().chunked();
        assert_eq!(chunks_ok, chunks.len() as u64);
        assert_eq!((rejects, uploads), (0, 1));
        assert_eq!(bytes, image.len() as u64);

        // Re-sending a chunk after completion is an idempotent re-ack
        // (the retransmit path after a lost ack), not an error.
        t.send(&chunks[0]).unwrap();
        assert!(matches!(t.recv().unwrap(), Message::ChunkOk { seq: 0, .. }));

        // A call that refs the uploaded digest executes without NeedArg.
        t.send(&Message::Invoke {
            routine: "linpack".into(),
            args: vec![
                Arg::Data(Value::Int(n as i32)),
                Arg::Ref(digest),
                Arg::Data(Value::DoubleArray(b)),
            ],
            trace: None,
        })
        .unwrap();
        assert!(matches!(t.recv().unwrap(), Message::ResultData { .. }));
        server.shutdown();
    }

    #[test]
    fn corrupt_and_malformed_chunks_are_rejected_with_reasons() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let image = ninf_protocol::value_image(&Value::DoubleArray(vec![2.5; 256]));
        let digest = ninf_protocol::Digest::of(&image);
        let mut t = TcpTransport::connect(&addr).unwrap();

        // A corrupted payload bounces with a typed reason and lands nothing.
        let mut evil = image.to_vec();
        evil[7] ^= 0x40;
        let (good, bad) = (
            ninf_protocol::split_chunks(digest, &image, 512),
            ninf_protocol::split_chunks(digest, &evil, 512),
        );
        let Message::PutArgChunk { bytes, .. } = &bad[0] else {
            panic!("split must yield chunks")
        };
        let Message::PutArgChunk { crc, .. } = &good[0] else {
            panic!("split must yield chunks")
        };
        let lie = Message::PutArgChunk {
            digest,
            total_bytes: image.len() as u64,
            total: good.len() as u32,
            seq: 0,
            crc: *crc,
            bytes: bytes.clone(),
        };
        t.send(&lie).unwrap();
        match t.recv().unwrap() {
            Message::Error { reason } => assert!(reason.contains("CRC"), "{reason}"),
            other => panic!("unexpected {other:?}"),
        }

        // Impossible geometry never opens a reassembly.
        t.send(&Message::PutArgChunk {
            digest: ninf_protocol::Digest::of(b"other"),
            total_bytes: 0,
            total: 0,
            seq: 0,
            crc: 0,
            bytes: vec![],
        })
        .unwrap();
        assert!(matches!(t.recv().unwrap(), Message::Error { .. }));
        let (_, rejects, uploads, _) = server.metrics().chunked();
        assert_eq!((rejects, uploads), (2, 0));
        server.shutdown();
    }

    #[test]
    fn zero_budget_server_refuses_chunked_uploads() {
        let mut registry = Registry::new();
        register_stdlib(&mut registry, false);
        let server = NinfServer::start(
            "127.0.0.1:0",
            registry,
            ServerConfig {
                pes: 2,
                arg_cache_bytes: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let image = ninf_protocol::value_image(&Value::DoubleArray(vec![1.0; 256]));
        let digest = ninf_protocol::Digest::of(&image);
        let mut t = TcpTransport::connect(&server.addr().to_string()).unwrap();
        t.send(&ninf_protocol::split_chunks(digest, &image, 512)[0])
            .unwrap();
        match t.recv().unwrap() {
            Message::Error { reason } => assert!(reason.contains("disabled"), "{reason}"),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn singular_matrix_reported_as_remote_error() {
        let server = start_test_server(ExecMode::TaskParallel);
        let addr = server.addr().to_string();
        let reply = raw_call(
            &addr,
            "linpack",
            vec![
                Value::Int(2),
                Value::DoubleArray(vec![1.0, 2.0, 2.0, 4.0]),
                Value::DoubleArray(vec![1.0, 1.0]),
            ],
        );
        match reply {
            Message::Error { reason } => assert!(reason.contains("singular")),
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }
}
