//! Built-in Ninf executables: the paper's workloads bound to the real
//! kernels of `ninf-exec`.

use std::sync::Arc;

use ninf_exec::{ep_kernel_parallel, Matrix};
use ninf_protocol::Value;

use crate::registry::{Handler, Registry};

/// Register every stdlib routine on `registry`.
///
/// `data_parallel` selects the library flavour for the LU-based routines:
/// `true` uses the rayon-parallel blocked factorization (the paper's 4-PE
/// libSci analogue), `false` the plain unblocked routines (1-PE task-parallel
/// flavour). EP always partitions its stream across rayon workers.
pub fn register_stdlib(registry: &mut Registry, data_parallel: bool) {
    let sources = ninf_idl::stdlib();
    registry
        .register(sources[0], dmmul_handler(data_parallel))
        .expect("dmmul IDL");
    registry
        .register(sources[1], dgefa_handler(data_parallel))
        .expect("dgefa IDL");
    registry
        .register(sources[2], dgesl_handler())
        .expect("dgesl IDL");
    registry
        .register(sources[3], linpack_handler(data_parallel))
        .expect("linpack IDL");
    registry.register(sources[4], ep_handler()).expect("ep IDL");
    registry
        .register(sources[5], dos_handler())
        .expect("dos IDL");
    registry
        .register(sources[6], dgeco_handler())
        .expect("dgeco IDL");
    registry
        .register(sources[7], nbody_handler())
        .expect("nbody IDL");
}

fn get_int(v: &Value, what: &str) -> Result<usize, String> {
    match v.as_scalar_i64() {
        Some(x) if x >= 0 => Ok(x as usize),
        _ => Err(format!("{what} must be a non-negative integer scalar")),
    }
}

fn get_doubles<'a>(v: &'a Value, what: &str) -> Result<&'a [f64], String> {
    match v {
        Value::DoubleArray(d) => Ok(d),
        _ => Err(format!("{what} must be a double array")),
    }
}

fn get_ints<'a>(v: &'a Value, what: &str) -> Result<&'a [i32], String> {
    match v {
        Value::IntArray(d) => Ok(d),
        _ => Err(format!("{what} must be an int array")),
    }
}

/// `dmmul(n, A, B) -> C` (matrix product, §2's running example).
pub fn dmmul_handler(parallel: bool) -> Handler {
    Arc::new(move |args: &[Value]| {
        let n = get_int(&args[0], "n")?;
        let a = Matrix::from_col_major(n, n, get_doubles(&args[1], "A")?.to_vec());
        let b = Matrix::from_col_major(n, n, get_doubles(&args[2], "B")?.to_vec());
        let c = if parallel {
            ninf_exec::dmmul_parallel(&a, &b)
        } else {
            ninf_exec::dmmul(&a, &b)
        };
        Ok(vec![Value::DoubleArray(c.into_vec())])
    })
}

/// `dgefa(n, A inout) -> (A, ipvt, info)` — LU factorization.
pub fn dgefa_handler(parallel: bool) -> Handler {
    Arc::new(move |args: &[Value]| {
        let n = get_int(&args[0], "n")?;
        let mut a = Matrix::from_col_major(n, n, get_doubles(&args[1], "A")?.to_vec());
        let outcome = if parallel {
            ninf_exec::dgefa_blocked_parallel(&mut a, 0)
        } else {
            ninf_exec::dgefa(&mut a)
        };
        match outcome {
            Ok(ipvt) => Ok(vec![
                Value::DoubleArray(a.into_vec()),
                Value::IntArray(ipvt.into_iter().map(|p| p as i32).collect()),
                Value::IntArray(vec![0]),
            ]),
            Err(sing) => Ok(vec![
                Value::DoubleArray(a.into_vec()),
                Value::IntArray(vec![0; n]),
                // Linpack info convention: 1-based column of the zero pivot.
                Value::IntArray(vec![sing.column as i32 + 1]),
            ]),
        }
    })
}

/// `dgesl(n, A, ipvt, b inout) -> b` — solve with existing factors.
pub fn dgesl_handler() -> Handler {
    Arc::new(move |args: &[Value]| {
        let n = get_int(&args[0], "n")?;
        let a = Matrix::from_col_major(n, n, get_doubles(&args[1], "A")?.to_vec());
        let ipvt: Vec<usize> = get_ints(&args[2], "ipvt")?
            .iter()
            .map(|&p| p as usize)
            .collect();
        let mut b = get_doubles(&args[3], "b")?.to_vec();
        if ipvt.len() != n || b.len() != n {
            return Err("dgesl: ipvt/b length mismatch".into());
        }
        ninf_exec::dgesl(&a, &ipvt, &mut b);
        Ok(vec![Value::DoubleArray(b)])
    })
}

/// `linpack(n, A, b) -> (x, ipvt)` — one benchmark `Ninf_call` (factor +
/// solve).
pub fn linpack_handler(parallel: bool) -> Handler {
    Arc::new(move |args: &[Value]| {
        let n = get_int(&args[0], "n")?;
        let mut a = Matrix::from_col_major(n, n, get_doubles(&args[1], "A")?.to_vec());
        let mut b = get_doubles(&args[2], "b")?.to_vec();
        let ipvt = if parallel {
            ninf_exec::dgefa_blocked_parallel(&mut a, 0).map_err(|e| e.to_string())?
        } else {
            ninf_exec::dgefa(&mut a).map_err(|e| e.to_string())?
        };
        ninf_exec::dgesl(&a, &ipvt, &mut b);
        Ok(vec![
            Value::DoubleArray(b),
            Value::IntArray(ipvt.into_iter().map(|p| p as i32).collect()),
        ])
    })
}

/// `ep(m) -> (sums[2], counts[10])` — NAS EP, `2^m` pair trials.
pub fn ep_handler() -> Handler {
    Arc::new(move |args: &[Value]| {
        let m = get_int(&args[0], "m")?;
        if m > 36 {
            return Err("ep: m > 36 would run for days".into());
        }
        let r = ep_kernel_parallel(m as u32, rayon::current_num_threads());
        Ok(vec![
            Value::DoubleArray(vec![r.sx, r.sy]),
            Value::DoubleArray(r.counts.iter().map(|&c| c as f64).collect()),
        ])
    })
}

/// `dgeco(n, A inout) -> (A, ipvt, rcond)` — factor + condition estimate.
pub fn dgeco_handler() -> Handler {
    Arc::new(move |args: &[Value]| {
        let n = get_int(&args[0], "n")?;
        let mut a = Matrix::from_col_major(n, n, get_doubles(&args[1], "A")?.to_vec());
        match ninf_exec::dgeco(&mut a) {
            Ok((ipvt, rcond)) => Ok(vec![
                Value::DoubleArray(a.into_vec()),
                Value::IntArray(ipvt.into_iter().map(|p| p as i32).collect()),
                Value::DoubleArray(vec![rcond]),
            ]),
            Err(sing) => Err(sing.to_string()),
        }
    })
}

/// `nbody(n, step, masses, pos) -> diag[5]` — softened direct-summation
/// gravity of `n` fixed sources at the step's probe grid (the iterative
/// argument-cache workload: big unchanged inputs, O(1) output).
pub fn nbody_handler() -> Handler {
    Arc::new(move |args: &[Value]| {
        let n = get_int(&args[0], "n")?;
        let step = get_int(&args[1], "step")?;
        let masses = get_doubles(&args[2], "masses")?;
        let pos = get_doubles(&args[3], "pos")?;
        if masses.len() != n || pos.len() != 3 * n {
            return Err("nbody: masses/pos length mismatch".into());
        }
        let diag = ninf_exec::nbody_kernel(masses, pos, step as u32);
        Ok(vec![Value::DoubleArray(diag.to_vec())])
    })
}

/// `dos(m, bins) -> hist[bins]` — density-of-states Monte-Carlo.
pub fn dos_handler() -> Handler {
    Arc::new(move |args: &[Value]| {
        let m = get_int(&args[0], "m")?;
        let bins = get_int(&args[1], "bins")?;
        if m > 36 {
            return Err("dos: m > 36 would run for days".into());
        }
        if bins == 0 {
            return Err("dos: bins must be positive".into());
        }
        let r = ninf_exec::dos_histogram(m as u32, 8, bins);
        Ok(vec![Value::DoubleArray(
            r.histogram.iter().map(|&c| c as f64).collect(),
        )])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::validate_invoke;

    fn full_registry() -> Registry {
        let mut r = Registry::new();
        register_stdlib(&mut r, false);
        r
    }

    #[test]
    fn all_six_registered() {
        let r = full_registry();
        assert_eq!(
            r.names(),
            vec!["dgeco", "dgefa", "dgesl", "dmmul", "dos", "ep", "linpack", "nbody"]
        );
    }

    #[test]
    fn nbody_matches_local_kernel() {
        let r = full_registry();
        let exe = r.lookup("nbody").unwrap();
        let n = 64usize;
        let (masses, pos) = ninf_exec::nbody_particles(n);
        let args = vec![
            Value::Int(n as i32),
            Value::Int(3),
            Value::DoubleArray(masses.clone()),
            Value::DoubleArray(pos.clone()),
        ];
        validate_invoke(&exe.interface, &args).unwrap();
        let out = (exe.handler)(&args).unwrap();
        let expected = ninf_exec::nbody_kernel(&masses, &pos, 3).to_vec();
        assert_eq!(out, vec![Value::DoubleArray(expected)]);
    }

    #[test]
    fn dmmul_multiplies() {
        let r = full_registry();
        let exe = r.lookup("dmmul").unwrap();
        // 2x2 identity times X = X (column-major).
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let args = vec![
            Value::Int(2),
            Value::DoubleArray(vec![1.0, 0.0, 0.0, 1.0]),
            Value::DoubleArray(x.clone()),
        ];
        validate_invoke(&exe.interface, &args).unwrap();
        let out = (exe.handler)(&args).unwrap();
        assert_eq!(out, vec![Value::DoubleArray(x)]);
    }

    #[test]
    fn linpack_solves_benchmark_matrix() {
        let r = full_registry();
        let exe = r.lookup("linpack").unwrap();
        let n = 30usize;
        let (a, b) = ninf_exec::matgen(n);
        let args = vec![
            Value::Int(n as i32),
            Value::DoubleArray(a.as_slice().to_vec()),
            Value::DoubleArray(b),
        ];
        validate_invoke(&exe.interface, &args).unwrap();
        let out = (exe.handler)(&args).unwrap();
        let Value::DoubleArray(x) = &out[0] else {
            panic!("expected x")
        };
        for xi in x {
            assert!((xi - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn dgefa_then_dgesl_round_trip() {
        let r = full_registry();
        let n = 16usize;
        let (a, b) = ninf_exec::matgen(n);
        let fa = (r.lookup("dgefa").unwrap().handler)(&[
            Value::Int(n as i32),
            Value::DoubleArray(a.as_slice().to_vec()),
        ])
        .unwrap();
        let Value::IntArray(info) = &fa[2] else {
            panic!()
        };
        assert_eq!(info[0], 0, "benchmark matrix must be non-singular");
        let sl = (r.lookup("dgesl").unwrap().handler)(&[
            Value::Int(n as i32),
            fa[0].clone(),
            fa[1].clone(),
            Value::DoubleArray(b),
        ])
        .unwrap();
        let Value::DoubleArray(x) = &sl[0] else {
            panic!()
        };
        for xi in x {
            assert!((xi - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn dgefa_reports_singularity_via_info() {
        let r = full_registry();
        let out = (r.lookup("dgefa").unwrap().handler)(&[
            Value::Int(2),
            Value::DoubleArray(vec![1.0, 2.0, 2.0, 4.0]), // rank 1
        ])
        .unwrap();
        let Value::IntArray(info) = &out[2] else {
            panic!()
        };
        assert_ne!(info[0], 0);
    }

    #[test]
    fn ep_returns_sane_counts() {
        let r = full_registry();
        let out = (r.lookup("ep").unwrap().handler)(&[Value::Int(12)]).unwrap();
        let Value::DoubleArray(counts) = &out[1] else {
            panic!()
        };
        let total: f64 = counts.iter().sum();
        let rate = total / 4096.0;
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.05);
    }

    #[test]
    fn ep_rejects_absurd_sizes() {
        let r = full_registry();
        assert!((r.lookup("ep").unwrap().handler)(&[Value::Int(60)]).is_err());
    }

    #[test]
    fn dos_histogram_sums_to_samples() {
        let r = full_registry();
        let out = (r.lookup("dos").unwrap().handler)(&[Value::Int(10), Value::Int(16)]).unwrap();
        let Value::DoubleArray(hist) = &out[0] else {
            panic!()
        };
        assert_eq!(hist.len(), 16);
        assert_eq!(hist.iter().sum::<f64>(), 1024.0);
    }

    #[test]
    fn dgeco_flags_ill_conditioning_remotely() {
        let r = full_registry();
        let n = 8usize;
        // Hilbert 8: terribly conditioned.
        let mut h = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                h[j * n + i] = 1.0 / ((i + j + 1) as f64);
            }
        }
        let out =
            (r.lookup("dgeco").unwrap().handler)(&[Value::Int(n as i32), Value::DoubleArray(h)])
                .unwrap();
        let Value::DoubleArray(rcond) = &out[2] else {
            panic!()
        };
        assert!(rcond[0] < 1e-8, "rcond = {}", rcond[0]);

        // Identity: perfectly conditioned.
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let out =
            (r.lookup("dgeco").unwrap().handler)(&[Value::Int(n as i32), Value::DoubleArray(eye)])
                .unwrap();
        let Value::DoubleArray(rcond) = &out[2] else {
            panic!()
        };
        assert!((rcond[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_flavour_gives_same_linpack_answer() {
        let mut r1 = Registry::new();
        register_stdlib(&mut r1, false);
        let mut r2 = Registry::new();
        register_stdlib(&mut r2, true);
        let n = 24usize;
        let (a, b) = ninf_exec::matgen(n);
        let args = vec![
            Value::Int(n as i32),
            Value::DoubleArray(a.as_slice().to_vec()),
            Value::DoubleArray(b),
        ];
        let o1 = (r1.lookup("linpack").unwrap().handler)(&args).unwrap();
        let o2 = (r2.lookup("linpack").unwrap().handler)(&args).unwrap();
        assert_eq!(o1, o2, "blocked-parallel LU must match unblocked bitwise");
    }
}
