//! Execution-trace cost prediction (paper §5.1/§5.2).
//!
//! "By predicting the computation and communication time of a Ninf_call task
//! using IDL and server trace information, we could perform Shortest-Job-
//! First (SJF) scheduling" — this module is that trace: it records observed
//! `(problem size, service seconds)` samples per routine and fits a
//! power law `t = a·n^b` by least squares in log-log space, the right family
//! for the O(n³) Linpack kernels and the O(1)-in-`n` fixed-size calls alike.

use std::collections::HashMap;

use parking_lot::RwLock;

/// One routine's observation history and fitted model.
#[derive(Debug, Clone, Default)]
struct RoutineTrace {
    /// (ln n, ln t) samples; n is clamped ≥ 1 so logs are defined.
    samples: Vec<(f64, f64)>,
}

impl RoutineTrace {
    /// Least-squares fit of `ln t = ln a + b·ln n`; returns `(a, b)`.
    ///
    /// Degenerate histories (every sample at the same `n`, durations down at
    /// the clock-resolution floor) must yield finite coefficients: the
    /// constant-model fallbacks below keep NaN/Inf out of the scheduler's
    /// cost estimates.
    fn fit(&self) -> Option<(f64, f64)> {
        let n = self.samples.len();
        if n == 0 {
            return None;
        }
        if n == 1 {
            // A single sample: assume constant cost.
            return Self::finite_fit(self.samples[0].1.exp(), 0.0);
        }
        let m = n as f64;
        let (sx, sy): (f64, f64) = self
            .samples
            .iter()
            .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
        let sxx: f64 = self.samples.iter().map(|&(x, _)| x * x).sum();
        let sxy: f64 = self.samples.iter().map(|&(x, y)| x * y).sum();
        let denom = m * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            // All samples at the same n: constant model at the (geometric)
            // mean.
            return Self::finite_fit((sy / m).exp(), 0.0);
        }
        let b = (m * sxy - sx * sy) / denom;
        let ln_a = (sy - b * sx) / m;
        Self::finite_fit(ln_a.exp(), b).or_else(|| Self::finite_fit((sy / m).exp(), 0.0))
    }

    /// `(a, b)` only when both coefficients are finite (a slope computed
    /// from pathological samples can overflow `exp`).
    fn finite_fit(a: f64, b: f64) -> Option<(f64, f64)> {
        (a.is_finite() && b.is_finite()).then_some((a, b))
    }
}

/// Thread-safe per-routine cost model.
#[derive(Debug, Default)]
pub struct CostModel {
    traces: RwLock<HashMap<String, RoutineTrace>>,
}

impl CostModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observed execution: `routine` at problem size `n` took
    /// `seconds`.
    pub fn record(&self, routine: &str, n: i64, seconds: f64) {
        // Reject non-positive AND non-finite observations: a NaN duration
        // (clock skew, subtraction of garbage) would otherwise poison every
        // later fit for the routine.
        if !(seconds > 0.0 && seconds.is_finite()) {
            return;
        }
        let x = (n.max(1)) as f64;
        self.traces
            .write()
            .entry(routine.to_owned())
            .or_default()
            .samples
            .push((x.ln(), seconds.ln()));
    }

    /// Predict the service time of `routine` at problem size `n`; `None`
    /// until at least one sample exists.
    pub fn predict(&self, routine: &str, n: i64) -> Option<f64> {
        let traces = self.traces.read();
        let (a, b) = traces.get(routine)?.fit()?;
        Some(a * ((n.max(1)) as f64).powf(b))
    }

    /// The fitted exponent `b` of `t = a·n^b` (≈3 for LU, ≈0 for fixed-size
    /// calls); diagnostic.
    pub fn exponent(&self, routine: &str) -> Option<f64> {
        self.traces.read().get(routine)?.fit().map(|(_, b)| b)
    }

    /// Number of samples recorded for a routine.
    pub fn samples(&self, routine: &str) -> usize {
        self.traces
            .read()
            .get(routine)
            .map_or(0, |t| t.samples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_samples_no_prediction() {
        let m = CostModel::new();
        assert_eq!(m.predict("linpack", 600), None);
    }

    #[test]
    fn single_sample_predicts_constant() {
        let m = CostModel::new();
        m.record("ep", 24, 200.0);
        assert!((m.predict("ep", 24).unwrap() - 200.0).abs() < 1e-9);
        assert!((m.predict("ep", 48).unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_cubic_law() {
        let m = CostModel::new();
        // t = 2e-9 * n^3 exactly.
        for n in [200i64, 400, 600, 800, 1000] {
            m.record("linpack", n, 2e-9 * (n as f64).powi(3));
        }
        let b = m.exponent("linpack").unwrap();
        assert!((b - 3.0).abs() < 1e-6, "b = {b}");
        let t = m.predict("linpack", 1400).unwrap();
        let expect = 2e-9 * 1400f64.powi(3);
        assert!((t - expect).abs() / expect < 1e-6, "t = {t} vs {expect}");
    }

    #[test]
    fn robust_to_noise() {
        let m = CostModel::new();
        let noise = [1.05, 0.93, 1.1, 0.97, 1.02, 0.9, 1.08];
        for (i, n) in [100i64, 200, 300, 500, 700, 900, 1200].iter().enumerate() {
            m.record("linpack", *n, 1e-8 * (*n as f64).powi(3) * noise[i]);
        }
        let t = m.predict("linpack", 600).unwrap();
        let expect = 1e-8 * 600f64.powi(3);
        assert!((t - expect).abs() / expect < 0.25, "t = {t} vs {expect}");
    }

    #[test]
    fn constant_routine_fits_flat() {
        let m = CostModel::new();
        for n in [8i64, 16, 24, 32] {
            m.record("query", n, 0.5);
        }
        let b = m.exponent("query").unwrap();
        assert!(b.abs() < 1e-9);
        assert!((m.predict("query", 64).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn same_n_samples_average() {
        let m = CostModel::new();
        m.record("f", 100, 1.0);
        m.record("f", 100, 4.0);
        // Geometric mean of 1 and 4 = 2.
        assert!((m.predict("f", 100).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn routines_are_independent() {
        let m = CostModel::new();
        m.record("a", 10, 1.0);
        m.record("b", 10, 100.0);
        assert!(m.predict("a", 10).unwrap() < m.predict("b", 10).unwrap());
        assert_eq!(m.samples("a"), 1);
        assert_eq!(m.samples("c"), 0);
    }

    #[test]
    fn nonpositive_times_ignored() {
        let m = CostModel::new();
        m.record("f", 10, 0.0);
        m.record("f", 10, -3.0);
        assert_eq!(m.predict("f", 10), None);
    }

    #[test]
    fn nonfinite_times_ignored() {
        let m = CostModel::new();
        m.record("f", 10, f64::NAN);
        m.record("f", 10, f64::INFINITY);
        assert_eq!(m.predict("f", 10), None);
        // A later good sample still fits cleanly.
        m.record("f", 10, 1.5);
        let t = m.predict("f", 10).unwrap();
        assert!(t.is_finite());
        assert!((t - 1.5).abs() < 1e-9);
    }

    /// All samples at one `n` with wildly different durations: the log-log
    /// normal equations are singular (denominator 0) and must fall back to
    /// the finite constant model, never NaN/Inf.
    #[test]
    fn degenerate_single_n_history_stays_finite() {
        let m = CostModel::new();
        for secs in [1e-9, 2.0, 5e3, 1e-7] {
            m.record("linpack", 600, secs);
        }
        let b = m.exponent("linpack").unwrap();
        assert!(b.is_finite());
        assert_eq!(b, 0.0);
        for n in [1i64, 600, 1_000_000] {
            let t = m.predict("linpack", n).unwrap();
            assert!(t.is_finite() && t > 0.0, "predict({n}) = {t}");
        }
    }

    /// Near-zero (clock-floor) durations: huge negative logs, but the fit
    /// coefficients and predictions must stay finite and positive.
    #[test]
    fn near_zero_durations_fit_finite_coefficients() {
        let m = CostModel::new();
        for (n, secs) in [
            (100i64, 4.9e-324),
            (200, 1e-300),
            (400, 2e-300),
            (800, 1e-299),
        ] {
            m.record("fast", n, secs);
        }
        let b = m.exponent("fast").unwrap();
        assert!(b.is_finite(), "exponent = {b}");
        let t = m.predict("fast", 300).unwrap();
        assert!(t.is_finite() && t >= 0.0, "predict = {t}");
    }

    /// The n=1 sample puts ln n = 0 for every observation; combined with a
    /// second point this exercises the near-singular branch boundary.
    #[test]
    fn all_samples_at_n_equals_one_stay_finite() {
        let m = CostModel::new();
        m.record("g", 1, 1e-12);
        m.record("g", 1, 1e12);
        let (t, b) = (m.predict("g", 1).unwrap(), m.exponent("g").unwrap());
        assert!(t.is_finite() && b.is_finite());
        // Geometric mean of 1e-12 and 1e12 = 1.
        assert!((t - 1.0).abs() < 1e-6, "t = {t}");
    }
}
