//! The Ninf computational server.
//!
//! "The Ninf computational server is a process which services remote
//! computing requests of remote clients by managing the communication and
//! activation of the services requested via Ninf RPC. Binaries of computing
//! libraries and applications are registered on the server process as *Ninf
//! executables*" (paper §2.1).
//!
//! This crate provides:
//!
//! * [`registry`] — the executable registry binding compiled IDL interfaces
//!   to Rust handler functions;
//! * [`builtin`] — the paper's workloads (`dmmul`, `dgefa`, `dgesl`,
//!   `linpack`, `ep`, `dos`) wired to the real kernels in `ninf-exec`;
//! * [`policy`] — job admission policies: the FCFS the real server used
//!   ("the current Ninf server merely fork & execs a Ninf executable in a
//!   First-Come-First-Served manner", §5.2), plus the SJF, FPFS and FPMPFS
//!   alternatives §5.2–5.3 discuss. The same policy code drives the
//!   whole-system simulator in `ninf-sim`;
//! * [`exec`] — the execution-mode gate: task-parallel (one PE per call) vs
//!   data-parallel (all PEs per call, serialized), the central tradeoff of
//!   §4.2;
//! * [`server`] — a live TCP server speaking real Ninf RPC, served by an
//!   event-driven reactor core (default) or the thread-per-connection
//!   baseline;
//! * [`stats`] — per-call timestamps `T_submit / T_enqueue / T_dequeue /
//!   T_complete` and the derived response/wait times of §4.1.

pub mod argstore;
pub mod builtin;
pub mod exec;
pub mod policy;
pub mod registry;
pub mod server;
pub mod stats;
pub mod trace;
pub mod twophase;

pub use argstore::{ArgStore, DEFAULT_ARG_CACHE_BYTES};
pub use exec::ExecMode;
pub use policy::{JobInfo, SchedPolicy};
pub use registry::{Handler, NinfExecutable, Registry};
pub use server::{NinfServer, ServerConfig, ServerCore, ServerMetrics};
pub use stats::{CallRecord, ServerStats};
pub use trace::CostModel;
pub use twophase::JobTable;
