//! Bounded, byte-budgeted LRU store of marshalled argument values, keyed by
//! content digest.
//!
//! This is the server half of the argument cache: clients that have already
//! shipped a large argument inline may name it by [`Digest`] on later calls
//! ([`ninf_protocol::Arg::Ref`]); the store resolves the ref, or reports a
//! miss so the caller can reply [`ninf_protocol::Message::NeedArg`] without
//! executing anything. The budget bounds resident bytes, not entry count —
//! one 32 MB matrix and a thousand 32 KB vectors cost the same — and
//! eviction is strict LRU over both inserts and lookups.
//!
//! A budget of zero disables the store: nothing is retained and every ref
//! misses, which is the server-side off switch.

use std::collections::{BTreeMap, HashMap};

use ninf_protocol::{Digest, Value};
use parking_lot::Mutex;

/// Default resident-byte budget (64 MiB): comfortably holds the working set
/// of an iterative WAN client (a few large arrays) while bounding a fleet
/// of strangers to a fixed footprint.
pub const DEFAULT_ARG_CACHE_BYTES: usize = 64 << 20;

struct Entry {
    value: Value,
    bytes: usize,
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Digest, Entry>,
    /// LRU index: recency stamp → digest, oldest first.
    order: BTreeMap<u64, Digest>,
    clock: u64,
    bytes: usize,
}

impl Inner {
    fn touch(&mut self, d: Digest) {
        let Some(e) = self.map.get_mut(&d) else {
            return;
        };
        self.order.remove(&e.stamp);
        self.clock += 1;
        e.stamp = self.clock;
        self.order.insert(self.clock, d);
    }
}

/// Content-addressed LRU value store with a resident-byte budget.
pub struct ArgStore {
    budget: usize,
    inner: Mutex<Inner>,
}

impl ArgStore {
    /// Empty store bounded by `budget` resident bytes (0 disables caching).
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured resident-byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Insert `value` under `digest` (the caller computes the digest so the
    /// hashing cost sits outside the lock). Returns how many entries were
    /// evicted to fit. Values larger than the whole budget are not retained.
    pub fn insert(&self, digest: Digest, value: Value) -> usize {
        let bytes = value.wire_bytes();
        if bytes > self.budget {
            return 0;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&digest) {
            inner.touch(digest);
            return 0;
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.order.insert(stamp, digest);
        inner.map.insert(
            digest,
            Entry {
                value,
                bytes,
                stamp,
            },
        );
        inner.bytes += bytes;
        let mut evicted = 0;
        while inner.bytes > self.budget {
            let (&oldest, &victim) = inner
                .order
                .iter()
                .next()
                .expect("over budget implies entry");
            // The entry just inserted is the newest; the loop always ends
            // before evicting it because removing everything older already
            // brings `bytes` down to its size, which fits the budget.
            inner.order.remove(&oldest);
            let e = inner.map.remove(&victim).expect("indexed entry");
            inner.bytes -= e.bytes;
            evicted += 1;
        }
        evicted
    }

    /// Look up (and LRU-touch) a digest.
    pub fn get(&self, digest: &Digest) -> Option<Value> {
        let mut inner = self.inner.lock();
        inner.touch(*digest);
        inner.map.get(digest).map(|e| e.value.clone())
    }

    /// Whether the store currently holds `digest` (no LRU touch).
    pub fn contains(&self, digest: &Digest) -> bool {
        self.inner.lock().map.contains_key(digest)
    }

    /// Entries resident now.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident payload bytes.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Drop every entry (tests use this to force a refill round-trip).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninf_protocol::digest_value;

    fn arr(fill: f64, len: usize) -> (Digest, Value) {
        let v = Value::DoubleArray(vec![fill; len]);
        (digest_value(&v), v)
    }

    #[test]
    fn insert_then_get_roundtrips() {
        let store = ArgStore::new(1 << 20);
        let (d, v) = arr(1.5, 100);
        assert_eq!(store.insert(d, v.clone()), 0);
        assert_eq!(store.get(&d), Some(v));
        assert!(store.contains(&d));
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), 800);
    }

    #[test]
    fn miss_is_none() {
        let store = ArgStore::new(1 << 20);
        let (d, _) = arr(2.0, 10);
        assert_eq!(store.get(&d), None);
        assert!(!store.contains(&d));
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // Budget fits exactly two 800-byte arrays.
        let store = ArgStore::new(1600);
        let (d1, v1) = arr(1.0, 100);
        let (d2, v2) = arr(2.0, 100);
        let (d3, v3) = arr(3.0, 100);
        store.insert(d1, v1);
        store.insert(d2, v2);
        // Touch d1 so d2 becomes the LRU victim.
        assert!(store.get(&d1).is_some());
        assert_eq!(store.insert(d3, v3), 1);
        assert!(store.contains(&d1));
        assert!(!store.contains(&d2));
        assert!(store.contains(&d3));
        assert_eq!(store.bytes(), 1600);
    }

    #[test]
    fn oversized_value_is_not_retained() {
        let store = ArgStore::new(100);
        let (d, v) = arr(1.0, 100); // 800 bytes > budget
        assert_eq!(store.insert(d, v), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn zero_budget_disables_the_store() {
        let store = ArgStore::new(0);
        let (d, v) = arr(1.0, 4);
        store.insert(d, v);
        assert!(store.is_empty());
        assert_eq!(store.get(&d), None);
    }

    #[test]
    fn reinsert_touches_instead_of_duplicating() {
        let store = ArgStore::new(1600);
        let (d1, v1) = arr(1.0, 100);
        let (d2, v2) = arr(2.0, 100);
        store.insert(d1, v1.clone());
        store.insert(d2, v2);
        // Re-inserting d1 refreshes it; inserting a third evicts d2.
        assert_eq!(store.insert(d1, v1), 0);
        assert_eq!(store.len(), 2);
        let (d3, v3) = arr(3.0, 100);
        assert_eq!(store.insert(d3, v3), 1);
        assert!(store.contains(&d1));
        assert!(!store.contains(&d2));
    }

    #[test]
    fn clear_empties_everything() {
        let store = ArgStore::new(1 << 20);
        let (d, v) = arr(1.0, 8);
        store.insert(d, v);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.bytes(), 0);
        assert_eq!(store.get(&d), None);
    }
}
