//! Property tests for the max-min fair allocator: on random topologies and
//! flow sets, the computed rates must satisfy the defining invariants of
//! max-min fairness.

use ninf_netsim::{FlowSpec, FluidNet, NodeId, Topology};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    n_clients: usize,
    server_cap: f64,
    access_cap: f64,
    flows: Vec<(usize, f64)>, // (client index, cap); f64::INFINITY encoded as 0.0
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..8, 1.0f64..50.0, 1.0f64..50.0).prop_flat_map(|(n_clients, server_cap, access_cap)| {
        proptest::collection::vec((0..n_clients, prop_oneof![Just(0.0), 0.5f64..20.0]), 1..12)
            .prop_map(move |flows| Scenario {
                n_clients,
                server_cap,
                access_cap,
                flows,
            })
    })
}

fn build(scenario: &Scenario) -> (FluidNet, Vec<ninf_netsim::FlowId>) {
    let mut t = Topology::new();
    let clients: Vec<NodeId> = (0..scenario.n_clients)
        .map(|i| t.add_node(format!("c{i}")))
        .collect();
    let sw = t.add_node("switch");
    let srv = t.add_node("server");
    for &c in &clients {
        t.add_duplex_link(c, sw, scenario.access_cap, 0.0);
    }
    t.add_duplex_link(sw, srv, scenario.server_cap, 0.0);
    t.compute_routes();
    let mut net = FluidNet::new(t);
    let ids = scenario
        .flows
        .iter()
        .map(|&(ci, cap)| {
            let cap = if cap == 0.0 { f64::INFINITY } else { cap };
            net.start_flow(
                FlowSpec {
                    src: clients[ci],
                    dst: srv,
                    bytes: 1e6,
                    cap,
                },
                0.0,
            )
        })
        .collect();
    (net, ids)
}

proptest! {
    /// Invariant 1: no link carries more than its capacity.
    /// Invariant 2: no flow exceeds its cap.
    /// Invariant 3 (work conservation / max-min): every flow is either at its
    /// cap or crosses a saturated link on which it has a maximal rate.
    #[test]
    fn maxmin_invariants(scenario in arb_scenario()) {
        let (net, ids) = build(&scenario);
        let loads = net.link_loads();
        let topo = net.topology();
        let tol = 1e-6;

        for (i, &load) in loads.iter().enumerate() {
            let cap = topo.link(ninf_netsim::LinkId(i)).capacity;
            prop_assert!(load <= cap + tol * cap.max(1.0), "link {i}: load {load} > cap {cap}");
        }

        let rates: Vec<f64> = ids.iter().map(|&id| net.rate(id)).collect();
        for (k, &id) in ids.iter().enumerate() {
            let rate = rates[k];
            prop_assert!(rate > 0.0, "flow {k} starved");
            let cap = if scenario.flows[k].1 == 0.0 { f64::INFINITY } else { scenario.flows[k].1 };
            prop_assert!(rate <= cap + tol * cap.clamp(1.0, 1e12), "flow {k}: {rate} > cap {cap}");

            let at_cap = cap.is_finite() && (rate - cap).abs() <= tol * cap.max(1.0);
            if !at_cap {
                // Must cross a saturated link where it is among the fastest.
                let client = scenario.flows[k].0;
                // Shares the server uplink and its own access uplink.
                let mut found_bottleneck = false;
                for (i, &load) in loads.iter().enumerate() {
                    let link = topo.link(ninf_netsim::LinkId(i));
                    let saturated = load >= link.capacity - tol * link.capacity.max(1.0);
                    if !saturated {
                        continue;
                    }
                    // Does flow k cross link i? (client access uplink or server uplink)
                    let crosses = flow_crosses(&net, id, ninf_netsim::LinkId(i));
                    if crosses {
                        // Is it maximal among flows on this link?
                        let max_on_link = ids
                            .iter()
                            .enumerate()
                            .filter(|(_, &o)| flow_crosses(&net, o, ninf_netsim::LinkId(i)))
                            .map(|(j, _)| rates[j])
                            .fold(0.0f64, f64::max);
                        if rate >= max_on_link - tol * max_on_link.max(1.0) {
                            found_bottleneck = true;
                            break;
                        }
                    }
                }
                prop_assert!(found_bottleneck, "flow {k} (client {client}) below cap with no bottleneck");
            }
        }
    }

    /// Conservation: advancing time drains exactly rate × dt from each flow
    /// and the delivered-bytes counter matches.
    #[test]
    fn draining_conserves_bytes(scenario in arb_scenario(), dt in 0.001f64..0.5) {
        let (mut net, ids) = build(&scenario);
        let before: Vec<f64> = ids.iter().map(|&id| net.remaining(id)).collect();
        let rates: Vec<f64> = ids.iter().map(|&id| net.rate(id)).collect();
        // Don't run past the earliest completion.
        let horizon = net.next_completion().map(|(t, _)| t).unwrap_or(f64::INFINITY);
        let to = (net.now() + dt).min(horizon);
        net.advance_to(to);
        let elapsed = to - 0.0;
        let mut total_drained = 0.0;
        for (k, &id) in ids.iter().enumerate() {
            let drained = before[k] - net.remaining(id);
            prop_assert!((drained - rates[k] * elapsed).abs() < 1e-6 * before[k].max(1.0));
            total_drained += drained;
        }
        prop_assert!((net.bytes_delivered() - total_drained).abs() < 1e-6 * total_drained.max(1.0));
    }
}

/// Whether `flow` routes over `link`.
fn flow_crosses(net: &FluidNet, flow: ninf_netsim::FlowId, link: ninf_netsim::LinkId) -> bool {
    net.path(flow).contains(&link)
}
