//! Property tests on the discrete-event engine's ordering guarantees.

use ninf_netsim::Engine;
use proptest::prelude::*;

proptest! {
    /// Events pop in nondecreasing time order regardless of insertion order.
    #[test]
    fn pops_are_time_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut count = 0;
        while let Some(e) = eng.pop() {
            prop_assert!(e.time >= last);
            prop_assert!((eng.now() - e.time).abs() < 1e-12);
            last = e.time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Equal-time events preserve scheduling order (FIFO tie-break).
    #[test]
    fn ties_are_fifo(n in 1usize..100, t in 0.0f64..100.0) {
        let mut eng = Engine::new();
        for i in 0..n {
            eng.schedule(t, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| eng.pop().map(|e| e.event)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Interleaving schedules with pops never violates causality.
    #[test]
    fn interleaved_schedule_pop(seeds in proptest::collection::vec((0.0f64..10.0, any::<bool>()), 1..100)) {
        let mut eng = Engine::new();
        let mut last = 0.0f64;
        for (delay, pop_first) in seeds {
            if pop_first {
                if let Some(e) = eng.pop() {
                    prop_assert!(e.time >= last);
                    last = e.time;
                }
            }
            // schedule_in clamps to now, so this can never violate causality
            eng.schedule_in(delay, ());
        }
        while let Some(e) = eng.pop() {
            prop_assert!(e.time >= last);
            last = e.time;
        }
        prop_assert_eq!(eng.pending(), 0);
    }

    /// processed() counts exactly the pops.
    #[test]
    fn processed_counter(n in 0usize..50) {
        let mut eng = Engine::new();
        for i in 0..n {
            eng.schedule(i as f64, ());
        }
        let mut pops = 0;
        while eng.pop().is_some() {
            pops += 1;
        }
        prop_assert_eq!(pops, n);
        prop_assert_eq!(eng.processed(), n as u64);
    }
}
