//! WAN model: the simulator mirror of `ninf-protocol`'s live link
//! shaping and parallel-stream chunked bulk transfer.
//!
//! The live side (`ShapedTransport` + the client's chunk fan-out) and
//! this module share one link spec — [`WanSpec`] carries the same five
//! integers as `LinkShape`, and [`WanSpec::chunk_lost`] reproduces the
//! live loss schedule bit-for-bit (same SplitMix64 stream keyed by
//! `(seed, lane, op)`, same ppm draw). On top of that, a chunked upload
//! is simulated as [`FluidNet`] flows through a star topology whose
//! bottleneck is the shaped link:
//!
//! | live event                         | sim event                        |
//! |------------------------------------|----------------------------------|
//! | lane send occupies the link        | flow of `chunk + overhead` bytes |
//! | token-bucket FIFO pacing           | max-min share of the bottleneck  |
//! | forwarded send sleeps `delay_us`   | ack timer at completion + delay  |
//! | lost send (consumes link time)     | flow drains, then timeout timer  |
//! | recv deadline fires, retransmit    | lane re-sends at `t + timeout`   |
//! | stop-and-wait per lane             | ≤ 1 flow in flight per lane      |
//!
//! Both sides are work-conserving on a single bottleneck, so aggregate
//! transfer times agree; microscopic ordering differs (FIFO vs fair
//! share), which is why the live-vs-sim differential test compares
//! *normalized* throughput-vs-streams shapes, not absolute numbers.
//!
//! The predicted curve reproduces the GridFTP parallel-stream result:
//! goodput climbs with stream count while lanes pipeline through each
//! other's propagation gaps, flattens when the link saturates, and falls
//! again once the congestion term drives the effective loss rate up
//! faster than added lanes add capacity.

use crate::fluid::{FlowId, FlowSpec, FluidNet};
use crate::rng::SplitMix64;
use crate::topology::{NodeId, Topology};

/// Wire bytes a chunk frame adds on top of its payload: frame header,
/// mux call id, and the `PutArgChunk` envelope (digest, geometry, CRC,
/// opaque length). Matches the live framing to within padding.
pub const CHUNK_WIRE_OVERHEAD: u64 = 72;

/// Stand-in capacity for an uncapped link (`bytes_per_sec == 0`): high
/// enough that transmission time never binds (a 16 KiB chunk transits in
/// ~0.2 µs), low enough that the f64 rounding of a completion timestamp
/// (ulp × rate) stays inside `finish_flow`'s residual-bytes tolerance.
const UNCAPPED_BYTES_PER_SEC: f64 = 1e11;

/// One shaped link, mirroring `ninf_protocol::LinkShape` field for
/// field. Kept dependency-free (this crate links nothing), so the
/// duplication is deliberate; the testkit pins the two loss schedules
/// against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WanSpec {
    /// Bottleneck capacity in bytes/second; `0` means uncapped.
    pub bytes_per_sec: u64,
    /// One-way propagation delay in microseconds.
    pub delay_us: u64,
    /// Baseline loss rate in parts per million of send operations.
    pub loss_ppm: u32,
    /// Extra loss per additional concurrent lane, in ppm.
    pub congestion_ppm: u32,
    /// RNG seed; identical seeds replay identical loss schedules.
    pub seed: u64,
}

/// Effective loss cap, as on the live side: a congested link stays
/// lossy rather than becoming a black hole.
const MAX_EFF_LOSS_PPM: u64 = 950_000;

impl WanSpec {
    /// Effective loss rate in ppm when `lanes` lanes share the link.
    pub fn eff_loss_ppm(&self, lanes: u32) -> u32 {
        let extra = self.congestion_ppm as u64 * lanes.saturating_sub(1) as u64;
        (self.loss_ppm as u64 + extra).min(MAX_EFF_LOSS_PPM) as u32
    }

    /// Whether send operation `op` (0-based) on `lane` is lost when
    /// `lanes` lanes share the link — bit-identical to the live
    /// `ninf_protocol::planned_shape` decision.
    pub fn chunk_lost(&self, lane: u32, lanes: u32, op: u64) -> bool {
        let mut rng = SplitMix64::new(
            self.seed
                ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ op.wrapping_mul(0xA076_1D64_78BD_642F),
        );
        rng.next_u64() % 1_000_000 < self.eff_loss_ppm(lanes) as u64
    }
}

/// Outcome of one simulated chunked upload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanRun {
    /// Parallel lanes used.
    pub streams: u32,
    /// Simulated seconds from first send to last ack.
    pub elapsed: f64,
    /// Payload goodput in bytes/second (`total_bytes / elapsed`).
    pub goodput: f64,
    /// Chunk sends that the link dropped (each forced a retransmit).
    pub lost_chunks: u64,
    /// Total send operations (chunks + retransmits).
    pub sends: u64,
}

/// What one lane is doing between events.
enum LanePhase {
    /// A send's bytes are draining through the bottleneck.
    Transmitting { flow: FlowId, lost: bool },
    /// Waiting for a timer (ack delivery or retransmit timeout), after
    /// which the lane sends its next chunk (or is done).
    Waiting { until: f64 },
    /// All owned chunks acked.
    Done,
}

struct Lane {
    node: NodeId,
    /// Index into the global chunk list of the chunk in flight / next.
    chunk: usize,
    /// Send operations taken on this lane so far (the loss-stream op).
    op: u64,
    phase: LanePhase,
}

/// Simulate uploading `total_bytes` split into `chunk_bytes` chunks over
/// `streams` stop-and-wait lanes through one shaped link, with a per-op
/// receive deadline of `timeout_s` driving retransmits.
///
/// `lanes` is the number of lanes registered on the live link for the
/// loss draws — the client call path registers its call connection as
/// lane 0 beside the bulk lanes, so pass `streams + 1` to mirror it
/// (what [`goodput_curve`] does). Bulk lanes draw as lanes `1..=streams`.
pub fn simulate_upload(
    spec: &WanSpec,
    total_bytes: u64,
    chunk_bytes: u32,
    streams: u32,
    lanes: u32,
    timeout_s: f64,
) -> WanRun {
    assert!(total_bytes > 0, "nothing to upload");
    let chunk_bytes = chunk_bytes.max(1) as u64;
    let total = total_bytes.div_ceil(chunk_bytes) as usize;
    let streams = streams.clamp(1, total as u32);
    // Even split, mirroring `chunk_span`: chunk sizes differ by ≤ 1 unit.
    let per = total_bytes.div_ceil(total as u64);
    let chunk_len = |seq: usize| -> u64 {
        let start = (seq as u64) * per;
        (total_bytes - start).min(per)
    };

    let mut topo = Topology::new();
    let server = topo.add_node("server");
    let gate = topo.add_node("wan-gate");
    let cap = if spec.bytes_per_sec == 0 {
        UNCAPPED_BYTES_PER_SEC
    } else {
        spec.bytes_per_sec as f64
    };
    // One shared bottleneck; generous per-lane access links on top.
    topo.add_link(gate, server, cap, 0.0);
    let mut lane_states: Vec<Lane> = (0..streams)
        .map(|w| {
            let node = topo.add_node(format!("lane{w}"));
            topo.add_link(node, gate, UNCAPPED_BYTES_PER_SEC, 0.0);
            Lane {
                node,
                chunk: w as usize,
                op: 0,
                phase: LanePhase::Waiting { until: 0.0 },
            }
        })
        .collect();
    topo.compute_routes();
    let mut net = FluidNet::new(topo);

    let delay = spec.delay_us as f64 * 1e-6;
    let mut acked = 0usize;
    let mut last_ack = 0.0f64;
    let mut lost_chunks = 0u64;
    let mut sends = 0u64;

    while acked < total {
        // Earliest pending event: a flow completing or a lane timer.
        let flow_next = net.next_completion();
        let timer_next = lane_states
            .iter()
            .filter_map(|l| match l.phase {
                LanePhase::Waiting { until } => Some(until),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        let now = match flow_next {
            Some((t, _)) => t.min(timer_next),
            None => timer_next,
        };
        assert!(now.is_finite(), "deadlocked simulation");
        net.advance_to(now);

        if let Some((t, id)) = flow_next {
            if t <= now {
                net.finish_flow(id);
                let lane = lane_states
                    .iter_mut()
                    .find(|l| matches!(l.phase, LanePhase::Transmitting { flow, .. } if flow == id))
                    .expect("completed flow belongs to a lane");
                let LanePhase::Transmitting { lost, .. } = lane.phase else {
                    unreachable!()
                };
                if lost {
                    // The bytes burned link time and vanished; the lane's
                    // receive deadline fires `timeout_s` after the send
                    // returned, then it re-sends the same chunk.
                    lane.phase = LanePhase::Waiting {
                        until: now + timeout_s,
                    };
                } else {
                    // Chunk lands after the propagation delay; the ack
                    // returns on the unshaped reverse path, so the lane
                    // frees for its next chunk at the same instant.
                    lane.phase = LanePhase::Waiting { until: now + delay };
                    acked += 1;
                    last_ack = now + delay;
                    lane.chunk += streams as usize;
                }
                continue;
            }
        }

        // A lane timer fired: start the next send (same chunk after a
        // loss, next owned chunk after an ack).
        for (w, lane) in lane_states.iter_mut().enumerate() {
            let LanePhase::Waiting { until } = lane.phase else {
                continue;
            };
            if until > now {
                continue;
            }
            if lane.chunk >= total {
                lane.phase = LanePhase::Done;
                continue;
            }
            let lost = spec.chunk_lost(w as u32 + 1, lanes, lane.op);
            lane.op += 1;
            sends += 1;
            if lost {
                lost_chunks += 1;
            }
            let flow = net.start_flow(
                FlowSpec {
                    src: lane.node,
                    dst: server,
                    bytes: (chunk_len(lane.chunk) + CHUNK_WIRE_OVERHEAD) as f64,
                    cap: f64::INFINITY,
                },
                now,
            );
            lane.phase = LanePhase::Transmitting { flow, lost };
        }
    }

    let elapsed = last_ack.max(f64::MIN_POSITIVE);
    WanRun {
        streams,
        elapsed,
        goodput: total_bytes as f64 / elapsed,
        lost_chunks,
        sends,
    }
}

/// Predicted goodput for each stream count in `streams`, uploading
/// `total_bytes` in `chunk_bytes` chunks — the curve the live
/// `wan-streams` scenario measures. Loss draws use `n + 1` live lanes
/// per point (bulk lanes plus the call connection).
pub fn goodput_curve(
    spec: &WanSpec,
    total_bytes: u64,
    chunk_bytes: u32,
    streams: &[u32],
    timeout_s: f64,
) -> Vec<WanRun> {
    streams
        .iter()
        .map(|&n| simulate_upload(spec, total_bytes, chunk_bytes, n, n + 1, timeout_s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_wan() -> WanSpec {
        WanSpec {
            bytes_per_sec: 4_000_000,
            delay_us: 20_000,
            loss_ppm: 10_000,
            congestion_ppm: 15_000,
            seed: 1997,
        }
    }

    #[test]
    fn delay_bound_transfer_scales_with_streams() {
        // Uncapped bandwidth, pure delay: each lane completes one chunk
        // per delay, so N lanes move N× the data per unit time.
        let spec = WanSpec {
            bytes_per_sec: 0,
            delay_us: 10_000,
            loss_ppm: 0,
            congestion_ppm: 0,
            seed: 1,
        };
        let one = simulate_upload(&spec, 1 << 20, 16 << 10, 1, 2, 1.0);
        let four = simulate_upload(&spec, 1 << 20, 16 << 10, 4, 5, 1.0);
        let ratio = four.goodput / one.goodput;
        assert!(
            (3.5..=4.5).contains(&ratio),
            "expected ~4x from 4 lanes, got {ratio:.2}"
        );
    }

    #[test]
    fn capped_link_bounds_aggregate_goodput() {
        let spec = WanSpec {
            bytes_per_sec: 1_000_000,
            delay_us: 20_000,
            loss_ppm: 0,
            congestion_ppm: 0,
            seed: 1,
        };
        let many = simulate_upload(&spec, 4 << 20, 16 << 10, 16, 17, 1.0);
        assert!(
            many.goodput <= 1_000_000.0 * 1.01,
            "goodput {} exceeds the link cap",
            many.goodput
        );
        // And a single stop-and-wait lane is far below the cap: every
        // chunk pays the propagation delay serially.
        let one = simulate_upload(&spec, 4 << 20, 16 << 10, 1, 2, 1.0);
        assert!(one.goodput < 500_000.0, "N=1 goodput {}", one.goodput);
    }

    #[test]
    fn gridftp_shape_knee_rises_then_falls() {
        let spec = lossy_wan();
        let curve = goodput_curve(&spec, 2 << 20, 16 << 10, &[1, 2, 4, 8, 16], 0.25);
        let g: Vec<f64> = curve.iter().map(|r| r.goodput).collect();
        let best = g
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(
            g[best] >= 2.0 * g[0],
            "best-N goodput {:.0} not 2x the N=1 goodput {:.0}",
            g[best],
            g[0]
        );
        assert!(
            (1..4).contains(&best),
            "knee at index {best} (N={}), curve {g:?}",
            curve[best].streams
        );
        assert!(
            *g.last().unwrap() < g[best],
            "congestion must pull N=16 below the knee: {g:?}"
        );
    }

    #[test]
    fn losses_force_retransmits_but_not_forever() {
        let spec = lossy_wan();
        let run = simulate_upload(&spec, 1 << 20, 16 << 10, 4, 5, 0.25);
        assert!(run.lost_chunks > 0, "1% loss over 64 chunks should bite");
        assert_eq!(
            run.sends,
            64 + run.lost_chunks,
            "every loss costs exactly one retransmit"
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let spec = lossy_wan();
        let a = simulate_upload(&spec, 3 << 20, 16 << 10, 8, 9, 0.25);
        let b = simulate_upload(&spec, 3 << 20, 16 << 10, 8, 9, 0.25);
        assert_eq!(a, b);
    }

    #[test]
    fn loss_draws_are_lane_and_op_decorrelated() {
        let spec = WanSpec {
            bytes_per_sec: 0,
            delay_us: 0,
            loss_ppm: 500_000,
            congestion_ppm: 0,
            seed: 42,
        };
        let schedule =
            |lane: u32| -> Vec<bool> { (0..64).map(|op| spec.chunk_lost(lane, 4, op)).collect() };
        assert_eq!(schedule(1), schedule(1), "pure function of (lane, op)");
        assert_ne!(schedule(1), schedule(2), "lanes draw distinct streams");
    }
}
