//! Network topology: nodes, directed links, and static shortest-path routes.
//!
//! Links are *directed* (a duplex cable is two links), because Ninf traffic
//! is asymmetric: a Linpack request ships `8n² + 8n` bytes toward the server
//! and `12n + 4` bytes back, and the two directions must not contend in a
//! full-duplex network.

use std::collections::VecDeque;

/// Index of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of a directed link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// A directed link with a capacity (bytes/second) and one-way latency
/// (seconds).
#[derive(Debug, Clone)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Capacity in bytes per second.
    pub capacity: f64,
    /// One-way propagation latency in seconds.
    pub latency: f64,
}

/// A static node/link graph with precomputed hop-count shortest routes.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    names: Vec<String>,
    links: Vec<Link>,
    /// Adjacency: outgoing link ids per node.
    adjacency: Vec<Vec<LinkId>>,
    /// routes[src][dst] = link sequence, empty for src == dst, None if
    /// unreachable. Built by [`Topology::compute_routes`].
    routes: Vec<Vec<Option<Vec<LinkId>>>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with a human-readable name; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.names.push(name.into());
        self.adjacency.push(Vec::new());
        NodeId(self.names.len() - 1)
    }

    /// Add a directed link; returns its id.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, capacity: f64, latency: f64) -> LinkId {
        assert!(capacity > 0.0, "link capacity must be positive");
        assert!(latency >= 0.0, "latency must be non-negative");
        let id = LinkId(self.links.len());
        self.links.push(Link {
            from,
            to,
            capacity,
            latency,
        });
        self.adjacency[from.0].push(id);
        id
    }

    /// Add a full-duplex link (two directed links with identical parameters);
    /// returns `(forward, reverse)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        latency: f64,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, capacity, latency),
            self.add_link(b, a, capacity, latency),
        )
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node name.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Link metadata.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0]
    }

    /// Recompute all-pairs shortest routes (BFS per source; hop-count
    /// metric). Must be called after the last link is added and before
    /// [`Topology::route`].
    pub fn compute_routes(&mut self) {
        let n = self.node_count();
        let mut routes = vec![vec![None; n]; n];
        for src in 0..n {
            // BFS from src recording the incoming link of each reached node.
            let mut incoming: Vec<Option<LinkId>> = vec![None; n];
            let mut visited = vec![false; n];
            visited[src] = true;
            let mut queue = VecDeque::from([src]);
            while let Some(u) = queue.pop_front() {
                for &lid in &self.adjacency[u] {
                    let v = self.links[lid.0].to.0;
                    if !visited[v] {
                        visited[v] = true;
                        incoming[v] = Some(lid);
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                if dst == src {
                    routes[src][dst] = Some(Vec::new());
                    continue;
                }
                if !visited[dst] {
                    continue; // unreachable: leave None
                }
                let mut path = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let lid = incoming[cur].expect("visited node has incoming link");
                    path.push(lid);
                    cur = self.links[lid.0].from.0;
                }
                path.reverse();
                routes[src][dst] = Some(path);
            }
        }
        self.routes = routes;
    }

    /// The precomputed route from `src` to `dst`, or `None` if unreachable.
    ///
    /// # Panics
    /// Panics if [`Topology::compute_routes`] has not been called.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<&[LinkId]> {
        assert!(!self.routes.is_empty(), "call compute_routes() first");
        self.routes[src.0][dst.0].as_deref()
    }

    /// Total one-way latency along the route from `src` to `dst`.
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        Some(
            self.route(src, dst)?
                .iter()
                .map(|&l| self.link(l).latency)
                .sum(),
        )
    }

    /// The minimum capacity along the route (the path's raw bandwidth bound).
    pub fn path_capacity(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.route(src, dst)?
            .iter()
            .map(|&l| self.link(l).capacity)
            .fold(None, |acc: Option<f64>, c| {
                Some(acc.map_or(c, |a| a.min(c)))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_duplex_link(a, b, 10.0, 0.001);
        t.add_duplex_link(b, c, 5.0, 0.002);
        t.compute_routes();
        (t, a, b, c)
    }

    #[test]
    fn routes_follow_hops() {
        let (t, a, _b, c) = line3();
        let r = t.route(a, c).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(t.link(r[0]).from, a);
        assert_eq!(t.link(r[1]).to, c);
    }

    #[test]
    fn self_route_is_empty() {
        let (t, a, _, _) = line3();
        assert_eq!(t.route(a, a).unwrap().len(), 0);
    }

    #[test]
    fn latency_and_capacity_along_path() {
        let (t, a, _, c) = line3();
        assert!((t.path_latency(a, c).unwrap() - 0.003).abs() < 1e-12);
        assert_eq!(t.path_capacity(a, c).unwrap(), 5.0);
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b, 1.0, 0.0); // one-way only; nothing touches c
        t.compute_routes();
        assert!(t.route(b, a).is_none());
        assert!(t.route(a, c).is_none());
    }

    #[test]
    fn duplex_directions_are_distinct_links() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let (f, r) = t.add_duplex_link(a, b, 3.0, 0.0);
        assert_ne!(f, r);
        t.compute_routes();
        assert_eq!(t.route(a, b).unwrap(), &[f]);
        assert_eq!(t.route(b, a).unwrap(), &[r]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "compute_routes")]
    fn route_before_compute_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, 1.0, 0.0);
        let _ = t.route(a, b);
    }
}
